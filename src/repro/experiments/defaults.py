"""Table III — default parameter values.

================================  =============
Parameter                          Default value
================================  =============
Number of units (|U|)              150
Number of places (|P|)             15K
Number of TUPs (k)                 15
Adjustable parameter (Δ)           6
Unit protection range              0.1
Partition granularity              10
================================  =============

The space is the unit square (the paper's range/granularity values only
make sense on a normalised map).
"""

from __future__ import annotations

import os

from repro.core import CTUPConfig

#: Table III verbatim, keyed by the paper's parameter names.
TABLE3_DEFAULTS: dict[str, object] = {
    "Number of units (|U|)": 150,
    "Number of places (|P|)": 15_000,
    "Number of TUPs (k)": 15,
    "Adjustable Parameter (delta)": 6,
    "Unit Protection Range": 0.1,
    "Partition Granularity": 10,
}

N_UNITS: int = 150
N_PLACES: int = 15_000
K: int = 15
DELTA: int = 6
PROTECTION_RANGE: float = 0.1
GRANULARITY: int = 10

#: stream lengths used by the experiment runners. The paper does not
#: state its stream length; these are sized so the whole suite runs in
#: minutes on a laptop while per-update averages are stable. With 150
#: units all reporting, a stream of S updates gives each unit about
#: S/150 reports — the sweep length is chosen so every unit moves many
#: times, which is what the DOO and Δ mechanisms act on.
STREAM_COMPARISON: int = 500  # fig4 (includes the naïve scheme)
STREAM_SWEEP: int = 1_500  # fig5-fig9 points


def default_config(**overrides) -> CTUPConfig:
    """A :class:`CTUPConfig` at Table III defaults, with overrides."""
    base = CTUPConfig(
        k=K,
        delta=DELTA,
        protection_range=PROTECTION_RANGE,
        granularity=GRANULARITY,
    )
    return base.replace(**overrides) if overrides else base


def bench_scale() -> float:
    """Global workload scale factor (env ``REPRO_BENCH_SCALE``).

    1.0 reproduces the paper's sizes; smaller values shrink place counts
    and stream lengths proportionally for quick smoke runs.
    """
    raw = os.environ.get("REPRO_BENCH_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError:
        raise ValueError(f"REPRO_BENCH_SCALE={raw!r} is not a number") from None
    if scale <= 0:
        raise ValueError("REPRO_BENCH_SCALE must be positive")
    return scale
