"""Geometry kernel for the CTUP reproduction.

Everything the monitors need from computational geometry lives here:
points, axis-aligned rectangles, circles (protection disks), distance
helpers and — most importantly — the circle-versus-rectangle
classification into *no intersection* (N), *partial intersection* (P)
and *full containment* (F) that drives the lower-bound maintenance
tables of both BasicCTUP (Table I) and OptCTUP (Table II).
"""

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.circle import Circle
from repro.geometry.distance import (
    euclidean,
    euclidean_squared,
    point_rect_distance,
    point_rect_max_distance,
)
from repro.geometry.relations import CellRelation, classify_circle_rect

__all__ = [
    "Point",
    "Rect",
    "Circle",
    "euclidean",
    "euclidean_squared",
    "point_rect_distance",
    "point_rect_max_distance",
    "CellRelation",
    "classify_circle_rect",
]
