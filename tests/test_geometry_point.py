"""Unit tests for the Point primitive."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point

coords = st.floats(-1e6, 1e6, allow_nan=False)


class TestDistance:
    def test_zero_distance_to_self(self):
        p = Point(0.3, 0.7)
        assert p.distance_to(p) == 0.0

    def test_unit_distance(self):
        assert Point(0.0, 0.0).distance_to(Point(1.0, 0.0)) == 1.0

    def test_pythagoras(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == 5.0

    def test_symmetry(self):
        a, b = Point(0.1, 0.9), Point(0.7, 0.2)
        assert a.distance_to(b) == b.distance_to(a)

    def test_squared_distance_matches(self):
        a, b = Point(0.1, 0.9), Point(0.7, 0.2)
        assert a.squared_distance_to(b) == pytest.approx(a.distance_to(b) ** 2)

    @given(coords, coords, coords, coords)
    def test_triangle_inequality(self, x1, y1, x2, y2):
        a, b, origin = Point(x1, y1), Point(x2, y2), Point(0.0, 0.0)
        assert a.distance_to(b) <= a.distance_to(origin) + origin.distance_to(
            b
        ) + 1e-6

    @given(coords, coords)
    def test_distance_nonnegative(self, x, y):
        assert Point(x, y).distance_to(Point(0.0, 0.0)) >= 0.0


class TestBasics:
    def test_immutable(self):
        p = Point(0.0, 0.0)
        with pytest.raises(AttributeError):
            p.x = 1.0  # type: ignore[misc]

    def test_equality(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert Point(1.0, 2.0) != Point(2.0, 1.0)

    def test_hashable(self):
        assert len({Point(0, 0), Point(0, 0), Point(1, 0)}) == 2

    def test_translated(self):
        assert Point(1.0, 2.0).translated(0.5, -0.5) == Point(1.5, 1.5)

    def test_as_tuple(self):
        assert Point(1.0, 2.0).as_tuple() == (1.0, 2.0)

    def test_iter_unpacking(self):
        x, y = Point(3.0, 4.0)
        assert (x, y) == (3.0, 4.0)

    def test_distance_uses_hypot_precision(self):
        # hypot avoids overflow where naive sqrt(dx^2+dy^2) would not.
        big = 1e200
        assert math.isfinite(Point(big, big).distance_to(Point(0.0, 0.0)))
