"""A turnkey simulation shell.

Everything an end-to-end run needs — a mobility model generating live
updates, a monitor consuming them, change tracking, per-update
timelines, periodic self-audits — wired together behind one loop:

>>> sim = Simulation.from_scenario("downtown", k=10)
>>> outcome = sim.run(updates=2_000)
>>> outcome.final_topk[0], outcome.summary.update_ms_p95

The shell exists so examples, notebooks and quick experiments don't
re-implement the same plumbing; the benchmark harness stays separate
because measurement wants recorded, replayable streams rather than live
generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bench.timeline import Timeline, TimelineSummary
from repro.core import CTUPConfig, OptCTUP, audit_monitor
from repro.core.events import ChangeTracker, TopKChange
from repro.core.monitor import CTUPMonitor
from repro.model import SafetyRecord
from repro.workloads import build_scenario
from repro.workloads.stream import Mobility


@dataclass
class SimulationOutcome:
    """What a finished run produced."""

    updates: int
    final_topk: list[SafetyRecord]
    final_sk: float
    summary: TimelineSummary
    changes: list[TopKChange]
    audit_problems: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.audit_problems


class Simulation:
    """Live mobility + monitor + tracking in one loop."""

    def __init__(
        self,
        monitor: CTUPMonitor,
        mobility: Mobility,
        audit_every: int = 0,
    ) -> None:
        """``audit_every`` > 0 runs the invariant auditor every that
        many updates (it costs a brute-force pass — useful in soak
        tests, off by default)."""
        if audit_every < 0:
            raise ValueError("audit_every cannot be negative")
        self.monitor = monitor
        self.mobility = mobility
        self.audit_every = audit_every
        self.timeline = Timeline()
        self.tracker = ChangeTracker(monitor)
        self.changes: list[TopKChange] = []
        self.tracker.subscribe(self.changes.append)
        self._started = False

    @classmethod
    def from_scenario(
        cls,
        name: str,
        k: int = 15,
        delta: int = 4,
        protection_range: float = 0.1,
        granularity: int | None = None,
        n_places: int = 6_000,
        n_units: int = 60,
        seed: int = 0,
        monitor_factory: Callable | None = None,
        audit_every: int = 0,
    ) -> "Simulation":
        """Build a ready-to-run simulation from a named scenario."""
        from repro.core.tuning import suggest_granularity

        world = build_scenario(
            name,
            seed=seed,
            n_places=n_places,
            n_units=n_units,
            protection_range=protection_range,
            stream_length=0,
        )
        config = CTUPConfig(
            k=k,
            delta=delta,
            protection_range=protection_range,
            granularity=granularity
            or suggest_granularity(n_places, protection_range),
        )
        factory = monitor_factory or OptCTUP
        monitor = factory(config, world.places, world.units)
        return cls(monitor, world.mobility, audit_every=audit_every)

    def run(self, updates: int) -> SimulationOutcome:
        """Generate and process ``updates`` live messages."""
        if updates <= 0:
            raise ValueError("updates must be positive")
        if not self._started:
            self.tracker.initialize()
            self._started = True
        problems: list[str] = []
        processed = 0
        for update in self.mobility.updates(updates):
            report = self.monitor.process(update)
            self.timeline.sk.append(self.monitor.sk())
            maintained = getattr(self.monitor, "maintained", None)
            self.timeline.maintained.append(
                len(maintained) if maintained is not None else 0
            )
            self.timeline.accesses.append(report.cells_accessed)
            self.timeline.update_seconds.append(
                report.maintain_seconds + report.access_seconds
            )
            self.tracker.observe(update.timestamp)
            processed += 1
            if self.audit_every and processed % self.audit_every == 0:
                problems.extend(audit_monitor(self.monitor))
        return SimulationOutcome(
            updates=processed,
            final_topk=self.monitor.top_k(),
            final_sk=self.monitor.sk(),
            summary=self.timeline.summary(),
            changes=list(self.changes),
            audit_problems=problems,
        )
