"""Batch (burst) update processing."""

import pytest

from repro.core import BasicCTUP, OptCTUP
from repro.core.batch import BatchProcessor
from repro.engine import MonitorSession
from tests.conftest import assert_valid_topk


@pytest.fixture
def processor(small_config, small_places, small_units):
    monitor = OptCTUP(small_config, small_places, small_units)
    monitor.initialize()
    return BatchProcessor(monitor)


class TestConstruction:
    def test_accepts_any_scheme(self, small_config, small_places, small_units):
        basic = BasicCTUP(small_config, small_places, small_units)
        assert BatchProcessor(basic).monitor is basic

    def test_rejects_non_monitors(self):
        with pytest.raises(TypeError):
            BatchProcessor(object())

    def test_requires_initialized_monitor(
        self, small_config, small_places, small_units, small_stream
    ):
        processor = BatchProcessor(
            OptCTUP(small_config, small_places, small_units)
        )
        with pytest.raises(RuntimeError):
            processor.process_batch(list(small_stream.prefix(3)))


class TestProcessing:
    def test_empty_batch_is_noop(self, processor):
        counters_before = processor.monitor.counters.snapshot()
        report = processor.process_batch([])
        assert report.batch_size == 0
        assert report.coalesced_size == 0
        assert report.unit_id is None
        assert report.cells_accessed == 0
        assert report.sk == processor.monitor.sk()
        assert processor.batches_processed == 0
        assert processor.monitor.counters == counters_before

    def test_bad_batch_size(self, processor, small_stream):
        with pytest.raises(ValueError):
            processor.run_stream(small_stream, 0)

    def test_single_batch_valid(self, processor, small_oracle, small_stream):
        batch = list(small_stream.prefix(20))
        report = processor.process_batch(batch)
        for update in batch:
            small_oracle.apply(update)
        assert_valid_topk(small_oracle, processor.monitor, processor.monitor.config.k)
        assert report.unit_id is None
        assert report.batch_size == 20
        assert 0 < report.coalesced_size <= 20
        assert processor.batches_processed == 1
        assert processor.updates_processed == 20
        assert processor.moves_processed == report.coalesced_size

    @pytest.mark.parametrize("batch_size", [1, 3, 7, 50])
    def test_batched_equals_sequential(
        self,
        batch_size,
        small_config,
        small_places,
        small_units,
        small_stream,
        small_oracle,
    ):
        sequential = OptCTUP(small_config, small_places, small_units)
        sequential.initialize()
        batched = OptCTUP(small_config, small_places, small_units)
        batched.initialize()
        processor = BatchProcessor(batched)

        MonitorSession(sequential).run(small_stream)
        consumed = processor.run_stream(small_stream, batch_size)
        assert consumed == len(small_stream)
        for update in small_stream:
            small_oracle.apply(update)
        assert_valid_topk(small_oracle, batched, small_config.k)
        assert batched.sk() == sequential.sk()

    def test_batching_never_increases_accesses(
        self, small_config, small_places, small_units, small_stream
    ):
        def accesses(batch_size: int) -> int:
            monitor = OptCTUP(small_config, small_places, small_units)
            monitor.initialize()
            base = monitor.counters.cells_accessed
            BatchProcessor(monitor).run_stream(small_stream, batch_size)
            return monitor.counters.cells_accessed - base

        assert accesses(25) <= accesses(1)

    def test_counters_cover_all_updates(self, processor, small_stream):
        processor.run_stream(small_stream, 8)
        assert (
            processor.monitor.counters.updates_processed == len(small_stream)
        )
