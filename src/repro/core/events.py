"""Result-change events.

A CTUP deployment wants to *act* when the answer changes — dispatch a
patrol when a place becomes top-k unsafe, stand down when it leaves.
:class:`ChangeTracker` wraps any monitor, diffs the result after every
update and invokes subscribers with a :class:`TopKChange`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.metrics import InitReport
from repro.core.monitor import CTUPMonitor
from repro.model import LocationUpdate, SafetyRecord


@dataclass(frozen=True, slots=True)
class TopKChange:
    """The delta between two consecutive top-k results."""

    timestamp: float
    #: records for places that are newly top-k unsafe.
    entered: tuple[SafetyRecord, ...]
    #: records (with their last known safety) that left the top-k.
    left: tuple[SafetyRecord, ...]
    sk_before: float
    sk_after: float

    @property
    def sk_changed(self) -> bool:
        return self.sk_before != self.sk_after


ChangeCallback = Callable[[TopKChange], None]


@dataclass
class ChangeTracker:
    """Drives a monitor and notifies subscribers on every result change."""

    monitor: CTUPMonitor
    _subscribers: list[ChangeCallback] = field(default_factory=list)
    _last: dict[int, SafetyRecord] = field(default_factory=dict)
    _last_sk: float = float("inf")
    changes_seen: int = 0

    def subscribe(self, callback: ChangeCallback) -> None:
        """Register a callback invoked once per changed result."""
        self._subscribers.append(callback)

    def initialize(self) -> InitReport:
        """Initialize the monitor and remember the first result.

        Returns the monitor's :class:`InitReport` so callers don't have
        to re-derive the initialization cost.
        """
        report = self.monitor.initialize()
        self.prime()
        return report

    def prime(self) -> None:
        """Snapshot the current result as the diffing baseline.

        For attaching a tracker to a monitor that is already running
        (restored from a checkpoint, driven elsewhere) without replaying
        its history as one giant change.
        """
        self._last = {r.place_id: r for r in self.monitor.top_k()}
        self._last_sk = self.monitor.sk()

    def process(self, update: LocationUpdate) -> TopKChange | None:
        """Process one update; returns the change if the result moved."""
        self.monitor.process(update)
        return self.observe(update.timestamp)

    def observe(self, timestamp: float = 0.0) -> TopKChange | None:
        """Diff the monitor's *current* result against the last one seen.

        For callers that drive the monitor themselves (the simulation
        shell, batch processors) and only want the change detection.
        """
        current = {r.place_id: r for r in self.monitor.top_k()}
        sk = self.monitor.sk()
        entered = tuple(
            current[pid] for pid in sorted(current.keys() - self._last.keys())
        )
        left = tuple(
            self._last[pid] for pid in sorted(self._last.keys() - current.keys())
        )
        if not entered and not left and sk == self._last_sk:
            return None
        change = TopKChange(
            timestamp=timestamp,
            entered=entered,
            left=left,
            sk_before=self._last_sk,
            sk_after=sk,
        )
        self._last = current
        self._last_sk = sk
        self.changes_seen += 1
        for callback in self._subscribers:
            callback(change)
        return change
