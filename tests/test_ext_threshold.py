"""The threshold variant (§VII)."""

import pytest

from repro.ext import ThresholdCTUP


def truth_below(oracle, tau):
    return {pid for pid, s in oracle.safeties().items() if s < tau}


@pytest.fixture
def threshold(small_config, small_places, small_units):
    monitor = ThresholdCTUP(small_config, small_places, small_units, tau=-3.0)
    monitor.initialize()
    return monitor


class TestThreshold:
    def test_tau_exposed(self, threshold):
        assert threshold.tau == -3.0
        assert threshold.sk() == -3.0

    def test_initial_set_exact(self, threshold, small_oracle):
        got = {r.place_id for r in threshold.unsafe_places()}
        assert got == truth_below(small_oracle, -3.0)

    def test_tracks_stream_exactly(
        self, threshold, small_oracle, small_stream
    ):
        for update in small_stream:
            small_oracle.apply(update)
            threshold.process(update)
        got = {r.place_id for r in threshold.unsafe_places()}
        assert got == truth_below(small_oracle, -3.0)

    def test_safeties_reported_exactly(
        self, threshold, small_oracle, small_stream
    ):
        for update in small_stream.prefix(60):
            small_oracle.apply(update)
            threshold.process(update)
        truth = small_oracle.safeties()
        for record in threshold.unsafe_places():
            assert truth[record.place_id] == record.safety

    def test_result_sorted(self, threshold):
        records = threshold.unsafe_places()
        keys = [(r.safety, r.place_id) for r in records]
        assert keys == sorted(keys)

    def test_top_k_alias(self, threshold):
        assert threshold.top_k() == threshold.unsafe_places()

    def test_very_low_tau_empty(self, small_config, small_places, small_units):
        monitor = ThresholdCTUP(
            small_config, small_places, small_units, tau=-100.0
        )
        monitor.initialize()
        assert monitor.unsafe_places() == []

    def test_high_tau_everything(self, small_config, small_places, small_units):
        monitor = ThresholdCTUP(
            small_config, small_places, small_units, tau=100.0
        )
        monitor.initialize()
        assert len(monitor.unsafe_places()) == len(small_places)

    def test_checks_along_stream(
        self, small_config, small_places, small_units, small_oracle, small_stream
    ):
        monitor = ThresholdCTUP(small_config, small_places, small_units, tau=-2.0)
        monitor.initialize()
        for update in small_stream.prefix(80):
            small_oracle.apply(update)
            monitor.process(update)
            got = {r.place_id for r in monitor.unsafe_places()}
            assert got == truth_below(small_oracle, -2.0)
