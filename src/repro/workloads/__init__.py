"""Workload generation: places, unit fleets and update streams.

The paper generates protecting units with the Brinkhoff network-based
moving-object generator over the Oldenburg road map and places uniformly
at random. This package reproduces the same structure: place sets with
configurable required-protection skew, unit fleets, and update streams
produced by pluggable mobility models — a plain random walk (cheap, for
tests) and the road-network model from :mod:`repro.roadnet` (the
benchmark workload).
"""

from repro.workloads.places import (
    RequiredProtectionModel,
    generate_places,
    clustered_points,
    uniform_points,
)
from repro.workloads.units import generate_units
from repro.workloads.stream import (
    Mobility,
    RandomWalkMobility,
    UpdateStream,
    record_stream,
)
from repro.workloads.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioWorld,
    build_scenario,
)
from repro.workloads.control import (
    ControlPlan,
    drive,
    generate_control_plan,
    interleave,
)

__all__ = [
    "SCENARIOS",
    "Scenario",
    "ScenarioWorld",
    "build_scenario",
    "ControlPlan",
    "generate_control_plan",
    "interleave",
    "drive",
    "RequiredProtectionModel",
    "generate_places",
    "uniform_points",
    "clustered_points",
    "generate_units",
    "Mobility",
    "RandomWalkMobility",
    "UpdateStream",
    "record_stream",
]
