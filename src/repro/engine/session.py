"""The monitoring-session facade.

``sim.py``, the examples, the persistence demo and the bench timeline
all used to hand-roll the same plumbing: initialize the monitor, track
result changes, maybe batch the ingest, maybe audit periodically.
:class:`MonitorSession` wires those layers once, around **any** scheme:

>>> session = MonitorSession(monitor, batch_size=32, audit_every=500)
>>> session.start()                 # InitReport (None if restored)
>>> for update in stream:
...     session.feed(update)
>>> session.flush()                 # drain a partial burst
>>> session.monitor.top_k()

Instrumentation attaches through :class:`~repro.engine.hooks.MonitorHooks`
objects rather than by editing the loop.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.audit import audit_monitor
from repro.core.batch import BatchProcessor
from repro.core.events import ChangeTracker
from repro.core.metrics import InitReport, UpdateReport
from repro.core.monitor import CTUPMonitor
from repro.engine.hooks import HookList, MonitorHooks
from repro.model import LocationUpdate
from repro.state.journal import JournalRecord, UpdateJournal
from repro.state.recovery import CheckpointPolicy, CheckpointStore
from repro.state.snapshot import snapshot_monitor

if TYPE_CHECKING:
    from repro.obs.expo import MetricsServer
    from repro.obs.spec import Observability


class MonitorSession:
    """A monitor plus batching, change tracking, audits and hooks."""

    def __init__(
        self,
        monitor: CTUPMonitor,
        *,
        batch_size: int = 0,
        audit_every: int = 0,
        hooks: MonitorHooks | Sequence[MonitorHooks] = (),
        track_changes: bool = True,
        checkpoint: CheckpointPolicy | None = None,
        coalesce: bool = True,
        obs: "Observability | None" = None,
        control_mode: str = "incremental",
    ) -> None:
        """``batch_size`` > 0 buffers updates and flushes them through
        the phase API as exact bursts; each burst is move-coalesced
        (``coalesce=False`` replays bursts one ``apply_update`` at a
        time — the pre-coalescing ablation; results are identical).
        ``audit_every`` > 0 runs the invariant auditor every that many
        updates (it costs a brute-force pass — useful in soak tests,
        off by default). ``track_changes=False`` skips the per-update
        result diffing entirely — for measurement loops (the bench
        harness) where reading ``top_k()`` after every update would
        perturb the I/O counters being measured.

        ``checkpoint`` attaches a checkpoint directory: every ingested
        update is journaled (write-ahead in single mode, on buffering in
        batch mode) and snapshots are written per the policy. The
        session *appends* to whatever journal the directory holds —
        wiping stale state from an earlier, unrelated run is the
        caller's job (``repro.api.open_session`` does it on any
        non-resuming start).

        ``hooks`` is a sequence of :class:`MonitorHooks` or one bare
        hook. ``obs`` attaches a live :class:`~repro.obs.Observability`
        bundle: the monitor (and any shard children), the journal and
        the hook bus are instrumented, and when the bundle carries a
        serve port a ``/metrics`` endpoint runs for the session's
        lifetime (pass ``obs=ObsSpec(...)`` to ``open_session`` to build
        the bundle)."""
        if batch_size < 0:
            raise ValueError("batch_size cannot be negative")
        if audit_every < 0:
            raise ValueError("audit_every cannot be negative")
        self.monitor = monitor
        self.batch_size = batch_size
        self.audit_every = audit_every
        self.track_changes = track_changes
        self.tracker = ChangeTracker(monitor)
        self.hooks = HookList(hooks)
        self.audit_problems: list[str] = []
        self.updates_processed = 0
        self.init_report: InitReport | None = None
        self._batcher = (
            BatchProcessor(monitor, coalesce=coalesce) if batch_size else None
        )
        self._pending: list[LocationUpdate] = []
        self._started = False
        if control_mode not in ("incremental", "rebuild"):
            raise ValueError(
                "control_mode must be 'incremental' or 'rebuild' "
                f"(got {control_mode!r})"
            )
        #: default application mode for ``apply_control`` (see
        #: ``repro.api.ControlSpec``); per-call ``mode=`` overrides it.
        self.control_mode = control_mode
        self.checkpoint_policy = checkpoint
        self._checkpoint_store = (
            CheckpointStore(checkpoint.directory) if checkpoint else None
        )
        self._journal = (
            UpdateJournal(self._checkpoint_store.journal_path)
            if self._checkpoint_store
            else None
        )
        #: journal seq of the last *applied* record — what a snapshot
        #: taken now refers to, and where replay resumes after it.
        self._applied_seq = 0
        self._flushes_done = 0
        self._replaying = False
        self.observability = obs
        self._metrics_server: "MetricsServer | None" = None
        if obs is not None:
            # local imports: repro.obs sits above repro.engine's core
            # dependencies; importing it lazily keeps the layering loose.
            from repro.obs.bridge import attach_observability
            from repro.obs.hooks import ObservabilityHooks

            attach_observability(monitor, obs)
            if self._journal is not None:
                self._journal.attach_observability(obs)
            self.hooks.add(ObservabilityHooks(obs))
            if obs.serve_port is not None:
                from repro.obs.expo import MetricsServer

                self._metrics_server = MetricsServer(
                    obs.registry, port=obs.serve_port, sync=obs.sync
                ).start()

    # -- wiring -----------------------------------------------------------

    def add_hook(self, hook: MonitorHooks) -> None:
        """Attach an instrumentation hook (fires in registration order)."""
        self.hooks.add(hook)

    @property
    def started(self) -> bool:
        """Whether ``start()`` has run."""
        return self._started

    @property
    def batcher(self) -> BatchProcessor | None:
        """The burst processor (``None`` in single-update mode) — its
        ``batches_processed`` / ``updates_processed`` counters are the
        batching diagnostics."""
        return self._batcher

    @property
    def journal(self) -> UpdateJournal | None:
        """The attached update journal (``None`` without a policy)."""
        return self._journal

    @property
    def applied_seq(self) -> int:
        """Journal seq of the last applied record (0 without a journal)."""
        return self._applied_seq

    @property
    def pending_updates(self) -> int:
        """Updates buffered but not yet flushed (0 in single mode)."""
        return len(self._pending)

    # -- observability ----------------------------------------------------

    @property
    def metrics_server(self) -> "MetricsServer | None":
        """The running ``/metrics`` endpoint (``None`` unless serving)."""
        return self._metrics_server

    def sync_metrics(self) -> None:
        """Refresh the bridged ledger gauges from the monitor's counters."""
        if self.observability is not None:
            self.observability.sync()

    def metrics_text(self) -> str:
        """The registry in Prometheus text format (synced first)."""
        if self.observability is None:
            raise RuntimeError("session has no observability attached")
        from repro.obs.expo import render_prometheus

        self.observability.sync()
        return render_prometheus(self.observability.registry)

    def metrics_json(self) -> dict[str, object]:
        """A plain-dict snapshot of the registry (synced first)."""
        if self.observability is None:
            raise RuntimeError("session has no observability attached")
        from repro.obs.expo import json_dump

        self.observability.sync()
        return json_dump(self.observability.registry)

    # -- lifecycle --------------------------------------------------------

    def start(self) -> InitReport | None:
        """Initialize the monitor (or adopt an already-running one).

        Returns the :class:`InitReport`, or ``None`` when the monitor
        was already initialized (e.g. restored from a checkpoint) — the
        tracker is then primed on the current result instead.
        """
        if self._started:
            raise RuntimeError("session already started")
        if self.monitor.initialized:
            if self.track_changes:
                self.tracker.prime()
        elif self.track_changes:
            self.init_report = self.tracker.initialize()
        else:
            self.init_report = self.monitor.initialize()
        self._started = True
        return self.init_report

    def feed(self, update: LocationUpdate) -> UpdateReport | None:
        """Ingest one update.

        In single mode, processes it and returns its report. In batch
        mode, buffers it and returns the burst report when the buffer
        reaches ``batch_size`` (``None`` otherwise).
        """
        if not self._started:
            self.start()
        self.hooks.on_update_start(update)
        if self._batcher is not None:
            if self._journal is not None and not self._replaying:
                self._journal.append_update(update, batched=True)
            self._pending.append(update)
            if len(self._pending) >= self.batch_size:
                return self.flush()
            return None
        # write-ahead: journal first, mark applied only once processed.
        seq = 0
        if self._journal is not None and not self._replaying:
            seq = self._journal.append_update(update, batched=False)
        report = self.monitor.process(update)
        self._complete([update], report, batched=False)
        if seq:
            self._applied_seq = seq
        self._flush_boundary()
        return report

    def flush(self) -> UpdateReport | None:
        """Process any buffered updates now (no-op in single mode)."""
        if self._batcher is None or not self._pending:
            return None
        batch, self._pending = self._pending, []
        obs = self.observability
        if obs is None:
            report = self._batcher.process_batch(batch)
        else:
            with obs.tracer.span(
                "session.flush", cat="session", updates=len(batch)
            ):
                report = self._batcher.process_batch(batch)
        self._complete(batch, report, batched=True)
        # the marker is written *after* the burst applied: a snapshot at
        # this seq never refers into the middle of a batch.
        if self._journal is not None and not self._replaying:
            self._applied_seq = self._journal.append_flush()
        self._flush_boundary()
        return report

    def run(self, updates: Iterable[LocationUpdate]) -> int:
        """Feed a whole stream (plus a final flush); returns the count."""
        count = 0
        for update in updates:
            self.feed(update)
            count += 1
        self.flush()
        return count

    def apply_control(self, event: object, *, mode: str | None = None):
        """Apply a reconfiguration event at a batch boundary.

        Flushes any buffered burst first (control events only ever apply
        between batches — the same consistent-cut rule as snapshots),
        journals the event write-ahead, applies it through
        :func:`repro.control.apply_control`, and primes the change
        tracker on the new world. ``mode`` defaults to the session's
        ``control_mode``. Returns the
        :class:`~repro.control.events.EpochReport`.
        """
        # local import: repro.control sits above repro.engine's core deps.
        from repro.control.events import encode_event

        if mode is None:
            mode = self.control_mode
        if not self._started:
            self.start()
        self.flush()
        seq = 0
        if self._journal is not None and not self._replaying:
            payload = encode_event(event)
            payload["mode"] = mode
            seq = self._journal.append_control(payload)
        report = self.monitor.apply_control(event, mode=mode)
        if seq:
            self._applied_seq = seq
        if self.track_changes:
            # the world changed under the tracker: re-prime rather than
            # report a spurious top-k "change".
            self.tracker.prime()
        self.hooks.on_control(event, report)
        return report

    # -- checkpointing & recovery -----------------------------------------

    def checkpoint(self) -> Path:
        """Write a snapshot of the current state; returns its path.

        Flushes any buffered burst first — snapshots are only taken at
        batch boundaries (the sharded consistent-cut rule, and the only
        points the journal's flush markers line up with).
        """
        if self._checkpoint_store is None:
            raise RuntimeError("session has no checkpoint policy")
        self.flush()
        obs = self.observability
        if obs is None:
            document = snapshot_monitor(
                self.monitor,
                journal_seq=self._applied_seq,
                session={"updates_processed": self.updates_processed},
            )
            return self._checkpoint_store.write_snapshot(document)
        with obs.tracer.span(
            "checkpoint.write", cat="state", seq=self._applied_seq
        ):
            document = snapshot_monitor(
                self.monitor,
                journal_seq=self._applied_seq,
                session={"updates_processed": self.updates_processed},
            )
            path = self._checkpoint_store.write_snapshot(document)
        obs.registry.counter(
            "ctup_checkpoints_total", "Checkpoint snapshots written."
        ).inc()
        return path

    def adopt_resume_state(
        self, *, updates_processed: int, applied_seq: int
    ) -> None:
        """Install snapshot-carried session metadata (recovery step 4)."""
        self.updates_processed = updates_processed
        self._applied_seq = applied_seq

    def replay(self, records: Iterable[JournalRecord]) -> int:
        """Re-feed journaled records through the ordinary pipeline.

        Journaling and checkpointing are suppressed (the records are
        already durable); change tracking and audits still run, so the
        replayed prefix performs exactly the reads the uninterrupted run
        performed. Returns the number of updates applied. The session
        must use the same ``batch_size`` as the run that wrote the
        journal — buffered records then auto-flush at the same
        boundaries, and each flush marker's explicit ``flush()`` is a
        no-op on the already-drained buffer.
        """
        if not self._started:
            raise RuntimeError("start() the session before replaying")
        self._replaying = True
        applied = 0
        try:
            for record in records:
                if record.is_flush:
                    self.flush()
                elif record.is_control:
                    from repro.control.events import decode_event

                    assert record.control is not None
                    payload = dict(record.control)
                    mode = payload.pop("mode", "incremental")
                    self.apply_control(decode_event(payload), mode=mode)
                else:
                    assert record.update is not None
                    self.feed(record.update)
                    applied += 1
                self._applied_seq = record.seq
        finally:
            self._replaying = False
        return applied

    def close(self) -> None:
        """Flush, write the on-close snapshot if the policy asks for
        one, stop the metrics endpoint, and release the journal handle
        (idempotent)."""
        self.flush()
        if (
            self.checkpoint_policy is not None
            and self.checkpoint_policy.on_close
            and self._started
            and self.monitor.initialized
        ):
            self.checkpoint()
        if self._metrics_server is not None:
            self._metrics_server.stop()
            self._metrics_server = None
        if self._journal is not None:
            # make the tail durable even when no on-close snapshot ran —
            # a crash right after close() must lose nothing.
            self._journal.sync()
            self._journal.close()

    def __enter__(self) -> "MonitorSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _flush_boundary(self) -> None:
        """Periodic-checkpoint bookkeeping, shared by both ingest modes."""
        if self._replaying or self.checkpoint_policy is None:
            return
        self._flushes_done += 1
        every = self.checkpoint_policy.every_batches
        if every and self._flushes_done % every == 0:
            self.checkpoint()

    # -- internals --------------------------------------------------------

    def _complete(
        self,
        updates: list[LocationUpdate],
        report: UpdateReport,
        batched: bool,
    ) -> None:
        self.hooks.on_refresh(report.cells_accessed)
        for update in updates:
            self.hooks.on_update_end(update, report)
        if batched:
            self.hooks.on_batch_flush(updates, report)
        if self.track_changes:
            change = self.tracker.observe(updates[-1].timestamp)
            if change is not None:
                self.hooks.on_topk_change(change)
        before = self.updates_processed
        self.updates_processed += len(updates)
        if self.audit_every and (
            self.updates_processed // self.audit_every
            > before // self.audit_every
        ):
            self.audit_problems.extend(audit_monitor(self.monitor))
