"""RPL009 — the burst kernels must stay vectorised.

:mod:`repro.core.kernels` exists to replace per-move scalar maintenance
with whole-burst numpy passes; a per-element python loop creeping back
in silently undoes the optimisation while every test keeps passing
(results are bit-identical either way — only the wall time regresses).
This rule flags ``for``/``while`` statements inside the kernels module
whose iterable is a ``range(...)``/``zip(...)``/``enumerate(...)``/
``map(...)`` call — the canonical shapes of element-at-a-time iteration.

Deliberately *not* flagged:

* comprehensions and generator expressions — bounded setup idiom
  (building the waypoint matrices, deriving lookup tables), not a
  maintenance loop;
* loops over plain names, attributes, dict views or slices — group
  dispatch and per-cell dict application have no vectorisable
  equivalent.

Irreducibly scalar tails (the stateful DecHash fold, dict-backed
cell-state application) carry ``# reprolint: disable=RPL009`` with a
reason, which doubles as documentation of *why* that loop survives.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ProjectIndex, SourceFile
from repro.lint.registry import Violation, rule

SCOPES = ("repro.core.kernels",)

_SCALAR_ITERATORS = frozenset({"range", "zip", "enumerate", "map"})


@rule(
    "RPL009",
    "kernels-vectorised",
    "no per-element scalar loops (for/while over range/zip/enumerate/map) "
    "inside repro.core.kernels — batch through numpy or suppress with a "
    "reason",
)
def check(source: SourceFile, project: ProjectIndex) -> Iterator[Violation]:
    if not source.in_packages(*SCOPES):
        return
    for node in ast.walk(source.tree):
        if isinstance(node, ast.For) and _is_scalar_iterator(node.iter):
            yield Violation(
                code="RPL009",
                message=(
                    "per-element scalar loop "
                    f"(for ... in {_iterator_name(node.iter)}(...)) in the "
                    "vectorised kernels module — hoist into a numpy pass, "
                    "or suppress with the reason the loop is irreducible"
                ),
                path=source.path,
                line=node.lineno,
                col=node.col_offset,
            )
        elif isinstance(node, ast.While):
            yield Violation(
                code="RPL009",
                message=(
                    "while loop in the vectorised kernels module — burst "
                    "kernels are single-pass by design; hoist the "
                    "iteration into a numpy pass, or suppress with the "
                    "reason the loop is irreducible"
                ),
                path=source.path,
                line=node.lineno,
                col=node.col_offset,
            )


def _is_scalar_iterator(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in _SCALAR_ITERATORS
    )


def _iterator_name(expr: ast.expr) -> str:
    assert isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
    return expr.func.id
