"""Server-side tracking of the protecting units.

The server keeps the most recently reported location of every unit
(§II-A). :class:`UnitIndex` owns that state for one monitor instance and
provides the vectorised actual-protection kernels used whenever a cell's
places must be (re)evaluated against the units.

The kernels only ever need the units whose protection disk can reach the
queried rectangle (§III-B/§IV-D). By default that reachability filter is
a linear scan over all |U| positions; attaching a grid via
:meth:`UnitIndex.attach_grid` swaps in a bucketed
:class:`~repro.index.unitgrid.UnitGridIndex` so only the bucket
neighbourhood of the rectangle is examined. Both paths end in the same
exact filter, so results are bit-for-bit identical — the index is purely
a work reducer, and :class:`UnitKernelStats` records how much work it
saved.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.geometry import Point, Rect
from repro.model import CoalescedMove, LocationUpdate, Unit

if TYPE_CHECKING:
    from repro.grid.partition import GridPartition
    from repro.index.unitgrid import UnitGridIndex


@dataclass(slots=True)
class UnitKernelStats:
    """Work counters of the reachability prefilter.

    ``candidate_units`` is what the prefilter examined (|U| per query on
    the linear path, the bucket-neighbourhood gather on the indexed
    path); ``reachable_units`` is what survived into the distance kernel
    — identical on both paths. The spread between the two is the work
    the unit grid eliminates.
    """

    queries: int = 0
    candidate_units: int = 0
    reachable_units: int = 0
    #: raw location updates whose per-move position apply was collapsed
    #: into a chain endpoint by burst coalescing — the unit-index work
    #: (position writes, bucket moves) skipped on purpose, counted so
    #: merged shard stats and the bench guard see an explained drop
    #: rather than missing work.
    coalesced_updates: int = 0

    def reset(self) -> None:
        self.queries = 0
        self.candidate_units = 0
        self.reachable_units = 0
        self.coalesced_updates = 0

    def snapshot(self) -> "UnitKernelStats":
        return UnitKernelStats(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    def __sub__(self, other: "UnitKernelStats") -> "UnitKernelStats":
        return UnitKernelStats(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __add__(self, other: "UnitKernelStats") -> "UnitKernelStats":
        """Element-wise sum (aggregation across shard unit indexes)."""
        return UnitKernelStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def restore(self, values: "UnitKernelStats") -> None:
        """Overwrite every counter with ``values`` (checkpoint resume)."""
        self.queries = values.queries
        self.candidate_units = values.candidate_units
        self.reachable_units = values.reachable_units
        self.coalesced_updates = values.coalesced_updates


class UnitIndex:
    """Positions of all units, tracked per monitor.

    All units share one protection range ``R`` (as in the paper); the
    constructor rejects mixed ranges because the vectorised kernels and
    the per-cell bound maintenance both assume a single radius.

    The index copies the units it is given, so several monitors built
    from the same initial fleet do not share mutable state.
    """

    #: below this fleet size the linear reachability scan beats the
    #: bucket gather, so an attached grid index is left idle. Instances
    #: may override (tests force the bucketed path by setting it to 1).
    grid_min_fleet: int = 32

    def __init__(self, units: Iterable[Unit]) -> None:
        self._grid_index = None
        self.stats = UnitKernelStats()
        units = list(units)
        if not units:
            raise ValueError("at least one protecting unit is required")
        ranges = {u.protection_range for u in units}
        if len(ranges) != 1:
            raise ValueError(f"units must share one protection range, got {ranges}")
        self.protection_range = ranges.pop()
        self._units: dict[int, Unit] = {}
        for u in units:
            if u.unit_id in self._units:
                raise ValueError(f"duplicate unit id {u.unit_id}")
            self._units[u.unit_id] = Unit(u.unit_id, u.location, u.protection_range)
        self._order = sorted(self._units)
        self._row_of = {uid: row for row, uid in enumerate(self._order)}
        n = len(self._order)
        self._xs = np.empty(n, dtype=np.float64)
        self._ys = np.empty(n, dtype=np.float64)
        for uid, row in self._row_of.items():
            loc = self._units[uid].location
            self._xs[row] = loc.x
            self._ys[row] = loc.y

    def __len__(self) -> int:
        return len(self._units)

    def __iter__(self) -> Iterator[Unit]:
        for uid in self._order:
            yield self._units[uid]

    def __contains__(self, unit_id: int) -> bool:
        return unit_id in self._units

    def location_of(self, unit_id: int) -> Point:
        """The most recently reported location of ``unit_id``."""
        return self._units[unit_id].location

    def attach_grid(self, grid: "GridPartition") -> None:
        """Bucket the unit rows by ``grid`` cell (perf only, exactness kept).

        Subsequent location updates maintain the buckets incrementally;
        the AP kernels gather candidates from the bucket neighbourhood
        of the queried rectangle instead of scanning all |U| rows. Any
        previously attached index is replaced.
        """
        from repro.index.unitgrid import UnitGridIndex

        self._grid_index = UnitGridIndex(
            grid, self._xs, self._ys, self.protection_range
        )

    @property
    def grid_index(self) -> "UnitGridIndex | None":
        """The attached :class:`UnitGridIndex`, or ``None``."""
        return self._grid_index

    def _use_buckets(self) -> bool:
        return (
            self._grid_index is not None
            and len(self._xs) >= self.grid_min_fleet
        )

    def apply(self, update: LocationUpdate) -> Point:
        """Record a location update; returns the *tracked* old location.

        The tracked location is authoritative: if the stream's
        ``old_location`` disagrees with it the server state would be
        inconsistent, so a mismatch raises.
        """
        unit = self._units.get(update.unit_id)
        if unit is None:
            raise KeyError(f"unknown unit {update.unit_id}")
        old = unit.location
        if old.squared_distance_to(update.old_location) > 1e-18:
            raise ValueError(
                f"update for unit {update.unit_id} carries old location "
                f"{update.old_location} but the server tracks {old}"
            )
        unit.location = update.new_location
        row = self._row_of[update.unit_id]
        self._xs[row] = update.new_location.x
        self._ys[row] = update.new_location.y
        if self._grid_index is not None:
            self._grid_index.move(
                row, old.x, old.y, update.new_location.x, update.new_location.y
            )
        return old

    def apply_chain(self, raws: Sequence[LocationUpdate]) -> Point:
        """Record one unit's coalesced move chain; returns the tracked old.

        All updates must carry the same unit id and form a contiguous
        chain (each ``old_location`` equal to its predecessor's
        ``new_location``) — :func:`repro.core.batch.coalesce_burst`
        guarantees both. Only the final position is written: the
        intermediate applies are skipped and charged to
        ``stats.coalesced_updates``. The end state is identical to
        applying each update in turn — position tracking only ever reads
        the latest report.
        """
        first = raws[0]
        unit = self._units.get(first.unit_id)
        if unit is None:
            raise KeyError(f"unknown unit {first.unit_id}")
        old = unit.location
        if old.squared_distance_to(first.old_location) > 1e-18:
            raise ValueError(
                f"update for unit {first.unit_id} carries old location "
                f"{first.old_location} but the server tracks {old}"
            )
        last = raws[-1].new_location
        unit.location = last
        row = self._row_of[first.unit_id]
        self._xs[row] = last.x
        self._ys[row] = last.y
        if self._grid_index is not None:
            self._grid_index.move(row, old.x, old.y, last.x, last.y)
        self.stats.coalesced_updates += len(raws) - 1
        return old

    def apply_moves(self, moves: Sequence[CoalescedMove]) -> list[Point]:
        """Batched :meth:`apply_chain` over all of a burst's chains.

        Validates every chain head against the tracked position first,
        then writes all final coordinates in one vectorised pass and
        re-buckets the changed rows through
        :meth:`~repro.index.unitgrid.UnitGridIndex.move_many`. End state
        and ``stats`` are identical to calling :meth:`apply_chain` per
        move in order.
        """
        olds: list[Point] = []
        rows = np.empty(len(moves), dtype=np.int64)
        for pos, move in enumerate(moves):
            first = move.raws[0]
            unit = self._units.get(first.unit_id)
            if unit is None:
                raise KeyError(f"unknown unit {first.unit_id}")
            old = unit.location
            if old.squared_distance_to(first.old_location) > 1e-18:
                raise ValueError(
                    f"update for unit {first.unit_id} carries old location "
                    f"{first.old_location} but the server tracks {old}"
                )
            olds.append(old)
            rows[pos] = self._row_of[first.unit_id]
            self.stats.coalesced_updates += move.raw_count - 1
        old_x = self._xs[rows].copy()
        old_y = self._ys[rows].copy()
        new_x = np.array([m.last_new.x for m in moves], dtype=np.float64)
        new_y = np.array([m.last_new.y for m in moves], dtype=np.float64)
        self._xs[rows] = new_x
        self._ys[rows] = new_y
        for move in moves:
            self._units[move.unit_id].location = move.last_new
        if self._grid_index is not None:
            self._grid_index.move_many(rows, old_x, old_y, new_x, new_y)
        return olds

    def ap_counts(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Actual protection ``AP`` of each query point.

        Counts, for every ``(xs[i], ys[i])``, the units whose closed
        protection disk contains the point. With a grid index attached
        and a large enough fleet the points are batched by grid cell and
        each batch only meets its bucket-neighbourhood candidates;
        otherwise the kernel broadcasts against all units, chunking the
        point axis to bound temporaries.
        """
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if len(xs) == 0:
            return np.empty(0, dtype=np.int64)
        if self._use_buckets():
            return self._ap_counts_bucketed(xs, ys)
        r2 = self.protection_range * self.protection_range
        out = np.empty(len(xs), dtype=np.int64)
        # ~4M matrix cells per chunk keeps temporaries small; the floor
        # of 64 points stops huge fleets degenerating to row-at-a-time
        # kernels (the bucketed path is the real fix at that scale).
        chunk = max(64, 4_000_000 // max(len(self._xs), 1))
        for start in range(0, len(xs), chunk):
            end = min(start + chunk, len(xs))
            dx = xs[start:end, None] - self._xs[None, :]
            dy = ys[start:end, None] - self._ys[None, :]
            out[start:end] = np.count_nonzero(dx * dx + dy * dy <= r2, axis=1)
        return out

    def _ap_counts_bucketed(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Per-cell batched AP counts through the unit grid.

        Groups the query points by grid cell and gathers one candidate
        set per occupied cell (from the bounding box of the group's
        actual points, so out-of-space points are still exact).
        """
        lin = self._grid_index.bucket_columns(xs, ys)
        order = np.argsort(lin, kind="stable")
        boundaries = np.flatnonzero(np.diff(lin[order])) + 1
        r2 = self.protection_range * self.protection_range
        out = np.empty(len(xs), dtype=np.int64)
        for group in np.split(order, boundaries):
            px = xs[group]
            py = ys[group]
            rect = Rect(
                float(px.min()), float(py.min()), float(px.max()), float(py.max())
            )
            ux, uy = self._reachable_near(rect)
            if len(ux) == 0:
                out[group] = 0
                continue
            dx = px[:, None] - ux[None, :]
            dy = py[:, None] - uy[None, :]
            out[group] = np.count_nonzero(dx * dx + dy * dy <= r2, axis=1)
        return out

    def _reachable_near(self, rect: Rect) -> tuple[np.ndarray, np.ndarray]:
        """Positions of the units whose disk reaches into ``rect``.

        The single reachability filter behind every ``*_near`` kernel:
        bucketed gather + exact filter when the grid index is active, a
        full-fleet exact filter otherwise. Both produce the same rows in
        the same (ascending-row) order.
        """
        if self._use_buckets():
            rows, examined = self._grid_index.units_reaching(rect)
            ux = self._xs[rows]
            uy = self._ys[rows]
        else:
            examined = len(self._xs)
            dx = np.maximum(rect.xmin - self._xs, 0.0)
            dx = np.maximum(dx, self._xs - rect.xmax)
            dy = np.maximum(rect.ymin - self._ys, 0.0)
            dy = np.maximum(dy, self._ys - rect.ymax)
            r = self.protection_range
            reachable = dx * dx + dy * dy <= r * r
            ux = self._xs[reachable]
            uy = self._ys[reachable]
        self.stats.queries += 1
        self.stats.candidate_units += examined
        self.stats.reachable_units += len(ux)
        return ux, uy

    def ap_counts_near(
        self, xs: np.ndarray, ys: np.ndarray, rect: Rect
    ) -> tuple[np.ndarray, int]:
        """AP of points inside ``rect``, using only reachable units.

        Implements the paper's "derive the protecting units whose
        protecting regions intersect the cell" (§III-B/§IV-D): a unit
        whose disk cannot reach into the rectangle cannot protect any
        place in it, so it is excluded before the distance kernel runs.
        Returns the counts and the number of units actually compared
        (for the work counters). Callers must only pass points inside
        ``rect``.
        """
        r = self.protection_range
        ux, uy = self._reachable_near(rect)
        n_units = len(ux)
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if n_units == 0:
            return np.zeros(len(xs), dtype=np.int64), 0
        ddx = xs[:, None] - ux[None, :]
        ddy = ys[:, None] - uy[None, :]
        counts = np.count_nonzero(ddx * ddx + ddy * ddy <= r * r, axis=1)
        return counts.astype(np.int64), n_units

    def weighted_protection_near(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        rect: Rect,
        weight_of_distance: Callable[[np.ndarray], np.ndarray],
    ) -> tuple[np.ndarray, int]:
        """Decaying-protection sums (§VII extension).

        Like :meth:`ap_counts_near`, but instead of counting units inside
        the disk it sums ``weight_of_distance(d)`` over the reachable
        units, where ``weight_of_distance`` maps a numpy distance array
        to a weight array (zero beyond the protection range).
        """
        ux, uy = self._reachable_near(rect)
        n_units = len(ux)
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if n_units == 0:
            return np.zeros(len(xs), dtype=np.float64), 0
        ddx = xs[:, None] - ux[None, :]
        ddy = ys[:, None] - uy[None, :]
        distances = np.sqrt(ddx * ddx + ddy * ddy)
        return weight_of_distance(distances).sum(axis=1), n_units

    def ap_of_point(self, p: Point) -> int:
        """Actual protection of a single point."""
        if self._use_buckets():
            # for a degenerate rectangle the exact reachability filter
            # *is* the point-in-disk test, so the reachable set is the
            # protecting set.
            ux, _ = self._reachable_near(Rect(p.x, p.y, p.x, p.y))
            return len(ux)
        dx = self._xs - p.x
        dy = self._ys - p.y
        r2 = self.protection_range * self.protection_range
        return int(np.count_nonzero(dx * dx + dy * dy <= r2))

    def snapshot_positions(self) -> np.ndarray:
        """An ``(n, 2)`` copy of all unit positions (unit-id order)."""
        return np.stack([self._xs, self._ys], axis=1).copy()

    def export_positions(self) -> list[list[float]]:
        """JSON-codable ``[unit_id, x, y]`` rows in unit-id order."""
        return [
            [uid, float(self._xs[self._row_of[uid]]), float(self._ys[self._row_of[uid]])]
            for uid in self._order
        ]

    def restore_positions(self, rows: Iterable[Iterable[float]]) -> None:
        """Overwrite every tracked position from :meth:`export_positions` rows.

        The fleet must match (same unit ids); any attached grid index is
        rebuilt from the restored coordinate arrays so its buckets agree
        with the overwritten positions.
        """
        seen: set[int] = set()
        for raw in rows:
            uid_f, x, y = raw
            uid = int(uid_f)
            unit = self._units.get(uid)
            if unit is None:
                raise KeyError(f"unknown unit {uid} in restored positions")
            seen.add(uid)
            unit.location = Point(float(x), float(y))
            row = self._row_of[uid]
            self._xs[row] = float(x)
            self._ys[row] = float(y)
        if seen != set(self._order):
            missing = sorted(set(self._order) - seen)
            raise ValueError(f"restored positions miss units {missing[:5]}")
        if self._grid_index is not None:
            self.attach_grid(self._grid_index.grid)
