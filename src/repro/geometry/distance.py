"""Distance helpers shared by the geometry kernel and the monitors."""

from __future__ import annotations

import math

from repro.geometry.point import Point
from repro.geometry.rect import Rect


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return math.hypot(a.x - b.x, a.y - b.y)


def euclidean_squared(a: Point, b: Point) -> float:
    """Squared Euclidean distance between two points."""
    dx = a.x - b.x
    dy = a.y - b.y
    return dx * dx + dy * dy


def point_rect_distance(p: Point, rect: Rect) -> float:
    """Minimum distance from ``p`` to the (closed) rectangle.

    Zero when ``p`` lies inside the rectangle. This is the *minimum*
    distance used to decide the N (no-intersection) relation: a disk of
    radius R misses the rectangle iff this distance exceeds R.
    """
    dx = max(rect.xmin - p.x, 0.0, p.x - rect.xmax)
    dy = max(rect.ymin - p.y, 0.0, p.y - rect.ymax)
    return math.hypot(dx, dy)


def point_rect_max_distance(p: Point, rect: Rect) -> float:
    """Maximum distance from ``p`` to any point of the rectangle.

    Attained at the corner farthest from ``p``. A disk of radius R fully
    contains the rectangle (relation F) iff this distance is <= R.
    """
    dx = max(p.x - rect.xmin, rect.xmax - p.x)
    dy = max(p.y - rect.ymin, rect.ymax - p.y)
    return math.hypot(dx, dy)
