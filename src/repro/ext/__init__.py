"""Extensions: the paper's future-work directions (§VII), implemented.

1. :mod:`repro.ext.extent` — places with (rectangular) extent;
2. :mod:`repro.ext.decay` — protection as a decaying function of distance;
3. :mod:`repro.ext.threshold` — monitor *all* places below a safety
   threshold instead of the top-k;
4. :mod:`repro.ext.predictive` — predict the unsafe places of the near
   future from unit velocities.
"""

from repro.ext.threshold import ThresholdCTUP
from repro.ext.predictive import PredictiveMonitor, PredictedRecord
from repro.ext.decay import DecayCTUP, DecayModel, linear_decay, step_decay
from repro.ext.extent import ExtentCTUP, ExtentPlace

__all__ = [
    "ThresholdCTUP",
    "PredictiveMonitor",
    "PredictedRecord",
    "DecayCTUP",
    "DecayModel",
    "linear_decay",
    "step_decay",
    "ExtentCTUP",
    "ExtentPlace",
]
