"""OptCTUP (§IV): per-place maintenance, DOO and the Δ slack.

OptCTUP fixes the three drawbacks of BasicCTUP:

* **Drawback 1** (bounds decrease unnecessarily) — the Decrease Once
  Optimization: a (unit, cell) pair in :class:`DecHash` blocks repeated
  decreases for the same unit (Table II).
* **Drawback 2** (too many places in memory) — cells are never
  illuminated wholesale; only places whose safety was below ``SK + Δ``
  at the last access of their cell are maintained, and each cell's
  lower bound covers its *non-maintained* places only.
* **Drawback 3** (flashing) — after accessing a cell its bound is at
  least ``SK + Δ``, so it takes Δ further decreases before the cell can
  demand attention again.

Setting ``config.use_doo = False`` keeps everything except DOO (bounds
then follow Table I), which is exactly the ablation of Fig. 8.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.core import kernels
from repro.core.config import CTUPConfig
from repro.core.dechash import DecHash
from repro.core.monitor import CTUPMonitor
from repro.core.tables import (
    HASH_INSERT,
    HASH_REMOVE,
    table1_delta,
    table2_action,
)
from repro.core.topk import MaintainedPlaces, kth_smallest
from repro.geometry import Point
from repro.grid.cellstate import (
    CellState,
    export_cell_states,
    restore_cell_states,
)
from repro.grid.partition import CellId
from repro.model import CoalescedMove, LocationUpdate, Place, SafetyRecord, Unit


class OptCTUP(CTUPMonitor):
    """The optimized scheme of Section IV."""

    name = "opt"

    STATE_FIELDS = ("cell_states", "maintained", "dechash", "_delta")

    def __init__(
        self,
        config: CTUPConfig,
        places: Sequence[Place],
        units: Iterable[Unit],
    ) -> None:
        super().__init__(config, places, units)
        self.cell_states: dict[CellId, CellState] = {}
        self.maintained = MaintainedPlaces()
        self.dechash = DecHash()
        #: the live Δ. Starts at the configured value; may be retuned at
        #: runtime (see :mod:`repro.core.adaptive`) — any non-negative
        #: value is sound, Δ only shapes the maintain/access trade-off.
        self._delta = float(config.delta)

    @property
    def delta(self) -> float:
        """The live Δ slack used by cell-access trimming."""
        return self._delta

    @delta.setter
    def delta(self, value: float) -> None:
        if value < 0:
            raise ValueError("delta cannot be negative")
        self._delta = float(value)

    # -- initialization (§IV-D) -------------------------------------------

    def _build_initial_state(self) -> None:
        # Step 1: exact per-cell minima become the initial bounds.
        for cell in self.store.occupied_cells():
            arrays = self.store.cell_arrays(cell)
            ap, compared = self.units.ap_counts_near(
                arrays.xs, arrays.ys, self.grid.cell_rect(cell)
            )
            safeties = ap - arrays.required
            self.counters.distance_rows += len(arrays) * compared
            self.counters.places_loaded += len(arrays)
            self.cell_states[cell] = CellState(
                lower_bound=float(safeties.min()),
                place_count=len(arrays),
            )
        # Step 2: access cells in increasing bound order, keeping their
        # places *temporarily* (scratch arrays, not the maintained
        # table), until SK covers the rest.
        accessed: list[tuple[CellId, list[Place], np.ndarray]] = []
        scratch: list[np.ndarray] = []
        sk = self._running_sk(scratch)
        by_bound = sorted(
            self.cell_states, key=lambda c: self.cell_states[c].lower_bound
        )
        for cell in by_bound:
            if sk <= self.cell_states[cell].lower_bound:
                break
            places, arrays = self.store.read_cell_with_arrays(cell)
            ap, compared = self.units.ap_counts_near(
                arrays.xs, arrays.ys, self.grid.cell_rect(cell)
            )
            safeties = (ap - arrays.required).astype(np.float64)
            accessed.append((cell, places, safeties))
            scratch.append(safeties)
            sk = self._running_sk(scratch)
            self.counters.cells_accessed += 1
            self.counters.places_loaded += len(places)
            self.counters.distance_rows += len(places) * compared
        # Step 3: keep only the places below SK + Δ (ties at SK always
        # kept, see _trim_cell); the dropped minima become the bounds.
        threshold = sk + self.delta
        for cell, places, safeties in accessed:
            state = self.cell_states[cell]
            state.access_count += 1
            linear = self.grid.linear(cell)
            keep = (safeties < threshold) | (safeties <= sk)
            dropped = safeties[~keep]
            state.lower_bound = (
                float(dropped.min()) if len(dropped) else math.inf
            )
            for place, safety, kept in zip(places, safeties, keep):
                if kept:
                    self.maintained.insert(place, float(safety), linear)
        # Step 4 of the paper: DecHash starts empty.
        self.dechash.clear()

    def _running_sk(self, scratch: list[np.ndarray]) -> float:
        """The SK estimate during initialisation's access loop.

        Overridable: the threshold variant (§VII) monitors against a
        fixed safety threshold instead of the k-th smallest value.
        """
        if not scratch:
            return math.inf
        return kth_smallest(np.concatenate(scratch), self.config.k)

    # -- update (§IV-E) -----------------------------------------------------

    def _apply(self, update: LocationUpdate) -> None:
        old = self.units.apply(update)
        new = update.new_location
        radius = self.config.protection_range

        # Step 1: adjust the safeties of the maintained places.
        scanned = self.maintained.apply_unit_move(old, new, radius)
        self.counters.maintained_scans += scanned
        # two point-in-disk tests (old and new position) per scanned place.
        self.counters.distance_rows += 2 * scanned

        # Step 2: Table II (Table I when DOO is disabled) on every cell
        # intersecting the old or new protection region.
        self._adjust_bounds(update.unit_id, old, new, radius)

    def _apply_burst(self, moves: Sequence[CoalescedMove]) -> int:
        """Chain-aware maintain phase: endpoints telescope, tables fold.

        Like BasicCTUP, but the fold runs Table II: DecHash transitions
        are path-dependent (a mid-chain ``→F`` re-arms a decrease), so
        every waypoint step is replayed while positions and the
        maintained scan use the chain endpoints only. The vectorised
        kernels take over under ``config.burst_kernels``; results are
        bit-identical.
        """
        if self.config.burst_kernels:
            return kernels.apply_burst_opt(self, moves)
        radius = self.config.protection_range
        skipped = 0
        for move in moves:
            old = self.units.apply_chain(move.raws)
            scanned = self.maintained.apply_unit_move(old, move.last_new, radius)
            self.counters.maintained_scans += scanned
            self.counters.distance_rows += 2 * scanned
            step_old = old
            for raw in move.raws:
                self._adjust_bounds(
                    move.unit_id, step_old, raw.new_location, radius
                )
                step_old = raw.new_location
            skipped += move.raw_count - 1
        return skipped

    def _refresh(self) -> int:
        # Step 3: access every cell whose bound fell below SK.
        if self.config.burst_kernels:
            return kernels.refill_below_sk(
                self.cell_states,
                self.sk,
                self._access_cell,
                skip_illuminated=False,
                obs=self.obs,
            )
        return self._access_below_sk()

    def _adjust_bounds(
        self, unit_id: int, old: Point, new: Point, radius: float
    ) -> None:
        # one vectorised stencil pass classifies both disks against all
        # candidate cells (N -> N cells are never emitted — they carry
        # no Table I/II action).
        stencil = self.grid.stencil(radius)
        for cell, rel_old, rel_new in stencil.classify_move(old, new):
            state = self.cell_states.get(cell)
            if state is None:
                continue
            if self.config.use_doo:
                in_hash = self.dechash.contains(unit_id, cell)
                delta, hash_action = table2_action(rel_old, rel_new, in_hash)
                if hash_action == HASH_INSERT:
                    inserted = self.dechash.insert(unit_id, cell)
                    if inserted:
                        self.counters.dechash_inserts += 1
                    elif delta < 0:
                        # the pair was unexpectedly present: decreasing
                        # again would double-count this unit, skip it.
                        delta = 0
                elif hash_action == HASH_REMOVE:
                    if self.dechash.remove(unit_id, cell):
                        self.counters.dechash_removes += 1
                if in_hash and delta == 0 and table1_delta(rel_old, rel_new) < 0:
                    self.counters.doo_suppressed += 1
            else:
                delta = table1_delta(rel_old, rel_new)
            if delta > 0:
                state.increase(delta)
                self.counters.lb_increments += 1
            elif delta < 0:
                state.decrease(-delta)
                self.counters.lb_decrements += 1

    def _access_below_sk(self) -> int:
        """Step 3: access offending cells until every bound clears SK."""
        accessed = 0
        while True:
            sk = self.sk()
            best: CellId | None = None
            best_bound = math.inf
            for cell, state in self.cell_states.items():
                if state.lower_bound < sk and state.lower_bound < best_bound:
                    best_bound = state.lower_bound
                    best = cell
            if best is None:
                return accessed
            self._access_cell(best)
            accessed += 1

    def _access_cell(self, cell: CellId) -> None:
        """Reload a cell: exact safeties, adjust SK, keep the Δ band.

        The cell's maintained places are replaced wholesale by the fresh
        computation, its DecHash pairs are cleared (the new bound is
        exact, so every unit is re-armed for one future decrease), and
        the bound becomes the minimum safety of the places *not* kept.
        """
        state = self.cell_states[cell]
        linear = self.grid.linear(cell)
        self.maintained.remove_rows(self.maintained.rows_of_cell(linear).tolist())
        self._load_cell_into_maintained(cell)
        self._trim_cell(cell)
        self.dechash.clear_cell(cell)
        state.access_count += 1

    def _load_cell_into_maintained(self, cell: CellId) -> None:
        places, arrays = self.store.read_cell_with_arrays(cell)
        ap, compared = self.units.ap_counts_near(
            arrays.xs, arrays.ys, self.grid.cell_rect(cell)
        )
        safeties = ap - arrays.required
        self.maintained.insert_batch(places, safeties, self.grid.linear(cell))
        self.counters.cells_accessed += 1
        self.counters.places_loaded += len(places)
        self.counters.distance_rows += len(places) * compared

    def _trim_cell(self, cell: CellId) -> None:
        """Keep only the places below ``SK + Δ``; bound the rest.

        Places with ``safety <= SK`` are always kept even when Δ is 0:
        dropping a place tied at SK would evict part of the top-k result
        and make the access loop oscillate. For any Δ >= 1 (safeties are
        integers in the core model) this coincides with the paper's rule.
        """
        state = self.cell_states[cell]
        linear = self.grid.linear(cell)
        sk = self.sk()
        threshold = sk + self.delta
        rows = self.maintained.rows_of_cell(linear)
        safeties = self.maintained.safety_at_rows(rows)
        drop = rows[(safeties >= threshold) & (safeties > sk)]
        state.lower_bound = self.maintained.remove_rows(drop.tolist())

    # -- reconfiguration (repro.control) ------------------------------------

    def _reset_scheme_state(self) -> None:
        self.cell_states = {}
        self.maintained = MaintainedPlaces()
        self.dechash = DecHash()
        # _delta is a tuning knob, not derived state: it survives rebuilds.

    def _control_place_added(self, place: Place, cell: CellId) -> bool:
        safety = (
            float(self.units.ap_of_point(place.location))
            - place.required_protection
        )
        state = self.cell_states.get(cell)
        if state is None:
            # a previously empty cell: exact knowledge, tightest bound.
            self.cell_states[cell] = CellState(
                lower_bound=safety, place_count=1
            )
        else:
            # OptCTUP never illuminates wholesale — the cheap sound move
            # is to fold the new place under the cell's bound; the next
            # access promotes it into the maintained band if warranted.
            state.lower_bound = min(state.lower_bound, safety)
            state.place_count += 1
        self._refresh()
        return True

    def _control_place_removed(self, place: Place, cell: CellId) -> bool:
        state = self.cell_states[cell]
        if place.place_id in self.maintained:
            self.maintained.remove_id(place.place_id)
        # otherwise the place sat under the cell bound; removing it can
        # only raise the true minimum, so the bound stays sound.
        state.place_count -= 1
        if state.place_count == 0:
            # an empty cell must look exactly like one that never had
            # places; drop its DecHash pairs with it.
            del self.cell_states[cell]
            self.dechash.clear_cell(cell)
        self._refresh()
        return True

    def _control_place_reweighted(
        self, old: Place, new: Place, cell: CellId
    ) -> bool:
        shift = new.required_protection - old.required_protection
        state = self.cell_states[cell]
        if new.place_id in self.maintained:
            self.maintained.remove_id(new.place_id)
            self.maintained.insert(
                new,
                float(self.units.ap_of_point(new.location))
                - new.required_protection,
                self.grid.linear(cell),
            )
        elif shift > 0:
            # safety = ap - required dropped by `shift` for a place the
            # bound covers; lower the bound by the same amount.
            state.decrease(shift)
        # shift < 0 on a covered place: safeties only rose, bound sound.
        self._refresh()
        return True

    # -- result -------------------------------------------------------------

    def top_k(self) -> list[SafetyRecord]:
        return self.maintained.top_k(self.config.k)

    def partial_top_k(self, m: int) -> list[SafetyRecord]:
        # the maintained table holds every place below SK (plus the Δ
        # slack), so any prefix of its result order is answerable and
        # everything untracked is >= SK — the partial-query contract.
        return self.maintained.top_k(m)

    def sk(self) -> float:
        return self.maintained.sk(self.config.k)

    # -- checkpointing ----------------------------------------------------

    def _export_scheme_state(self) -> dict[str, Any]:
        return {
            "cell_states": export_cell_states(self.cell_states, self.grid),
            "maintained": self.maintained.export_rows(),
            "dechash": self.dechash.export_pairs(self.grid),
            "delta": self._delta,
        }

    def _restore_scheme_state(self, fields: Mapping[str, Any]) -> None:
        self.cell_states = restore_cell_states(
            fields["cell_states"], self.grid
        )
        self.maintained = MaintainedPlaces()
        self.maintained.restore_rows(
            fields["maintained"], self.store, self.grid
        )
        self.dechash = DecHash.from_pairs(fields["dechash"], self.grid)
        delta = float(fields["delta"])
        if delta < 0:
            raise ValueError("delta cannot be negative")
        self._delta = delta
