"""Tables I and II of the paper, transcribed as data.

Keeping the lower-bound transition tables as explicit mappings (rather
than burying the cases in monitor control flow) lets the unit tests
check them entry by entry against the paper, and lets both monitors
share one implementation.
"""

from __future__ import annotations

from repro.geometry.relations import CellRelation

_N = CellRelation.NO_INTERSECT
_P = CellRelation.PARTIAL
_F = CellRelation.FULL

#: Table I: (old relation, new relation) -> lower-bound delta.
#: "N → N/P: 0", "N → F: +", "P → N/P: −", "P → F: 0",
#: "F → N/P: −", "F → F: 0".
TABLE1: dict[tuple[CellRelation, CellRelation], int] = {
    (_N, _N): 0,
    (_N, _P): 0,
    (_N, _F): +1,
    (_P, _N): -1,
    (_P, _P): -1,
    (_P, _F): 0,
    (_F, _N): -1,
    (_F, _P): -1,
    (_F, _F): 0,
}


def table1_delta(rel_old: CellRelation, rel_new: CellRelation) -> int:
    """BasicCTUP's bound adjustment for one unit move over one cell."""
    return TABLE1[(rel_old, rel_new)]


# Table II is conditional on DecHash membership, so it maps to small
# action descriptors instead of bare integers.

#: hash actions: insert the pair, remove it, or leave it alone.
HASH_NONE = "none"
HASH_INSERT = "h+"
HASH_REMOVE = "h-"

#: Table II rows that do not depend on DecHash membership:
#: (old, new) -> (delta, hash action)
TABLE2_UNCONDITIONAL: dict[tuple[CellRelation, CellRelation], tuple[int, str]] = {
    (_N, _N): (0, HASH_NONE),
    (_N, _P): (0, HASH_NONE),
    (_N, _F): (+1, HASH_REMOVE),
    (_F, _N): (-1, HASH_INSERT),
    (_F, _P): (-1, HASH_INSERT),
    (_F, _F): (0, HASH_NONE),
}

#: Table II rows conditional on (unit, cell) ∈ DecHash:
#: (old, new) -> {True/False (pair present) -> (delta, hash action)}
TABLE2_CONDITIONAL: dict[
    tuple[CellRelation, CellRelation], dict[bool, tuple[int, str]]
] = {
    (_P, _N): {True: (0, HASH_NONE), False: (-1, HASH_INSERT)},
    (_P, _P): {True: (0, HASH_NONE), False: (-1, HASH_INSERT)},
    (_P, _F): {True: (+1, HASH_REMOVE), False: (0, HASH_NONE)},
}


def table2_action(
    rel_old: CellRelation, rel_new: CellRelation, pair_in_hash: bool
) -> tuple[int, str]:
    """OptCTUP's (bound delta, hash action) for one unit move over one cell."""
    key = (rel_old, rel_new)
    unconditional = TABLE2_UNCONDITIONAL.get(key)
    if unconditional is not None:
        return unconditional
    return TABLE2_CONDITIONAL[key][pair_in_hash]
