"""Hot-path benchmark: unit-grid prefilter on vs off, with a guard.

Runs the three schemes over a pinned-seed workload twice — once with the
bucketed unit index (``use_unit_grid=True``, the default) and once with
the linear reachability scan — and writes a canonical JSON document.
``repro.bench.guard`` compares it against the committed baseline
(``BENCH_hotpath.json`` at the repository root): structural mismatch
fails, numeric drift only warns.

CLI (also wired into CI as a smoke job)::

    python benchmarks/bench_hotpath.py --smoke --check   # fast CI guard
    python benchmarks/bench_hotpath.py --write-baseline  # refresh baseline

Running under pytest executes the smoke profile and the structural
comparison against the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys

import numpy as np

from repro.bench import build_workload, run_monitor
from repro.bench.guard import (
    BENCH_NAME,
    SCHEMA_VERSION,
    compare,
    load_baseline,
    write_baseline,
)
from repro.core import CTUPConfig

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"

SCHEMES = ("naive", "basic", "opt")

#: pinned workloads; these parameters are part of the baseline's
#: identity — changing them is a structural break, not a regression.
PROFILES = {
    "smoke": dict(n_units=200, n_places=2_000, stream_length=30, seed=7),
    "default": dict(n_units=1_000, n_places=15_000, stream_length=200, seed=7),
}
K = 5


def machine_metadata() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "numpy": np.__version__,
    }


def _mode_metrics(result) -> dict:
    c = result.update_counters
    u = result.update_unit_stats
    return {
        "wall_seconds": round(result.wall_seconds, 4),
        "maintain_seconds": round(c.time_maintain_s, 4),
        "access_seconds": round(c.time_access_s, 4),
        "candidate_units": u.candidate_units,
        "reachable_units": u.reachable_units,
        "cells_accessed": c.cells_accessed,
        "distance_rows": c.distance_rows,
        "page_reads": result.io.page_reads,
        "array_hits": result.io.array_hits,
        "final_sk": result.final_sk,
    }


def run_profile(name: str, validate: bool = True) -> dict:
    params = PROFILES[name]
    workload = build_workload(**params)
    schemes: dict[str, dict] = {}
    for scheme in SCHEMES:
        modes: dict[str, dict] = {}
        for mode, grid_on in (("indexed", True), ("linear", False)):
            config = CTUPConfig(k=K, use_unit_grid=grid_on)
            result = run_monitor(scheme, config, workload, validate=validate)
            modes[mode] = _mode_metrics(result)
        schemes[scheme] = modes
    return {"workload": {**params, "k": K}, "schemes": schemes}


def run_bench(profiles: list[str], validate: bool = True) -> dict:
    return {
        "bench": BENCH_NAME,
        "version": SCHEMA_VERSION,
        "machine": machine_metadata(),
        "profiles": {name: run_profile(name, validate) for name in profiles},
    }


def _speedup_lines(doc: dict) -> list[str]:
    lines = []
    for profile, prof in doc["profiles"].items():
        for scheme, modes in prof["schemes"].items():
            lin, idx = modes["linear"], modes["indexed"]
            cand = (
                lin["candidate_units"] / idx["candidate_units"]
                if idx["candidate_units"]
                else float("inf")
            )
            wall = (
                lin["wall_seconds"] / idx["wall_seconds"]
                if idx["wall_seconds"]
                else float("inf")
            )
            lines.append(
                f"{profile:8} {scheme:6} units-compared {cand:6.1f}x "
                f"wall {wall:5.2f}x  (exact: dist_rows "
                f"{'==' if lin['distance_rows'] == idx['distance_rows'] else '!='}, "
                f"sk {'==' if lin['final_sk'] == idx['final_sk'] else '!='})"
            )
    return lines


# -- pytest entry point (the CI smoke job runs this file directly) --------


def test_hotpath_smoke_matches_baseline():
    doc = run_bench(["smoke"])
    # the index must prune: strictly fewer candidates than the linear scan,
    # with identical deterministic results.
    for scheme, modes in doc["profiles"]["smoke"]["schemes"].items():
        lin, idx = modes["linear"], modes["indexed"]
        assert idx["candidate_units"] < lin["candidate_units"], scheme
        assert idx["distance_rows"] == lin["distance_rows"], scheme
        assert idx["cells_accessed"] == lin["cells_accessed"], scheme
        assert idx["final_sk"] == lin["final_sk"], scheme
    report = compare(load_baseline(BASELINE_PATH), doc)
    # counters may drift with numpy/python versions (warned, tolerated);
    # a structural mismatch means the committed baseline is stale.
    assert report.ok(), report.render()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="run only the fast smoke profile"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline "
        "(exit 1 on structural mismatch)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="with --check: also fail on counter regressions",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=f"write the results to {BASELINE_PATH.name}",
    )
    parser.add_argument(
        "--no-validate",
        action="store_true",
        help="skip the per-run brute-force top-k validation",
    )
    args = parser.parse_args(argv)

    profiles = ["smoke"] if args.smoke else ["smoke", "default"]
    doc = run_bench(profiles, validate=not args.no_validate)
    print(json.dumps(doc["machine"], sort_keys=True))
    for line in _speedup_lines(doc):
        print(line)

    status = 0
    if args.check:
        try:
            baseline = load_baseline(BASELINE_PATH)
        except FileNotFoundError:
            print(f"no baseline at {BASELINE_PATH}; run --write-baseline first")
            return 1
        report = compare(baseline, doc)
        print(report.render())
        if not report.ok(strict=args.strict):
            status = 1
    if args.write_baseline:
        write_baseline(BASELINE_PATH, doc)
        print(f"baseline written to {BASELINE_PATH}")
    return status


if __name__ == "__main__":
    sys.exit(main())
