"""repro.obs — observability: metrics, tracing, exposition.

The package turns the monitor from a post-hoc black box into a live
service surface, in three layers that all ship null twins so disabled
observability costs one ``is None`` check on the hot path:

* :mod:`repro.obs.registry` — counters / gauges / fixed-bucket
  histograms with labels, behind :class:`MetricsRegistry` (live) and
  :class:`NullRegistry` (no-op).
* :mod:`repro.obs.trace` — :class:`Span`/:class:`Tracer` ring buffer
  over monitor phases, kernel passes, shard drains, merges and journal
  I/O, exportable as a Chrome ``chrome://tracing`` JSON trace.
* :mod:`repro.obs.expo` — Prometheus text rendering, ``json_dump``
  snapshots, a validating parser, and a stdlib ``/metrics`` server.

Everything is wired through :class:`ObsSpec` (the grouped option you
hand to ``open_session(obs=...)``) and the resulting
:class:`Observability` bundle; :mod:`repro.obs.bridge` mirrors the
native ``MonitorCounters``/``IoStats``/``UnitKernelStats``/``MergeStats``
ledgers into registry gauges, and :class:`ObservabilityHooks` rides the
engine hook bus for stream-level metrics.
"""

from __future__ import annotations

from repro.obs.bridge import attach_observability, sync_monitor_metrics
from repro.obs.expo import (
    MetricsServer,
    json_dump,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.spec import Observability, ObsSpec, coerce_observability
from repro.obs.trace import NullTracer, Span, Tracer, write_chrome_trace

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsServer",
    "NullRegistry",
    "NullTracer",
    "ObsSpec",
    "Observability",
    "ObservabilityHooks",
    "Span",
    "Tracer",
    "attach_observability",
    "coerce_observability",
    "json_dump",
    "parse_prometheus",
    "render_prometheus",
    "sync_monitor_metrics",
    "write_chrome_trace",
]


def __getattr__(name: str) -> object:
    # ObservabilityHooks pulls in repro.engine (and through it the core
    # schemes); load it lazily so `import repro.obs` stays dependency-light
    # and safe from circular imports regardless of entry point.
    if name == "ObservabilityHooks":
        from repro.obs.hooks import ObservabilityHooks

        return ObservabilityHooks
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
