"""Command-line interface.

``ctup list`` shows every registered experiment; ``ctup run fig4``
regenerates one paper artefact and prints its series; ``ctup run all``
walks the whole evaluation. ``--scale`` shrinks workloads for quick
looks (1.0 = Table III sizes).

The entry point is installed as ``ctup`` and also runs as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.experiments import all_experiments, get_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ctup",
        description=(
            "Reproduction harness for 'On Monitoring the top-k Unsafe "
            "Places' (ICDE 2008)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all registered experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        help="experiment id (fig3..fig9, table3, ablation_*, or 'all')",
    )
    run.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale factor; 1.0 = paper sizes (default: "
        "REPRO_BENCH_SCALE or 1.0)",
    )
    run.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )

    report = sub.add_parser(
        "report",
        help="run every experiment and write a markdown results report",
    )
    report.add_argument(
        "--out",
        default="MEASURED.md",
        help="output path (default MEASURED.md; '-' prints to stdout)",
    )
    report.add_argument("--scale", type=float, default=None)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="restrict to these experiment ids",
    )

    simulate = sub.add_parser(
        "simulate",
        help="run a named scenario live and print a dashboard",
    )
    simulate.add_argument(
        "scenario", help="scenario name (see repro.workloads.SCENARIOS)"
    )
    simulate.add_argument("--updates", type=int, default=1_000)
    simulate.add_argument("--k", type=int, default=10)
    simulate.add_argument("--places", type=int, default=4_000)
    simulate.add_argument("--units", type=int, default=50)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--scheme",
        default="opt",
        help="monitoring scheme (a repro.api.SCHEMES key; default opt)",
    )
    simulate.add_argument(
        "--shards",
        type=int,
        default=0,
        help="run the scheme sharded over this many shards (0 = unsharded)",
    )
    simulate.add_argument(
        "--parallelism",
        type=int,
        default=0,
        help="with --shards: drain shards on this many worker threads",
    )
    simulate.add_argument(
        "--map", action="store_true", help="render the final cell map"
    )
    simulate.add_argument(
        "--batch-size",
        type=int,
        default=0,
        help="ingest in exact bursts of this size (0 = one by one)",
    )
    simulate.add_argument(
        "--checkpoint-dir",
        default=None,
        help="journal every update there and snapshot per "
        "--checkpoint-every (plus once when the run ends)",
    )
    simulate.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="with --checkpoint-dir: snapshot every N flush boundaries "
        "(0 = only at the end)",
    )
    simulate.add_argument(
        "--resume",
        action="store_true",
        help="recover --checkpoint-dir and continue the interrupted run "
        "(pass the same scenario knobs and --batch-size)",
    )
    simulate.add_argument(
        "--metrics",
        action="store_true",
        help="collect registry metrics and print the Prometheus text "
        "exposition after the run",
    )
    simulate.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="trace phases/kernels/shard drains and write a Chrome "
        "trace (chrome://tracing JSON) to PATH",
    )

    checkpoint = sub.add_parser(
        "checkpoint",
        help="inspect a checkpoint directory (snapshots + journal)",
    )
    checkpoint.add_argument(
        "directory", help="a --checkpoint-dir from a previous run"
    )

    admin = sub.add_parser(
        "admin",
        help="queue reconfiguration events against a checkpoint directory",
        description=(
            "Appends control events (see repro.control) to the checkpoint "
            "journal; the next resumed run replays them in order with the "
            "data updates. 'show' prints the control-plane state instead."
        ),
    )
    admin.add_argument(
        "directory", help="a --checkpoint-dir from a previous run"
    )
    admin.add_argument(
        "--mode",
        choices=["incremental", "rebuild"],
        default="incremental",
        help="how the resumed monitor applies the event (default "
        "incremental; rebuild is the always-safe slow path)",
    )
    admin_sub = admin.add_subparsers(dest="action", required=True)
    admin_sub.add_parser(
        "show", help="print epoch, config and queued control events"
    )
    add_place = admin_sub.add_parser("add-place", help="open a new place")
    add_place.add_argument("--id", type=int, required=True, dest="place_id")
    add_place.add_argument("--x", type=float, required=True)
    add_place.add_argument("--y", type=float, required=True)
    add_place.add_argument(
        "--required", type=int, required=True, help="required protection RP(p)"
    )
    add_place.add_argument("--place-kind", default="place", dest="place_kind")
    remove_place = admin_sub.add_parser(
        "remove-place", help="close an existing place"
    )
    remove_place.add_argument("--id", type=int, required=True, dest="place_id")
    reweight = admin_sub.add_parser(
        "reweight", help="change a place's required protection"
    )
    reweight.add_argument("--id", type=int, required=True, dest="place_id")
    reweight.add_argument("--required", type=int, required=True)
    set_k = admin_sub.add_parser("set-k", help="retune the result size k")
    set_k.add_argument("k", type=int)
    retune = admin_sub.add_parser(
        "retune-grid", help="repartition the space at a new granularity"
    )
    retune.add_argument("granularity", type=int)
    reshard = admin_sub.add_parser(
        "reshard", help="migrate to a new shard count (sharded runs only)"
    )
    reshard.add_argument("shards", type=int)
    reshard.add_argument(
        "--strategy",
        default="striped",
        help="cell->shard assignment strategy (default striped)",
    )

    lint = sub.add_parser(
        "lint",
        help="run reprolint, the repo-aware static analyzer",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        dest="lint_format",
        help="report format (default text)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    lint.add_argument(
        "--mypy",
        action="store_true",
        help="also run mypy over the strict-typed module set, if installed",
    )
    lint.add_argument(
        "--cache",
        nargs="?",
        const="__DEFAULT__",
        default=None,
        metavar="PATH",
        help="use the incremental analysis cache (optional PATH)",
    )
    lint.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="rule-pass worker threads (0 = auto; default serial)",
    )
    lint.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="report only files changed vs the git baseline REF",
    )
    return parser


def _cmd_list() -> int:
    for experiment in all_experiments():
        print(
            f"{experiment.experiment_id:22s} {experiment.paper_ref:14s} "
            f"{experiment.title}"
        )
        print(f"{'':22s} expected: {experiment.expected_shape}")
    return 0


def _cmd_run(experiment_id: str, scale: float | None, seed: int) -> int:
    if experiment_id == "all":
        targets = all_experiments()
    else:
        targets = [get_experiment(experiment_id)]
    for experiment in targets:
        start = time.perf_counter()
        result = experiment.run(scale=scale, seed=seed)
        elapsed = time.perf_counter() - start
        print(result.to_text())
        print(f"  ({experiment.paper_ref}; regenerated in {elapsed:.1f}s)")
        print()
    return 0


def _cmd_report(out: str, scale: float | None, seed: int, only) -> int:
    from repro.bench.report import generate_report

    text = generate_report(scale=scale, seed=seed, experiment_ids=only)
    if out == "-":
        print(text)
    else:
        with open(out, "w") as handle:
            handle.write(text)
        print(f"wrote {out}")
    return 0


def _cmd_simulate(args) -> int:
    from repro.api import ObsSpec, ShardSpec, make_monitor
    from repro.sim import Simulation

    def factory(config, places, units):
        return make_monitor(
            args.scheme,
            places=places,
            units=units,
            config=config,
            shard=ShardSpec(
                shards=args.shards, parallelism=args.parallelism
            ),
        )

    if args.resume and args.checkpoint_dir is None:
        print("--resume needs --checkpoint-dir", file=sys.stderr)
        return 2
    obs_spec = None
    if args.metrics or args.trace_out is not None:
        obs_spec = ObsSpec(
            metrics=args.metrics, trace=args.trace_out is not None
        )
    sim = Simulation.from_scenario(
        args.scenario,
        k=args.k,
        n_places=args.places,
        n_units=args.units,
        seed=args.seed,
        monitor_factory=factory,
        batch_size=args.batch_size,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        obs=obs_spec,
    )
    if args.resume:
        print(
            f"resumed from {args.checkpoint_dir}: "
            f"{sim.session.updates_processed} updates recovered "
            f"(journal seq {sim.session.applied_seq})"
        )
    outcome = sim.run(updates=args.updates)
    if args.trace_out is not None:
        from repro.obs import write_chrome_trace

        tracer = sim.session.observability.tracer
        written = write_chrome_trace(tracer.spans(), args.trace_out)
        print(
            f"wrote {written} trace event(s) to {args.trace_out} "
            f"({tracer.emitted} emitted)",
            file=sys.stderr,
        )
    metrics_text = sim.session.metrics_text() if args.metrics else None
    if args.checkpoint_dir is not None:
        sim.session.close()
    summary = outcome.summary
    print(
        f"{args.scenario}: {outcome.updates} updates, "
        f"SK {summary.sk_start:+.0f} -> {summary.sk_end:+.0f} "
        f"({summary.sk_changes} moves), "
        f"{len(outcome.changes)} result changes"
    )
    print(
        f"cost: p50 {summary.update_ms_p50:.3f} ms, "
        f"p95 {summary.update_ms_p95:.3f} ms per update; "
        f"{summary.accesses_total} cell accesses; "
        f"maintained mean {summary.maintained_mean:.0f} "
        f"max {summary.maintained_max}"
    )
    print("\ncurrent top unsafe places:")
    for rank, record in enumerate(outcome.final_topk, start=1):
        print(
            f"  {rank:2d}. {record.place.kind:14s} #{record.place_id:<6d} "
            f"safety {record.safety:+.0f}"
        )
    if args.map:
        from repro.bench.render import render_cell_map

        print()
        print(render_cell_map(sim.monitor))
    if metrics_text is not None:
        # last on stdout, contiguous from the first "# HELP" line, so
        # scrape-style consumers can slice it off the dashboard output.
        print()
        print(metrics_text, end="")
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.state import CheckpointStore, SnapshotError, UpdateJournal

    directory = Path(args.directory)
    if not directory.is_dir():
        print(f"no checkpoint directory at {directory}", file=sys.stderr)
        return 1
    store = CheckpointStore(directory)
    snapshots = store.snapshot_paths()
    try:
        document = store.latest()
    except SnapshotError as error:
        print(f"unreadable snapshot: {error}", file=sys.stderr)
        return 1
    if document is None:
        print(f"{directory}: no snapshots")
    else:
        meta = document.get("session", {})
        print(f"{directory}: {len(snapshots)} snapshot(s)")
        print(
            f"latest: scheme {document['scheme']!r}, "
            f"journal seq {document['journal_seq']}, "
            f"{meta.get('updates_processed', 0)} updates processed, "
            f"{snapshots[-1].stat().st_size} bytes"
        )
    if store.journal_path.exists():
        journal = UpdateJournal(store.journal_path)
        try:
            after = document["journal_seq"] if document else 0
            total = tail = 0
            for record in journal.records():
                total += 1
                if record.seq > after:
                    tail += 1
            print(
                f"journal: {total} record(s), last seq {journal.last_seq}, "
                f"{tail} past the latest snapshot"
            )
        finally:
            journal.close()
    else:
        print("journal: none")
    return 0


def _cmd_admin(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.control import encode_event, event_kind
    from repro.control.events import (
        GridRetuned,
        KChanged,
        PlaceAdded,
        PlaceRemoved,
        PlaceReweighted,
        ShardPlanChanged,
    )
    from repro.model import Place, Point
    from repro.state import CheckpointStore, SnapshotError, UpdateJournal

    directory = Path(args.directory)
    if not directory.is_dir():
        print(f"no checkpoint directory at {directory}", file=sys.stderr)
        return 1
    store = CheckpointStore(directory)

    if args.action == "show":
        try:
            document = store.latest()
        except SnapshotError as error:
            print(f"unreadable snapshot: {error}", file=sys.stderr)
            return 1
        if document is None:
            print(f"{directory}: no snapshots")
            snapshot_seq = 0
        else:
            config = document.get("config", {})
            print(
                f"{directory}: scheme {document['scheme']!r}, "
                f"epoch {document.get('epoch', 0)}, "
                f"k={config.get('k')}, "
                f"granularity={config.get('granularity')}, "
                f"journal seq {document['journal_seq']}"
            )
            snapshot_seq = int(document.get("journal_seq", 0))
        if not store.journal_path.exists():
            print("control events: none (no journal)")
            return 0
        journal = UpdateJournal(store.journal_path)
        try:
            controls = [
                record for record in journal.records() if record.is_control
            ]
        finally:
            journal.close()
        pending = [r for r in controls if r.seq > snapshot_seq]
        print(
            f"control events: {len(controls)} journaled, "
            f"{len(pending)} queued past the latest snapshot"
        )
        for record in controls:
            payload = dict(record.control)
            mode = payload.pop("mode", "incremental")
            state = "queued" if record.seq > snapshot_seq else "applied"
            print(f"  seq {record.seq:6d} [{state}] {mode}: {payload}")
        return 0

    if args.action == "add-place":
        event = PlaceAdded(
            Place(
                place_id=args.place_id,
                location=Point(args.x, args.y),
                required_protection=args.required,
                kind=args.place_kind,
            )
        )
    elif args.action == "remove-place":
        event = PlaceRemoved(args.place_id)
    elif args.action == "reweight":
        event = PlaceReweighted(args.place_id, args.required)
    elif args.action == "set-k":
        event = KChanged(args.k)
    elif args.action == "retune-grid":
        event = GridRetuned(args.granularity)
    elif args.action == "reshard":
        event = ShardPlanChanged(args.shards, args.strategy)
    else:  # pragma: no cover - argparse enforces the choices
        raise AssertionError(f"unhandled admin action {args.action!r}")

    payload = encode_event(event)
    payload["mode"] = args.mode
    journal = UpdateJournal(store.journal_path)
    try:
        seq = journal.append_control(payload)
    finally:
        journal.close()
    print(
        f"queued {event_kind(event)} at journal seq {seq} "
        f"(mode {args.mode}); the next resumed run applies it"
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main

    forwarded = list(args.paths)
    forwarded += ["--format", args.lint_format]
    if args.list_rules:
        forwarded.append("--list-rules")
    if args.mypy:
        forwarded.append("--mypy")
    if args.cache is not None:
        forwarded.append("--cache")
        if args.cache != "__DEFAULT__":
            forwarded.append(args.cache)
    if args.jobs is not None:
        forwarded += ["--jobs", str(args.jobs)]
    if args.changed is not None:
        forwarded += ["--changed", args.changed]
    return lint_main(forwarded)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, args.scale, args.seed)
    if args.command == "report":
        return _cmd_report(args.out, args.scale, args.seed, args.only)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "checkpoint":
        return _cmd_checkpoint(args)
    if args.command == "admin":
        return _cmd_admin(args)
    if args.command == "lint":
        return _cmd_lint(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
