"""Applying a control event to a live monitor.

:func:`apply_control` is the single entry point of the control plane.
One application is always the same four-step dance:

1. **World patch** — mutate the ground truth the event names: the place
   catalog (through :class:`~repro.control.catalog.PlaceCatalog`), the
   config's ``k``, the grid granularity, the shard plan.
2. **Scheme patch** — ask the monitor to absorb the change into its
   derived state incrementally (the ``_control_*`` hooks). A hook
   returning ``False`` — or the caller passing ``mode="rebuild"`` —
   triggers the documented fallback: rebuild the derived state from
   scratch over the patched world (:meth:`_rebuild_in_place`).
   Incremental and rebuild must produce result-equivalent monitors;
   the test suite checks exactly that.
3. **Epoch bump** — ``monitor.epoch += 1``; snapshots and reports carry
   the epoch so a recovery can tell which world a record belongs to.
4. **Ledger neutrality** — all work done above is measured, billed to
   the returned :class:`~repro.control.events.EpochReport`, and then
   erased from the monitor's own counters, so reconfiguring mid-run
   never perturbs the benchmark ledgers of the run itself.

Control events apply only *between* batches — the engine session
(:meth:`repro.engine.session.MonitorSession.apply_control`) flushes any
buffered updates first, and the sharded monitor refuses to resnapshot
or reshard with deliveries still queued.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Mapping

from repro.control.catalog import PlaceCatalog
from repro.control.events import (
    ControlEvent,
    EpochReport,
    GridRetuned,
    KChanged,
    PlaceAdded,
    PlaceRemoved,
    PlaceReweighted,
    ShardPlanChanged,
    event_kind,
)

if TYPE_CHECKING:
    from repro.core.monitor import CTUPMonitor

_MODES = ("incremental", "rebuild")


def _patch_world_and_scheme(
    monitor: "CTUPMonitor", event: ControlEvent, incremental: bool
) -> bool:
    """Steps 1 and 2; returns whether the scheme absorbed the event
    incrementally (``False`` means the caller must rebuild)."""
    if isinstance(event, PlaceAdded):
        cell = PlaceCatalog(monitor.store).add_place(event.place)
        return incremental and monitor._control_place_added(event.place, cell)
    if isinstance(event, PlaceRemoved):
        cell = monitor.store.cell_of_place(event.place_id)
        old = PlaceCatalog(monitor.store).remove_place(event.place_id)
        return incremental and monitor._control_place_removed(old, cell)
    if isinstance(event, PlaceReweighted):
        cell = monitor.store.cell_of_place(event.place_id)
        old = PlaceCatalog(monitor.store).reweight(
            event.place_id, event.required_protection
        )
        new = monitor.store.peek_place(event.place_id)
        return incremental and monitor._control_place_reweighted(old, new, cell)
    if isinstance(event, KChanged):
        monitor.config = monitor.config.replace(k=event.k)
        return incremental and monitor._control_k_changed()
    if isinstance(event, GridRetuned):
        # every cell boundary, page assignment and bound moves at once —
        # there is no incremental patch, by design.
        monitor._retune_grid(event.granularity)
        return False
    if isinstance(event, ShardPlanChanged):
        reshard = getattr(monitor, "_control_reshard", None)
        if reshard is None:
            raise ValueError(
                "shard_plan_changed applies only to sharded monitors"
            )
        return reshard(event.shards, event.strategy, incremental)
    raise TypeError(f"not a control event: {event!r}")


def _ledger_cost(
    monitor: "CTUPMonitor", token: Mapping[str, object]
) -> tuple[int, int, int]:
    """(cells_accessed, places_loaded, page_reads) spent since ``token``.

    A sharded monitor's work snapshot carries the *merged* ledgers (its
    own counters never move); prefer those when present.
    """
    if "merged_counters" in token:
        counters = monitor.merged_counters() - token["merged_counters"]
        io = monitor.merged_io() - token["merged_io"]
    else:
        counters = monitor.counters - token["counters"]
        io = monitor.store.io_stats - token["io"]
    return (
        int(counters.cells_accessed),
        int(counters.places_loaded),
        int(io.page_reads),
    )


def apply_control(
    monitor: "CTUPMonitor", event: ControlEvent, *, mode: str = "incremental"
) -> EpochReport:
    """Apply ``event`` to ``monitor``; returns the epoch receipt."""
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    monitor._require_initialized()
    kind = event_kind(event)
    start = time.perf_counter()
    token = monitor._control_work_snapshot()
    absorbed = _patch_world_and_scheme(monitor, event, mode == "incremental")
    if not absorbed:
        monitor._rebuild_in_place()
    monitor.epoch += 1
    cells, places, reads = _ledger_cost(monitor, token)
    # read the report's SK *inside* the neutral window — schemes that
    # fetch place records lazily (naive) touch storage to answer it.
    sk = monitor.sk()
    monitor._control_work_restore(token)
    elapsed = time.perf_counter() - start
    if monitor.obs is not None:
        monitor.obs.control_event(
            monitor.name, kind, monitor.epoch, start, elapsed
        )
    return EpochReport(
        epoch=monitor.epoch,
        kind=kind,
        rebuilt=not absorbed,
        seconds=elapsed,
        cells_accessed=cells,
        places_loaded=places,
        page_reads=reads,
        sk=sk,
    )
