"""The threshold variant (§VII, third future-work direction).

Instead of the k *least safe* places, monitor **all** places whose
safety is below a fixed threshold τ. Structurally this is OptCTUP with
``SK`` pinned to τ: a cell needs accessing exactly when its bound falls
below τ, the Δ slack works unchanged, and the answer is every maintained
place with ``safety < τ``. Because τ never moves, the threshold monitor
is even better behaved than the top-k one — no SK drift means cells are
only ever touched by genuine bound decay.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.core.config import CTUPConfig
from repro.core.opt import OptCTUP
from repro.core.topk import tie_key
from repro.model import Place, SafetyRecord, Unit


class ThresholdCTUP(OptCTUP):
    """Continuously monitor every place with ``safety < tau``."""

    name = "threshold"

    STATE_FIELDS = ("_tau",)

    def __init__(
        self,
        config: CTUPConfig,
        places: Sequence[Place],
        units: Iterable[Unit],
        tau: float,
    ) -> None:
        super().__init__(config, places, units)
        self._tau = float(tau)

    @property
    def tau(self) -> float:
        """The monitoring threshold."""
        return self._tau

    def sk(self) -> float:
        """The fixed threshold plays SK's role everywhere."""
        return self._tau

    def _running_sk(self, scratch: list[np.ndarray]) -> float:
        return self._tau

    def unsafe_places(self) -> list[SafetyRecord]:
        """All places with ``safety < tau``, least safe first."""
        result = [
            SafetyRecord(self.maintained.place_of(pid), safety)
            for pid, safety in self.maintained.safeties_snapshot().items()
            if safety < self._tau
        ]
        result.sort(key=lambda r: tie_key(r.safety, r.place_id))
        return result

    def top_k(self) -> list[SafetyRecord]:
        """The monitored set (alias so the common contract still works).

        Note the result size is *not* k here — it is however many places
        are currently below the threshold.
        """
        return self.unsafe_places()

    # -- checkpointing ----------------------------------------------------

    def _export_scheme_state(self) -> dict[str, Any]:
        state = super()._export_scheme_state()
        state["tau"] = self._tau
        return state

    def _restore_scheme_state(self, fields: Mapping[str, Any]) -> None:
        if float(fields["tau"]) != self._tau:
            raise ValueError(
                "snapshot threshold does not match the constructed monitor"
            )
        super()._restore_scheme_state(fields)
