"""In-memory spatial index and snapshot queries.

The continuous monitors (grid-based, per the paper) answer the *standing*
CTUP query. Deployments also need *snapshot* spatial queries — "top-k
unsafe right now, from cold", "places within this district", "nearest
places to an incident" — which classically run on an R-tree (the paper's
related work [23] computes top-k influential sites exactly this way).

This package provides:

* :class:`~repro.index.rtree.RTree` — an STR bulk-loaded R-tree over
  places with range and nearest-neighbour queries;
* :mod:`repro.index.snapshot` — a best-first snapshot top-k-unsafe
  algorithm that descends the tree guided by per-subtree safety lower
  bounds, pruning everything that cannot beat the current k-th result;
* :class:`~repro.index.unitgrid.UnitGridIndex` — a grid-bucketed
  secondary index over the *moving units*, maintained incrementally per
  location update, that turns the AP kernels' reachability prefilter
  from an O(|U|) scan into a bucket-neighbourhood gather.
"""

from repro.index.rtree import RTree, RTreeNode
from repro.index.snapshot import SnapshotTopK, snapshot_top_k_unsafe
from repro.index.unitgrid import UnitGridIndex

__all__ = [
    "RTree",
    "RTreeNode",
    "SnapshotTopK",
    "snapshot_top_k_unsafe",
    "UnitGridIndex",
]
