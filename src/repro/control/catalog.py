"""The mutable place catalog.

:class:`PlaceCatalog` is the sanctioned mutation surface over a
:class:`~repro.storage.placestore.PlaceStore`: the control plane routes
every ``place_added`` / ``place_removed`` / ``place_reweighted`` event
through it, and the RPL015 lint rule flags direct store mutations
anywhere outside ``repro.storage`` / ``repro.control``.

Besides delegating, the catalog validates event-shaped inputs (so a
malformed journal entry fails loudly before touching pages) and keeps a
running mutation count — a cheap freshness check for tests and the
admin CLI.
"""

from __future__ import annotations

from typing import Iterator

from repro.grid.partition import CellId
from repro.model import Place
from repro.storage.placestore import PlaceStore


class PlaceCatalog:
    """Add, remove, and reweight places of one store, between batches."""

    def __init__(self, store: PlaceStore) -> None:
        self._store = store
        #: catalog mutations applied through this façade.
        self.mutations = 0

    @property
    def store(self) -> PlaceStore:
        """The wrapped store (read-only access stays on the store)."""
        return self._store

    def __len__(self) -> int:
        return self._store.place_count

    def __contains__(self, place_id: int) -> bool:
        return self._store.has_place(int(place_id))

    def __iter__(self) -> Iterator[Place]:
        return iter(self._store.peek_all_places())

    def add_place(self, place: Place) -> CellId:
        """Insert ``place``; returns the cell it landed in."""
        if not isinstance(place, Place):
            raise TypeError(f"expected a Place, got {type(place).__name__}")
        cell = self._store.add_place(place)
        self.mutations += 1
        return cell

    def remove_place(self, place_id: int) -> Place:
        """Remove the place with ``place_id``; returns the old record."""
        place = self._store.remove_place(int(place_id))
        self.mutations += 1
        return place

    def reweight(self, place_id: int, required_protection: int) -> Place:
        """Change a place's required protection; returns the *old* record."""
        if required_protection < 0:
            raise ValueError("required_protection cannot be negative")
        old = self._store.reweight(int(place_id), int(required_protection))
        self.mutations += 1
        return old
