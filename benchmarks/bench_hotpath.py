"""Hot-path benchmark: unit-grid prefilter on vs off, with a guard.

Runs the three schemes over a pinned-seed workload twice — once with the
bucketed unit index (``use_unit_grid=True``, the default) and once with
the linear reachability scan — and writes a canonical JSON document.
``repro.bench.guard`` compares it against the committed baseline
(``BENCH_hotpath.json`` at the repository root): structural mismatch
fails, numeric drift only warns.

CLI (also wired into CI as a smoke job)::

    python benchmarks/bench_hotpath.py --smoke --check   # fast CI guard
    python benchmarks/bench_hotpath.py --write-baseline  # refresh baseline
    python benchmarks/bench_hotpath.py --obs-overhead    # obs cost guard

``--obs-overhead`` is the observability-layer budget check: it runs the
same stream with ``obs=None`` (the shipped disabled path — one
``is None`` branch per phase) and with a null-sink ``Observability``
bundle (every instrumentation call executes, into no-op twins), and
fails when the min-of-repeats wall time diverges past the threshold
(default 3%). Running under pytest executes the smoke profile and the
structural comparison against the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

import numpy as np

from repro.bench import build_workload, run_monitor
from repro.bench.guard import (
    BENCH_NAME,
    SCHEMA_VERSION,
    compare,
    load_baseline,
    write_baseline,
)
from repro.core import CTUPConfig

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"

SCHEMES = ("naive", "basic", "opt")

#: pinned workloads; these parameters are part of the baseline's
#: identity — changing them is a structural break, not a regression.
PROFILES = {
    "smoke": dict(n_units=200, n_places=2_000, stream_length=30, seed=7),
    "default": dict(n_units=1_000, n_places=15_000, stream_length=200, seed=7),
}
K = 5


def machine_metadata() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "numpy": np.__version__,
    }


def _mode_metrics(result) -> dict:
    c = result.update_counters
    u = result.update_unit_stats
    return {
        "wall_seconds": round(result.wall_seconds, 4),
        "maintain_seconds": round(c.time_maintain_s, 4),
        "access_seconds": round(c.time_access_s, 4),
        "candidate_units": u.candidate_units,
        "reachable_units": u.reachable_units,
        "cells_accessed": c.cells_accessed,
        "distance_rows": c.distance_rows,
        "page_reads": result.io.page_reads,
        "array_hits": result.io.array_hits,
        "final_sk": result.final_sk,
    }


def run_profile(name: str, validate: bool = True) -> dict:
    params = PROFILES[name]
    workload = build_workload(**params)
    schemes: dict[str, dict] = {}
    for scheme in SCHEMES:
        modes: dict[str, dict] = {}
        for mode, grid_on in (("indexed", True), ("linear", False)):
            config = CTUPConfig(k=K, use_unit_grid=grid_on)
            result = run_monitor(scheme, config, workload, validate=validate)
            modes[mode] = _mode_metrics(result)
        schemes[scheme] = modes
    return {"workload": {**params, "k": K}, "schemes": schemes}


def run_bench(profiles: list[str], validate: bool = True) -> dict:
    return {
        "bench": BENCH_NAME,
        "version": SCHEMA_VERSION,
        "machine": machine_metadata(),
        "profiles": {name: run_profile(name, validate) for name in profiles},
    }


def _speedup_lines(doc: dict) -> list[str]:
    lines = []
    for profile, prof in doc["profiles"].items():
        for scheme, modes in prof["schemes"].items():
            lin, idx = modes["linear"], modes["indexed"]
            cand = (
                lin["candidate_units"] / idx["candidate_units"]
                if idx["candidate_units"]
                else float("inf")
            )
            wall = (
                lin["wall_seconds"] / idx["wall_seconds"]
                if idx["wall_seconds"]
                else float("inf")
            )
            lines.append(
                f"{profile:8} {scheme:6} units-compared {cand:6.1f}x "
                f"wall {wall:5.2f}x  (exact: dist_rows "
                f"{'==' if lin['distance_rows'] == idx['distance_rows'] else '!='}, "
                f"sk {'==' if lin['final_sk'] == idx['final_sk'] else '!='})"
            )
    return lines


# -- observability overhead guard -----------------------------------------


def _timed_session_run(workload, config, obs) -> float:
    from repro.api import make_monitor
    from repro.engine.session import MonitorSession

    monitor = make_monitor(
        "opt", places=workload.places, units=workload.units, config=config
    )
    session = MonitorSession(monitor, track_changes=False, obs=obs)
    session.start()
    start = time.perf_counter()
    session.run(workload.stream)
    return time.perf_counter() - start


#: the overhead A/B needs a longer stream than the baseline smoke
#: profile: a ~4 ms run cannot discriminate a 3% budget from scheduler
#: noise, and this workload is not part of any committed baseline.
_OVERHEAD_PARAMS = dict(n_units=200, n_places=2_000, stream_length=400, seed=7)


def run_obs_overhead(
    repeats: int = 7, threshold: float = 0.03
) -> tuple[bool, str]:
    """A/B the disabled-observability hot path against a null bundle.

    Interleaves the two variants ``repeats`` times and compares the
    fastest run of each — min-of-repeats is the standard way to strip
    scheduler noise from a same-process A/B. Returns ``(ok, report)``.
    """
    from repro.obs.registry import NULL_REGISTRY
    from repro.obs.spec import Observability
    from repro.obs.trace import NULL_TRACER

    workload = build_workload(**_OVERHEAD_PARAMS)
    config = CTUPConfig(k=K)
    null_bundle = Observability(registry=NULL_REGISTRY, tracer=NULL_TRACER)
    off: list[float] = []
    nulled: list[float] = []
    _timed_session_run(workload, config, None)  # warm caches once
    for _ in range(repeats):
        off.append(_timed_session_run(workload, config, None))
        nulled.append(_timed_session_run(workload, config, null_bundle))
    ratio = min(nulled) / min(off) if min(off) else float("inf")
    ok = ratio <= 1.0 + threshold
    report = (
        f"obs overhead: off {min(off) * 1e3:.1f} ms, "
        f"null-bundle {min(nulled) * 1e3:.1f} ms, "
        f"ratio {ratio:.3f} (budget {1.0 + threshold:.2f}) "
        f"[min of {repeats}]"
    )
    return ok, report


# -- pytest entry point (the CI smoke job runs this file directly) --------


def test_hotpath_smoke_matches_baseline():
    doc = run_bench(["smoke"])
    # the index must prune: strictly fewer candidates than the linear scan,
    # with identical deterministic results.
    for scheme, modes in doc["profiles"]["smoke"]["schemes"].items():
        lin, idx = modes["linear"], modes["indexed"]
        assert idx["candidate_units"] < lin["candidate_units"], scheme
        assert idx["distance_rows"] == lin["distance_rows"], scheme
        assert idx["cells_accessed"] == lin["cells_accessed"], scheme
        assert idx["final_sk"] == lin["final_sk"], scheme
    report = compare(load_baseline(BASELINE_PATH), doc)
    # counters may drift with numpy/python versions (warned, tolerated);
    # a structural mismatch means the committed baseline is stale.
    assert report.ok(), report.render()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="run only the fast smoke profile"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline "
        "(exit 1 on structural mismatch)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="with --check: also fail on counter regressions",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=f"write the results to {BASELINE_PATH.name}",
    )
    parser.add_argument(
        "--no-validate",
        action="store_true",
        help="skip the per-run brute-force top-k validation",
    )
    parser.add_argument(
        "--obs-overhead",
        action="store_true",
        help="run only the observability overhead A/B guard "
        "(exit 1 past --obs-threshold)",
    )
    parser.add_argument(
        "--obs-threshold",
        type=float,
        default=0.03,
        help="allowed fractional slowdown of the null-bundle run "
        "(default 0.03 = 3%%)",
    )
    args = parser.parse_args(argv)

    if args.obs_overhead:
        ok, report = run_obs_overhead(threshold=args.obs_threshold)
        print(report)
        return 0 if ok else 1

    profiles = ["smoke"] if args.smoke else ["smoke", "default"]
    doc = run_bench(profiles, validate=not args.no_validate)
    print(json.dumps(doc["machine"], sort_keys=True))
    for line in _speedup_lines(doc):
        print(line)

    status = 0
    if args.check:
        try:
            baseline = load_baseline(BASELINE_PATH)
        except FileNotFoundError:
            print(f"no baseline at {BASELINE_PATH}; run --write-baseline first")
            return 1
        report = compare(baseline, doc)
        print(report.render())
        if not report.ok(strict=args.strict):
            status = 1
    if args.write_baseline:
        write_baseline(BASELINE_PATH, doc)
        print(f"baseline written to {BASELINE_PATH}")
    return status


if __name__ == "__main__":
    sys.exit(main())
