"""Serialize / restore OptCTUP monitoring state.

The checkpoint format is versioned JSON. It deliberately stores only the
*dynamic* state — unit positions, per-cell bounds, the maintained band's
(place id, safety, cell) rows, DecHash pairs — and identifies the place
set by a content fingerprint instead of embedding it: the place set is
static input, and restoring against a different one must fail loudly
rather than resume with silently wrong safeties.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Sequence

from repro.core.config import CTUPConfig
from repro.core.opt import OptCTUP
from repro.geometry import Point
from repro.model import Place, Unit

FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """The checkpoint cannot be applied to the supplied inputs."""


def _fingerprint_places(places: Sequence[Place]) -> str:
    """A content hash of the (static) place set."""
    digest = hashlib.sha256()
    for place in sorted(places, key=lambda p: p.place_id):
        digest.update(
            f"{place.place_id}:{place.location.x!r}:{place.location.y!r}"
            f":{place.required_protection}\n".encode()
        )
    return digest.hexdigest()


def _encode_bound(value: float) -> float | str:
    return "inf" if math.isinf(value) else value


def _decode_bound(value: float | str) -> float:
    return math.inf if value == "inf" else float(value)


def snapshot_optctup(monitor: OptCTUP) -> str:
    """Capture a running OptCTUP's dynamic state as a JSON document."""
    if not monitor.initialized:
        raise CheckpointError("cannot checkpoint an uninitialized monitor")
    config = monitor.config
    document = {
        "version": FORMAT_VERSION,
        "config": {
            "k": config.k,
            "delta": config.delta,
            "protection_range": config.protection_range,
            "granularity": config.granularity,
            "use_doo": config.use_doo,
        },
        "places_fingerprint": _fingerprint_places(
            list(monitor.store.iter_all_places())
        ),
        "units": [
            [u.unit_id, u.location.x, u.location.y] for u in monitor.units
        ],
        "cells": [
            [cell[0], cell[1], _encode_bound(state.lower_bound)]
            for cell, state in monitor.cell_states.items()
        ],
        "maintained": [
            [pid, safety]
            for pid, safety in monitor.maintained.safeties_snapshot().items()
        ],
        "dechash": [
            [unit_id, cell[0], cell[1]]
            for cell in monitor.cell_states
            for unit_id in monitor.dechash.pairs_of_cell(cell)
        ],
    }
    return json.dumps(document)


def restore_optctup(
    document: str,
    places: Sequence[Place],
) -> OptCTUP:
    """Rebuild an OptCTUP from a checkpoint and the original place set.

    The restored monitor is ready for ``process()`` immediately — no
    initialization pass runs.
    """
    try:
        data = json.loads(document)
    except json.JSONDecodeError as error:
        raise CheckpointError(f"not a checkpoint document: {error}") from None
    if data.get("version") != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {data.get('version')!r}"
        )
    if data["places_fingerprint"] != _fingerprint_places(places):
        raise CheckpointError(
            "checkpoint was taken against a different place set"
        )
    config = CTUPConfig(
        k=data["config"]["k"],
        delta=data["config"]["delta"],
        protection_range=data["config"]["protection_range"],
        granularity=data["config"]["granularity"],
        use_doo=data["config"]["use_doo"],
    )
    units = [
        Unit(uid, Point(x, y), config.protection_range)
        for uid, x, y in data["units"]
    ]
    monitor = OptCTUP(config, places, units)

    place_by_id = {p.place_id: p for p in places}
    # cell bounds: initialize() normally populates these; install them
    # directly. Cells absent from the checkpoint hold no places.
    from repro.grid.cellstate import CellState

    for i, j, bound in data["cells"]:
        cell = (int(i), int(j))
        monitor.cell_states[cell] = CellState(
            lower_bound=_decode_bound(bound),
            place_count=monitor.store.cell_place_count(cell),
        )
    for pid, safety in data["maintained"]:
        place = place_by_id.get(int(pid))
        if place is None:
            raise CheckpointError(f"maintained place {pid} not in place set")
        cell = monitor.grid.cell_of(place.location)
        monitor.maintained.insert(
            place, float(safety), monitor.grid.linear(cell)
        )
    for unit_id, i, j in data["dechash"]:
        monitor.dechash.insert(int(unit_id), (int(i), int(j)))
    monitor._initialized = True
    return monitor
