"""RPL011 — durability discipline on the checkpoint/journal write path.

Crash recovery (PR 6) only works if what the recovery pass reads was
actually on disk when the writer claimed it was. That is a *path*
property, not a call property: every CFG path from a file write to the
rename/publish of that file must pass ``flush()`` **and**
``os.fsync()`` first (``write_text`` + ``replace`` is the classic bug
— the rename is durable, the contents are not). The second half is
exception hygiene: a monitor-state mutation inside a ``try`` whose
handler swallows the exception leaves half-applied state visible to
the next snapshot unless the handler rolls the attribute back.

Scope: ``repro.state`` and ``repro.persist`` — the modules whose whole
contract is durability.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ProjectIndex, SourceFile
from repro.lint.flow.cfg import CFG, Block, function_cfgs, scan_roots
from repro.lint.flow.dataflow import BOTTOM, FlagLattice, FlagState, solve_forward
from repro.lint.registry import Violation, rule

SCOPES = ("repro.state", "repro.persist")

#: the per-function durability protocol states, in protocol order.
_CLEAN = "clean"
_WRITTEN = "written"
_FLUSHED = "flushed"
_DURABLE = "durable"

_WRITE_METHODS = frozenset(
    {"write", "writelines", "write_text", "write_bytes", "dump"}
)
_PUBLISH_METHODS = frozenset({"replace", "rename"})

_LATTICE = FlagLattice(default=_CLEAN)
_KEY = "written-data"


@rule(
    "RPL011",
    "durability-discipline",
    "every checkpoint/journal write path reaches flush+fsync before "
    "rename/publish, and no state mutation survives a swallowed "
    "exception without rollback",
    version=1,
)
def check(source: SourceFile, project: ProjectIndex) -> Iterator[Violation]:
    if not source.in_packages(*SCOPES):
        return
    for node, cfg in function_cfgs(source.tree):
        yield from _check_publish_protocol(source, cfg)
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Try):
            yield from _check_swallowed_mutations(source, node)


# -- half one: write -> flush -> fsync -> publish ------------------------


def _events(node: ast.AST) -> Iterator[tuple[str, ast.Call]]:
    """Durability protocol events inside one statement, in AST order."""
    for root in scan_roots(node):
        yield from _events_in(root)


def _events_in(root: ast.AST) -> Iterator[tuple[str, ast.Call]]:
    for sub in ast.walk(root):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr in _WRITE_METHODS:
            yield ("write", sub)
        elif func.attr == "flush":
            yield ("flush", sub)
        elif func.attr == "fsync":
            # os.fsync(handle.fileno()) or a raw fd; receiver shape is
            # not discriminated — fsync of anything counts.
            yield ("fsync", sub)
        elif func.attr in _PUBLISH_METHODS:
            # Path.replace/Path.rename take exactly one positional
            # argument; str.replace takes two — use the arity to avoid
            # flagging string surgery. os.replace/os.rename take two,
            # so accept those when the receiver is literally ``os``.
            receiver = func.value
            receiver_is_os = (
                isinstance(receiver, ast.Name) and receiver.id == "os"
            )
            arity = len(sub.args)
            if (receiver_is_os and arity == 2) or (
                not receiver_is_os and arity == 1 and not sub.keywords
            ):
                yield ("publish", sub)


def _advance(state: str, event: str) -> str:
    """The per-path protocol automaton (strings from the lattice)."""
    if event == "write":
        return _WRITTEN
    if event == "flush":
        return _FLUSHED if state == _WRITTEN else state
    if event == "fsync":
        return _DURABLE if state in (_FLUSHED, _WRITTEN) else state
    return state


def _transfer(block: Block, state: FlagState) -> FlagState:
    if block.node is None:
        return state
    possible = _LATTICE.read(state, _KEY)
    for event, _call in _events(block.node):
        if event == "publish":
            # publishing resets the protocol: the next write starts a
            # fresh cycle (violations are detected separately).
            possible = frozenset(
                _CLEAN if value != _CLEAN else value for value in possible
            )
        else:
            possible = frozenset(
                _advance(value, event) for value in possible
            )
    updated = dict(state)
    updated[_KEY] = possible
    return updated


def _check_publish_protocol(
    source: SourceFile, cfg: CFG
) -> Iterator[Violation]:
    in_states = solve_forward(
        cfg, _LATTICE.initial([_KEY]), _transfer, _LATTICE.join
    )
    for block in cfg.statement_blocks():
        state = in_states.get(block.block_id, BOTTOM)
        if state is BOTTOM or not isinstance(state, dict):
            continue
        possible = _LATTICE.read(state, _KEY)
        if block.node is None:
            continue
        for event, call in _events(block.node):
            if event == "publish":
                undrained = possible - frozenset({_CLEAN, _DURABLE})
                if undrained:
                    missing = (
                        "flush+fsync"
                        if _WRITTEN in undrained
                        else "os.fsync"
                    )
                    yield Violation(
                        code="RPL011",
                        message=(
                            "rename/publish reachable on a path where "
                            f"written data was not made durable ({missing} "
                            "missing before the publish) — a crash after "
                            "the rename can expose an empty or truncated "
                            "file to recovery (write -> flush -> fsync -> "
                            "rename, as repro.state.journal does)"
                        ),
                        path=source.path,
                        line=call.lineno,
                        col=call.col_offset,
                    )
                possible = frozenset(
                    _CLEAN if value != _CLEAN else value
                    for value in possible
                )
            else:
                possible = frozenset(
                    _advance(value, event) for value in possible
                )


# -- half two: no state mutation survives a swallowed exception ----------


def _self_attr_targets(node: ast.stmt) -> Iterator[tuple[str, ast.expr]]:
    """``self.X`` attributes a statement assigns, with the target node."""
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    else:
        return
    for target in targets:
        elements = target.elts if isinstance(target, ast.Tuple) else [target]
        for element in elements:
            if (
                isinstance(element, ast.Attribute)
                and isinstance(element.value, ast.Name)
                and element.value.id == "self"
            ):
                yield (element.attr, element)


def _handler_swallows(handler: ast.ExceptHandler) -> bool:
    """A handler "swallows" when no path through it re-raises."""
    for sub in ast.walk(handler):
        if isinstance(sub, ast.Raise):
            return False
    return True


def _handler_restores(handler: ast.ExceptHandler, attr: str) -> bool:
    """Whether the handler assigns ``self.<attr>`` (a rollback)."""
    for sub in ast.walk(handler):
        for name, _node in (
            _self_attr_targets(sub) if isinstance(sub, ast.stmt) else ()
        ):
            if name == attr:
                return True
    return False


def _statements_under(stmt: ast.stmt) -> Iterator[ast.stmt]:
    """The statement and its nested statements, stopping at inner
    ``try`` blocks (those have their own handlers and are analysed
    separately) and nested function definitions."""
    yield stmt
    if isinstance(
        stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return
    for field in ("body", "orelse", "finalbody"):
        for child in getattr(stmt, field, ()):
            if isinstance(child, ast.stmt):
                yield from _statements_under(child)


def _check_swallowed_mutations(
    source: SourceFile, node: ast.Try
) -> Iterator[Violation]:
    swallowing = [h for h in node.handlers if _handler_swallows(h)]
    if not swallowing:
        return
    for stmt in node.body:
        for sub in _statements_under(stmt):
            for attr, target in _self_attr_targets(sub):
                uncovered = [
                    handler
                    for handler in swallowing
                    if not _handler_restores(handler, attr)
                ]
                if not uncovered:
                    continue
                handler_line = uncovered[0].lineno
                yield Violation(
                    code="RPL011",
                    message=(
                        f"mutation of 'self.{attr}' inside a try body "
                        "whose except handler (line "
                        f"{handler_line}) swallows the exception without "
                        "rolling the attribute back — a later statement "
                        "raising leaves half-applied monitor state that "
                        "the next snapshot will persist; restore the "
                        "attribute in the handler or re-raise"
                    ),
                    path=source.path,
                    line=target.lineno,
                    col=target.col_offset,
                )
