"""A small "monitoring server" built from the library's server features.

Combines three production concerns on one OptCTUP core:

* **many consumers** — dispatch (top-5), dashboard (top-20) and an
  analyst (top-60) share one monitor via :class:`MultiQueryCTUP`;
* **bursty ingest** — updates arrive in batches of 32 and are absorbed
  with one access pass per burst (:class:`BatchProcessor`);
* **restart without re-initialization** — mid-run the server
  checkpoints, "crashes", restores from the checkpoint, and continues;
  the answers after the restore are identical.

Run:  python examples/multi_query_server.py
"""

from repro import CTUPConfig
from repro.core import BatchProcessor, MultiQueryCTUP
from repro.persist import restore_optctup, snapshot_optctup
from repro.roadnet import NetworkMobility, grid_network
from repro.workloads import generate_places, record_stream

BATCH = 32


def main() -> None:
    config = CTUPConfig(k=5, delta=4, protection_range=0.1, granularity=10)
    places = generate_places(8_000, seed=11)
    mobility = NetworkMobility(
        grid_network(seed=2), count=90, speed=0.004, report_distance=0.004,
        seed=13,
    )
    units = mobility.initial_units(config.protection_range)
    stream = record_stream(mobility, 2_000)

    # -- many consumers over one monitor -------------------------------
    server = MultiQueryCTUP(config, places, units)
    server.register("dispatch", 5)
    server.register("dashboard", 20)
    server.register("analyst", 60)
    server.initialize()
    print(
        f"serving {len(server.queries)} queries from one monitor "
        f"(shared K = {server.shared_k})"
    )

    # -- bursty ingest ---------------------------------------------------
    ingest = BatchProcessor(server.monitor)
    half = len(stream) // 2
    ingest.run_stream(stream.prefix(half), BATCH)
    print(
        f"first {half} updates in {ingest.batches_processed} bursts of "
        f"{BATCH}; dispatch sees {[r.place_id for r in server.top_k('dispatch')]}"
    )

    # -- checkpoint, crash, restore ---------------------------------------
    checkpoint = snapshot_optctup(server.monitor)
    print(f"checkpoint taken ({len(checkpoint):,} bytes of JSON)")
    restored = restore_optctup(checkpoint, places)
    assert restored.topk_ids() == server.monitor.topk_ids()
    print("restored monitor agrees with the live one — no re-initialization")

    # -- both servers consume the rest of the stream ------------------------
    rest = stream.updates[half:]
    BatchProcessor(server.monitor).run_stream(rest, BATCH)
    BatchProcessor(restored).run_stream(rest, BATCH)
    assert restored.topk_ids() == server.monitor.topk_ids()
    assert restored.sk() == server.monitor.sk()

    print(
        f"\nafter {len(stream)} updates (SK {server.monitor.sk():+.0f}):"
    )
    for query_id in ("dispatch", "dashboard", "analyst"):
        records = server.top_k(query_id)
        print(
            f"  {query_id:9s} k={len(records):2d}  worst "
            f"{records[0].safety:+.0f} .. boundary {records[-1].safety:+.0f}"
        )
    print(
        f"\nshared monitor work: "
        f"{server.monitor.counters.cells_accessed} cell accesses, "
        f"{server.monitor.counters.maintained_peak} maintained peak — "
        f"one monitor instead of three"
    )


if __name__ == "__main__":
    main()
