"""Network-based moving objects (the paper's workload substrate).

The paper generates its protecting units with the Brinkhoff network-based
generator of moving objects [3] over the Oldenburg road map. That map is
not redistributable here, so this package builds the same *kind* of
workload from first principles:

* :mod:`repro.roadnet.network` — a road network with per-edge lengths and
  speed classes;
* :mod:`repro.roadnet.generators` — synthetic city topologies (Manhattan
  grid with arterials, radial ring-and-spoke, random planar);
* :mod:`repro.roadnet.moving` — objects that pick destinations, follow
  shortest (travel-time) routes at edge-class speeds, and report their
  location once they have moved far enough, exactly the observable
  behaviour the CTUP monitors consume.
"""

from repro.roadnet.network import RoadNetwork
from repro.roadnet.generators import (
    grid_network,
    radial_network,
    random_network,
)
from repro.roadnet.moving import NetworkMobility, RoadObject
from repro.roadnet.patrol import DirectedPatrolMobility, coverage_of_hotspots

__all__ = [
    "RoadNetwork",
    "grid_network",
    "radial_network",
    "random_network",
    "NetworkMobility",
    "RoadObject",
    "DirectedPatrolMobility",
    "coverage_of_hotspots",
]
