"""Places with extent (§VII, first future-work direction).

"The places may have extent, either because some place may have
non-negligible extent or because some nearby places should be combined."
A place becomes an axis-aligned rectangle; a unit protects it when the
protection disk intersects the rectangle (the natural reading of
Definition 1 for extended objects).

The grid machinery generalises through one idea: classify each unit's
disk not against the bare cell but against the cell *inflated* by the
maximum place extent. Every place rectangle whose anchor (centre) lies
in a cell is contained in that inflated cell, so

* disk ∩ inflated cell = ∅  ⇒ the disk touches no place of the cell (N);
* disk ⊇ inflated cell      ⇒ the disk covers every place of the cell (F);

and Table I stays sound verbatim. DOO is orthogonal and omitted here for
clarity; the Δ slack works unchanged.

Places live in an in-memory per-cell index rather than the paged store —
the storage layer is exercised by the core monitors; this extension
focuses on the geometric generalisation.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.core.config import CTUPConfig
from repro.core.metrics import InitReport, MonitorCounters, UpdateReport
from repro.core.monitor import STATE_VERSION, collect_declared_fields
from repro.core.tables import table1_delta
from repro.core.topk import tie_key
from repro.core.units import UnitIndex, UnitKernelStats
from repro.geometry import Circle, Point, Rect
from repro.geometry.relations import classify_circle_rect
from repro.grid.cellstate import (
    CellState,
    export_cell_states,
    restore_cell_states,
)
from repro.grid.partition import CellId, GridPartition
from repro.model import LocationUpdate, Unit


@dataclass(frozen=True, slots=True)
class ExtentPlace:
    """A protected place with rectangular extent."""

    place_id: int
    extent: Rect
    required_protection: int
    kind: str = "place"

    def __post_init__(self) -> None:
        if self.required_protection < 0:
            raise ValueError(
                f"place {self.place_id}: required protection must be >= 0"
            )

    def anchor(self) -> Point:
        """The centre of the extent; decides the owning grid cell."""
        return self.extent.center()


@dataclass(frozen=True, slots=True)
class ExtentRecord:
    """A reported (place, safety) pair."""

    place: ExtentPlace
    safety: float

    @property
    def place_id(self) -> int:
        return self.place.place_id


class _CellData:
    """Columnar view of one cell's extended places."""

    __slots__ = ("places", "xmin", "ymin", "xmax", "ymax", "required", "ids")

    def __init__(self, places: list[ExtentPlace]) -> None:
        self.places = places
        self.xmin = np.array([p.extent.xmin for p in places])
        self.ymin = np.array([p.extent.ymin for p in places])
        self.xmax = np.array([p.extent.xmax for p in places])
        self.ymax = np.array([p.extent.ymax for p in places])
        self.required = np.array(
            [p.required_protection for p in places], dtype=np.float64
        )
        self.ids = np.array([p.place_id for p in places], dtype=np.int64)

    def __len__(self) -> int:
        return len(self.places)

    def disk_intersections(self, center: Point, radius: float) -> np.ndarray:
        """Boolean mask: which place rectangles the disk intersects."""
        dx = np.maximum(self.xmin - center.x, 0.0)
        dx = np.maximum(dx, center.x - self.xmax)
        dy = np.maximum(self.ymin - center.y, 0.0)
        dy = np.maximum(dy, center.y - self.ymax)
        return dx * dx + dy * dy <= radius * radius

    def disk_covers(self, center: Point, radius: float) -> np.ndarray:
        """Boolean mask: which place rectangles the disk fully contains.

        True when the farthest rectangle corner lies inside the disk —
        the "covers" protection semantics for extended places.
        """
        dx = np.maximum(center.x - self.xmin, self.xmax - center.x)
        dy = np.maximum(center.y - self.ymin, self.ymax - center.y)
        return dx * dx + dy * dy <= radius * radius

    def protection_mask(
        self, center: Point, radius: float, semantics: str
    ) -> np.ndarray:
        if semantics == "intersects":
            return self.disk_intersections(center, radius)
        if semantics == "covers":
            return self.disk_covers(center, radius)
        raise ValueError(f"unknown semantics {semantics!r}")


class ExtentCTUP:
    """Top-k unsafe monitoring for places with rectangular extent."""

    name = "extent"

    STATE_FIELDS = (
        "cell_states",
        "_maintained",
        "_maintained_by_cell",
        "units",
        "counters",
    )
    TRANSIENT_FIELDS = ("_initialized",)

    def __init__(
        self,
        config: CTUPConfig,
        places: Sequence[ExtentPlace],
        units: Iterable[Unit],
        semantics: str = "intersects",
    ) -> None:
        """``semantics`` decides when a unit protects an extended place:
        ``"intersects"`` (the disk touches the rectangle — the default,
        generous reading of Definition 1) or ``"covers"`` (the disk must
        contain the whole rectangle — a guard that cannot see the whole
        compound protects none of it)."""
        places = list(places)
        if not places:
            raise ValueError("need at least one place")
        if semantics not in ("intersects", "covers"):
            raise ValueError(f"unknown semantics {semantics!r}")
        self.semantics = semantics
        self.config = config
        self.grid = GridPartition(
            config.space, config.granularity, config.granularity
        )
        self.units = UnitIndex(units)
        self.counters = MonitorCounters()
        self._cells: dict[CellId, _CellData] = {}
        by_cell: dict[CellId, list[ExtentPlace]] = {}
        half_w = 0.0
        half_h = 0.0
        seen: set[int] = set()
        for place in places:
            if place.place_id in seen:
                raise ValueError(f"duplicate place id {place.place_id}")
            seen.add(place.place_id)
            by_cell.setdefault(self.grid.cell_of(place.anchor()), []).append(place)
            half_w = max(half_w, place.extent.width / 2.0)
            half_h = max(half_h, place.extent.height / 2.0)
        #: inflating cells by the max half-extent makes N/F conservative.
        self._margin = max(half_w, half_h)
        for cell, cell_places in by_cell.items():
            self._cells[cell] = _CellData(cell_places)
        self.cell_states: dict[CellId, CellState] = {}
        #: maintained places: id -> (place, safety); cell -> ids.
        self._maintained: dict[int, tuple[ExtentPlace, float]] = {}
        self._maintained_by_cell: dict[CellId, set[int]] = {}
        self._initialized = False

    # -- safety kernel ---------------------------------------------------------

    def _cell_safeties(self, cell: CellId) -> np.ndarray:
        data = self._cells[cell]
        protection = np.zeros(len(data), dtype=np.float64)
        for unit in self.units:
            protection += data.protection_mask(
                unit.location, unit.protection_range, self.semantics
            )
        self.counters.distance_rows += len(data) * len(self.units)
        return protection - data.required

    def _inflated_rect(self, cell: CellId) -> Rect:
        return self.grid.cell_rect(cell).inflated(self._margin)

    # -- initialization ----------------------------------------------------------

    def initialize(self) -> InitReport:
        if self._initialized:
            raise RuntimeError("initialize() may run only once")
        start = time.perf_counter()
        for cell, data in self._cells.items():
            safeties = self._cell_safeties(cell)
            self.cell_states[cell] = CellState(
                lower_bound=float(safeties.min()), place_count=len(data)
            )
        sk = math.inf
        scratch: list[np.ndarray] = []
        accessed: list[tuple[CellId, np.ndarray]] = []
        for cell in sorted(
            self.cell_states, key=lambda c: self.cell_states[c].lower_bound
        ):
            if sk <= self.cell_states[cell].lower_bound:
                break
            safeties = self._cell_safeties(cell)
            accessed.append((cell, safeties))
            scratch.append(safeties)
            merged = np.concatenate(scratch)
            sk = (
                float(np.partition(merged, self.config.k - 1)[self.config.k - 1])
                if len(merged) >= self.config.k
                else math.inf
            )
            self.counters.cells_accessed += 1
        threshold = sk + self.config.delta
        for cell, safeties in accessed:
            self._absorb_cell(cell, safeties, sk, threshold)
        elapsed = time.perf_counter() - start
        # reprolint: disable=RPL002 -- ExtentCTUP is a standalone scheme, not a CTUPMonitor subclass; it owns its own lifecycle and therefore its timing counters
        self.counters.time_init_s = elapsed
        self._initialized = True
        return InitReport(
            seconds=elapsed,
            cells_accessed=self.counters.cells_accessed,
            places_loaded=sum(len(d) for d in self._cells.values()),
            sk=self.sk(),
            maintained_places=len(self._maintained),
        )

    def _absorb_cell(
        self, cell: CellId, safeties: np.ndarray, sk: float, threshold: float
    ) -> None:
        """Keep the band members of a freshly evaluated cell."""
        data = self._cells[cell]
        state = self.cell_states[cell]
        state.access_count += 1
        kept = self._maintained_by_cell.setdefault(cell, set())
        dropped_min = math.inf
        for place, safety in zip(data.places, safeties):
            safety = float(safety)
            if safety < threshold or safety <= sk:
                self._maintained[place.place_id] = (place, safety)
                kept.add(place.place_id)
            else:
                dropped_min = min(dropped_min, safety)
        state.lower_bound = dropped_min

    # -- update ---------------------------------------------------------------------

    def process(self, update: LocationUpdate) -> UpdateReport:
        if not self._initialized:
            raise RuntimeError("initialize() must be called before processing")
        start = time.perf_counter()
        old = self.units.apply(update)
        new = update.new_location
        radius = self.config.protection_range

        # Step 1: adjust maintained safeties (disk-rect intersection flips).
        for pid, (place, safety) in list(self._maintained.items()):
            was = _protects(old, radius, place.extent, self.semantics)
            now = _protects(new, radius, place.extent, self.semantics)
            if was != now:
                self._maintained[pid] = (place, safety + (1 if now else -1))
        self.counters.maintained_scans += len(self._maintained)

        # Step 2: Table I against the inflated cells.
        reach = radius + self._margin
        candidates = set(
            self.grid.cells_touching_circle(Circle(old, reach))
        )
        candidates.update(self.grid.cells_touching_circle(Circle(new, reach)))
        for cell in candidates:
            state = self.cell_states.get(cell)
            if state is None:
                continue
            rect = self._inflated_rect(cell)
            delta = table1_delta(
                classify_circle_rect(Circle(old, radius), rect),
                classify_circle_rect(Circle(new, radius), rect),
            )
            if delta > 0:
                state.increase(delta)
                self.counters.lb_increments += 1
            elif delta < 0:
                state.decrease(-delta)
                self.counters.lb_decrements += 1
        mid = time.perf_counter()

        # Step 3: re-evaluate offending cells.
        accessed = 0
        while True:
            sk = self.sk()
            best = None
            best_bound = math.inf
            for cell, state in self.cell_states.items():
                if state.lower_bound < sk and state.lower_bound < best_bound:
                    best_bound = state.lower_bound
                    best = cell
            if best is None:
                break
            self._reaccess(best)
            accessed += 1
        end = time.perf_counter()

        # reprolint: disable=RPL002 -- standalone scheme: ExtentCTUP runs its own update loop, so stream/timing ownership sits here, not in repro.core.monitor
        self.counters.updates_processed += 1
        # reprolint: disable=RPL002 -- standalone scheme: phase timing measured by ExtentCTUP's own update loop
        self.counters.time_maintain_s += mid - start
        # reprolint: disable=RPL002 -- standalone scheme: phase timing measured by ExtentCTUP's own update loop
        self.counters.time_access_s += end - mid
        self.counters.maintained_peak = max(  # reprolint: disable=RPL002 -- standalone scheme: maintained band tracked by ExtentCTUP's own update loop
            self.counters.maintained_peak, len(self._maintained)
        )
        return UpdateReport(
            unit_id=update.unit_id,
            sk=self.sk(),
            cells_accessed=accessed,
            maintain_seconds=mid - start,
            access_seconds=end - mid,
        )

    def _reaccess(self, cell: CellId) -> None:
        for pid in self._maintained_by_cell.get(cell, set()):
            del self._maintained[pid]
        self._maintained_by_cell[cell] = set()
        safeties = self._cell_safeties(cell)
        self.counters.cells_accessed += 1
        merged = list(safety for _, safety in self._maintained.values())
        merged.extend(float(s) for s in safeties)
        arr = np.array(merged)
        sk = (
            float(np.partition(arr, self.config.k - 1)[self.config.k - 1])
            if len(arr) >= self.config.k
            else math.inf
        )
        self._absorb_cell(cell, safeties, sk, sk + self.config.delta)

    # -- result -------------------------------------------------------------------------

    def top_k(self) -> list[ExtentRecord]:
        """The k least safe places, ties broken by place id."""
        ranked = sorted(
            self._maintained.values(),
            key=lambda ps: tie_key(ps[1], ps[0].place_id),
        )
        return [
            ExtentRecord(place, safety)
            for place, safety in ranked[: self.config.k]
        ]

    def sk(self) -> float:
        if len(self._maintained) < self.config.k:
            return math.inf
        safeties = sorted(safety for _, safety in self._maintained.values())
        return safeties[self.config.k - 1]

    # -- checkpointable state (the Snapshottable protocol) -----------------
    #
    # ExtentCTUP is a standalone scheme (not a CTUPMonitor subclass) and
    # implements the protocol structurally. It has no paged store, so the
    # storage-cache portion of the base document is simply absent.

    def state_fields(self) -> tuple[str, ...]:
        """All checkpointed fields declared along the scheme's MRO."""
        return collect_declared_fields(type(self), "STATE_FIELDS")

    def transient_fields(self) -> tuple[str, ...]:
        """All restore-rebuilt fields declared along the scheme's MRO."""
        return collect_declared_fields(type(self), "TRANSIENT_FIELDS")

    def export_state(self) -> dict[str, Any]:
        """The monitor's full mutable state as a JSON-codable document."""
        if not self._initialized:
            raise ValueError("cannot export the state of an uninitialized monitor")
        stats = self.units.stats
        return {
            "state_version": STATE_VERSION,
            "scheme": self.name,
            "units": self.units.export_positions(),
            "unit_stats": {
                "queries": stats.queries,
                "candidate_units": stats.candidate_units,
                "reachable_units": stats.reachable_units,
            },
            "counters": self.counters.as_dict(),
            "scheme_state": {
                "semantics": self.semantics,
                "cell_states": export_cell_states(self.cell_states, self.grid),
                "maintained": [
                    [pid, safety]
                    for pid, (_, safety) in self._maintained.items()
                ],
            },
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Adopt a state document on a freshly constructed monitor."""
        if self._initialized:
            raise ValueError("cannot restore into an initialized monitor")
        version = state.get("state_version")
        if version != STATE_VERSION:
            raise ValueError(
                f"unsupported monitor state version {version!r} "
                f"(this build reads version {STATE_VERSION})"
            )
        scheme = state.get("scheme")
        if scheme != self.name:
            raise ValueError(
                f"state was exported by scheme {scheme!r}, not {self.name!r}"
            )
        fields = state["scheme_state"]
        if fields["semantics"] != self.semantics:
            raise ValueError(
                "snapshot protection semantics do not match the "
                "constructed monitor"
            )
        self.units.restore_positions(state["units"])
        self.cell_states = restore_cell_states(
            fields["cell_states"], self.grid
        )
        place_of = {
            place.place_id: place
            for data in self._cells.values()
            for place in data.places
        }
        self._maintained = {}
        self._maintained_by_cell = {}
        for pid, safety in fields["maintained"]:
            place = place_of[int(pid)]
            self._maintained[int(pid)] = (place, float(safety))
            cell = self.grid.cell_of(place.anchor())
            self._maintained_by_cell.setdefault(cell, set()).add(int(pid))
        self.restore_counter_state(state)
        self._initialized = True

    def restore_counter_state(self, state: Mapping[str, Any]) -> None:
        """Overwrite counters from a state document (see the base docs)."""
        self.units.stats.restore(UnitKernelStats(**state["unit_stats"]))
        self.counters.restore(MonitorCounters.from_dict(state["counters"]))


def _disk_meets_rect(center: Point, radius: float, rect: Rect) -> bool:
    """Whether the closed disk intersects the closed rectangle."""
    dx = max(rect.xmin - center.x, 0.0, center.x - rect.xmax)
    dy = max(rect.ymin - center.y, 0.0, center.y - rect.ymax)
    return dx * dx + dy * dy <= radius * radius


def _disk_covers_rect(center: Point, radius: float, rect: Rect) -> bool:
    """Whether the closed disk contains the whole rectangle."""
    dx = max(center.x - rect.xmin, rect.xmax - center.x)
    dy = max(center.y - rect.ymin, rect.ymax - center.y)
    return dx * dx + dy * dy <= radius * radius


def _protects(center: Point, radius: float, rect: Rect, semantics: str) -> bool:
    if semantics == "covers":
        return _disk_covers_rect(center, radius, rect)
    return _disk_meets_rect(center, radius, rect)
