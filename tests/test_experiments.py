"""The experiment registry and tiny-scale smoke runs of every figure."""

import pytest

from repro.experiments import (
    TABLE3_DEFAULTS,
    all_experiments,
    default_config,
    get_experiment,
)

TINY = 0.04  # ~600 places, 50-60 updates: seconds, not minutes.


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        ids = {e.experiment_id for e in all_experiments()}
        assert {
            "table3",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
        } <= ids

    def test_ablations_registered(self):
        ids = {e.experiment_id for e in all_experiments()}
        assert {
            "ablation_buffer",
            "ablation_incremental",
            "ablation_network",
            "ablation_placement",
        } <= ids

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_ordering_tables_first(self):
        kinds = [e.kind for e in all_experiments()]
        assert kinds[0] == "table"
        assert kinds.index("ablation") > kinds.index("figure")

    def test_duplicate_registration_rejected(self):
        from repro.experiments.registry import Experiment, register

        experiment = get_experiment("fig4")
        clone = Experiment(
            "fig4", "x", "y", "figure", "z", experiment.runner
        )
        with pytest.raises(ValueError):
            register(clone)


class TestDefaults:
    def test_table3_values(self):
        assert TABLE3_DEFAULTS["Number of units (|U|)"] == 150
        assert TABLE3_DEFAULTS["Number of places (|P|)"] == 15_000
        assert TABLE3_DEFAULTS["Number of TUPs (k)"] == 15
        assert TABLE3_DEFAULTS["Adjustable Parameter (delta)"] == 6
        assert TABLE3_DEFAULTS["Unit Protection Range"] == 0.1
        assert TABLE3_DEFAULTS["Partition Granularity"] == 10

    def test_default_config_matches_table3(self):
        config = default_config()
        assert config.k == 15
        assert config.delta == 6
        assert config.protection_range == 0.1
        assert config.granularity == 10

    def test_default_config_overrides(self):
        assert default_config(k=3).k == 3

    def test_bench_scale_env(self, monkeypatch):
        from repro.experiments.defaults import bench_scale

        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert bench_scale() == 0.5
        monkeypatch.setenv("REPRO_BENCH_SCALE", "zero")
        with pytest.raises(ValueError):
            bench_scale()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "-1")
        with pytest.raises(ValueError):
            bench_scale()


@pytest.mark.parametrize(
    "experiment_id",
    ["table3", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"],
)
def test_figure_smoke(experiment_id):
    """Every figure regenerates (validated against the oracle) at tiny scale."""
    experiment = get_experiment(experiment_id)
    result = experiment.run(scale=TINY, seed=1)
    assert result.experiment_id == experiment_id
    assert result.rows
    assert all(len(row) == len(result.headers) for row in result.rows)
    assert result.to_text()


@pytest.mark.parametrize(
    "experiment_id",
    [
        "ablation_buffer",
        "ablation_incremental",
        "ablation_network",
        "ablation_placement",
    ],
)
def test_ablation_smoke(experiment_id):
    result = get_experiment(experiment_id).run(scale=TINY, seed=1)
    assert result.rows
