"""Observability: metrics, phase tracing, and a live /metrics scrape.

Runs a sharded OptCTUP monitor with the full observability bundle
attached — registry metrics (bridged ledgers + session counters),
span tracing, and the stdlib ``/metrics`` endpoint — then:

* scrapes the live endpoint over HTTP and validates the Prometheus
  text with the strict parser;
* prints the headline metrics and the hottest phases from the
  histogram;
* exports the span ring buffer as a Chrome trace
  (``chrome://tracing`` / Perfetto can open it).

Run:  python examples/observability.py
"""

import tempfile
import urllib.request
from pathlib import Path

from repro import CTUPConfig, ObsSpec, ShardSpec, open_session
from repro.obs import parse_prometheus, write_chrome_trace
from repro.workloads import (
    RandomWalkMobility,
    generate_places,
    generate_units,
    record_stream,
)


def main() -> None:
    config = CTUPConfig(k=10, delta=4, protection_range=0.1, granularity=10)
    places = generate_places(4_000, seed=42)
    units = generate_units(50, config.protection_range, seed=7)
    stream = record_stream(RandomWalkMobility(units, step=0.02, seed=9), 800)

    session = open_session(
        "opt",
        places=places,
        units=units,
        config=config,
        shard=ShardSpec(shards=4, parallelism=2),
        batch_size=16,
        obs=ObsSpec(metrics=True, trace=True, serve_port=0),
    )
    with session:
        session.start()
        session.run(stream)

        # -- a real scrape, like Prometheus would do it ------------------
        url = session.metrics_server.url
        body = urllib.request.urlopen(url).read().decode("utf-8")
        samples = parse_prometheus(body)  # strict: raises on bad format
        print(f"scraped {url}: {len(samples)} samples, all valid\n")

        print("headline metrics:")
        for name in (
            "ctup_session_updates_total",
            "ctup_session_topk_changes_total",
            "ctup_session_sk",
        ):
            print(f"  {name:36s} {samples[(name, ())]:g}")
        merged = [
            (labels, value)
            for (name, labels), value in samples.items()
            if name == "ctup_monitor_counters"
        ]
        print(f"  ctup_monitor_counters{'':15s} {len(merged)} bridged fields")

        # -- where the time went, from the phase histogram ---------------
        registry = session.observability.registry
        phase_hist = registry.get("ctup_phase_seconds")
        print("\ntime per phase (from ctup_phase_seconds):")
        for labelvalues, child in phase_hist.children():
            scheme, phase = labelvalues
            if child.count:
                mean_us = child.total / child.count * 1e6
                print(
                    f"  {scheme:8s} {phase:15s} {child.count:5d} spans, "
                    f"mean {mean_us:8.1f} us"
                )

        # -- export the trace for chrome://tracing -----------------------
        tracer = session.observability.tracer
        out = Path(tempfile.gettempdir()) / "ctup-trace.json"
        written = write_chrome_trace(tracer.spans(), out)
        print(
            f"\nwrote {written} spans to {out} "
            f"({tracer.emitted} emitted over the run); "
            "open it in chrome://tracing or Perfetto"
        )

    print("\ncurrent top unsafe places:")
    for rank, record in enumerate(session.monitor.top_k()[:5], start=1):
        print(
            f"  {rank}. place #{record.place_id:<6d} "
            f"safety {record.safety:+.0f}"
        )


if __name__ == "__main__":
    main()
