"""Reference oracle for CTUP results.

The oracle recomputes every safety from scratch (through an independent
unit tracker) and judges whether a monitor's reported top-k is *valid*:
right size, right SK, right safeties, and containing every place whose
safety is strictly below SK. Validity rather than set equality is the
correct criterion because ties at SK make several k-sets equally right —
although all monitors in this package break ties identically (by place
id), the oracle does not rely on that.
"""

from repro.validate.checker import Oracle, TopKValidation

__all__ = ["Oracle", "TopKValidation"]
