"""The CTUP data model (§II of the paper).

Three record types flow through the whole system:

* :class:`Place` — a static protected site with a required protection;
* :class:`Unit` — a moving protecting unit with a circular protection
  region of radius ``R``;
* :class:`LocationUpdate` — one message of the update stream, carrying a
  unit id with its old and new locations.

The module sits at the bottom of the dependency graph: both the storage
substrate and the monitors import it, and it imports only the geometry
kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Circle, Point


@dataclass(frozen=True, slots=True)
class Place:
    """A protected place, modelled as a point (paper §II-B).

    ``required_protection`` is ``RP(p)``: how many units must be within
    the protection range for the place to be considered safe. The place
    set is static during monitoring; only safeties change.
    """

    place_id: int
    location: Point
    required_protection: int
    #: free-form label ("bank", "residence", ...) used by examples only.
    kind: str = "place"

    def __post_init__(self) -> None:
        if self.required_protection < 0:
            raise ValueError(
                f"place {self.place_id}: required protection must be >= 0"
            )


@dataclass(slots=True)
class Unit:
    """A protecting unit (police car) with its current location."""

    unit_id: int
    location: Point
    protection_range: float

    def __post_init__(self) -> None:
        if self.protection_range <= 0:
            raise ValueError(
                f"unit {self.unit_id}: protection range must be positive"
            )

    def protection_region(self) -> Circle:
        """The closed disk of places this unit currently protects."""
        return Circle(self.location, self.protection_range)

    def protects(self, place: Place) -> bool:
        """Definition 1: whether ``place`` is inside the protection region."""
        return self.protection_region().contains_point(place.location)


@dataclass(frozen=True, slots=True)
class LocationUpdate:
    """One location-update message received by the server.

    ``old_location`` is the unit's most recently reported position, as
    tracked by the server; ``new_location`` is the fresh report. The
    monitors consume these rather than raw positions so that the
    Table I/II before/after classification is explicit.
    """

    unit_id: int
    old_location: Point
    new_location: Point
    #: stream timestamp (simulation ticks); informational.
    timestamp: float = 0.0

    def displacement(self) -> float:
        """How far the unit moved, in space units."""
        return self.old_location.distance_to(self.new_location)


@dataclass(frozen=True, slots=True)
class CoalescedMove:
    """All moves of one unit within one burst, as a waypoint chain.

    Burst coalescing (:func:`repro.core.batch.coalesce_burst`) groups a
    burst's updates by unit. The chain is contiguous — each update's
    ``old_location`` is the previous update's ``new_location`` — so the
    unit's trajectory inside the burst is fully described by the
    ``raw_count + 1`` waypoints ``first_old, …, last_new``. Maintained
    safety adjustments telescope over the chain (only the endpoints
    matter), while Table I/II bound maintenance folds the per-step
    transitions over all waypoints — see ``docs/architecture.md``.
    """

    unit_id: int
    #: the raw updates, in arrival order.
    raws: tuple[LocationUpdate, ...]

    @property
    def raw_count(self) -> int:
        """Number of raw updates collapsed into this move."""
        return len(self.raws)

    @property
    def first_old(self) -> Point:
        """The unit's position before the burst."""
        return self.raws[0].old_location

    @property
    def last_new(self) -> Point:
        """The unit's position after the burst."""
        return self.raws[-1].new_location

    def waypoints(self) -> list[Point]:
        """The ``raw_count + 1`` chain positions, oldest first."""
        return [self.raws[0].old_location] + [
            raw.new_location for raw in self.raws
        ]

    def steps(self) -> list[tuple[Point, Point]]:
        """The per-update ``(old, new)`` transitions, oldest first."""
        return [(raw.old_location, raw.new_location) for raw in self.raws]


@dataclass(slots=True)
class SafetyRecord:
    """A place together with its currently known safety.

    The monitors expose their result as a list of these, sorted from the
    least safe place upward.
    """

    place: Place
    safety: float

    @property
    def place_id(self) -> int:
        return self.place.place_id
