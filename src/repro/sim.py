"""A turnkey simulation shell.

Everything an end-to-end run needs — a mobility model generating live
updates, a monitor consuming them, change tracking, per-update
timelines, periodic self-audits — wired together behind one loop:

>>> sim = Simulation.from_scenario("downtown", k=10)
>>> outcome = sim.run(updates=2_000)
>>> outcome.final_topk[0], outcome.summary.update_ms_p95

The heavy lifting lives in :class:`repro.engine.MonitorSession`; the
shell adds live generation, timeline collection and the outcome record,
so examples, notebooks and quick experiments don't re-implement the
plumbing. The benchmark harness stays separate because measurement
wants recorded, replayable streams rather than live generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.bench.timeline import Timeline, TimelineHook, TimelineSummary
from repro.core import CTUPConfig, OptCTUP
from repro.core.events import TopKChange
from repro.core.monitor import CTUPMonitor
from repro.engine import MonitorHooks, MonitorSession
from repro.model import SafetyRecord
from repro.obs.spec import Observability, ObsSpec, coerce_observability
from repro.workloads import build_scenario
from repro.workloads.stream import Mobility


@dataclass
class SimulationOutcome:
    """What a finished run produced."""

    updates: int
    final_topk: list[SafetyRecord]
    final_sk: float
    summary: TimelineSummary
    changes: list[TopKChange]
    audit_problems: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.audit_problems


class _ChangeLog(MonitorHooks):
    """Hook collecting every result change into a shared list."""

    def __init__(self, changes: list[TopKChange]) -> None:
        self.changes = changes

    def on_topk_change(self, change: TopKChange) -> None:
        self.changes.append(change)


class Simulation:
    """Live mobility + a monitoring session in one loop."""

    def __init__(
        self,
        monitor: CTUPMonitor,
        mobility: Mobility,
        audit_every: int = 0,
        batch_size: int = 0,
        session: MonitorSession | None = None,
        obs: "ObsSpec | Observability | None" = None,
    ) -> None:
        """``audit_every`` > 0 runs the invariant auditor every that
        many updates; ``batch_size`` > 0 ingests the live stream in
        exact bursts (both forwarded to the session). Pass ``session``
        to adopt a pre-built (e.g. checkpoint-resumed) session driving
        ``monitor`` instead of constructing a fresh one; ``obs``
        attaches observability (:class:`repro.obs.ObsSpec`) when the
        shell builds the session itself."""
        self.monitor = monitor
        self.mobility = mobility
        self.session = session or MonitorSession(
            monitor,
            batch_size=batch_size,
            audit_every=audit_every,
            obs=coerce_observability(obs),
        )
        self.timeline = Timeline()
        self.changes: list[TopKChange] = []
        self.session.add_hook(TimelineHook(self.timeline, monitor))
        self.session.add_hook(_ChangeLog(self.changes))

    @property
    def tracker(self):
        """The session's change tracker (kept for compatibility)."""
        return self.session.tracker

    @property
    def audit_every(self) -> int:
        return self.session.audit_every

    @classmethod
    def from_scenario(
        cls,
        name: str,
        k: int = 15,
        delta: int = 4,
        protection_range: float = 0.1,
        granularity: int | None = None,
        n_places: int = 6_000,
        n_units: int = 60,
        seed: int = 0,
        monitor_factory: Callable | None = None,
        audit_every: int = 0,
        batch_size: int = 0,
        checkpoint_dir: str | Path | None = None,
        checkpoint_every: int = 0,
        resume: bool = False,
        obs: "ObsSpec | Observability | None" = None,
    ) -> "Simulation":
        """Build a ready-to-run simulation from a named scenario.

        ``checkpoint_dir`` makes the run durable (journal + snapshots
        every ``checkpoint_every`` flush boundaries, one on close);
        ``resume=True`` recovers the directory instead of starting
        fresh. Resume only works with the *same* scenario knobs (name,
        seed, sizes, batch size): the scenario's mobility model is
        deterministic, so the already-journaled prefix is regenerated
        and discarded to fast-forward live generation to where the
        recovered run stopped. ``obs`` attaches observability
        (:class:`repro.obs.ObsSpec`) to the session either way.
        """
        from repro.core.tuning import suggest_granularity

        world = build_scenario(
            name,
            seed=seed,
            n_places=n_places,
            n_units=n_units,
            protection_range=protection_range,
            stream_length=0,
        )
        config = CTUPConfig(
            k=k,
            delta=delta,
            protection_range=protection_range,
            granularity=granularity
            or suggest_granularity(n_places, protection_range),
        )
        factory = monitor_factory or OptCTUP
        if checkpoint_dir is not None:
            from repro.api import DurabilitySpec, open_session

            session = open_session(
                factory,
                places=world.places,
                units=world.units,
                config=config,
                batch_size=batch_size,
                audit_every=audit_every,
                durability=DurabilitySpec(
                    checkpoint_dir, every=checkpoint_every, resume=resume
                ),
                obs=obs,
            )
            replayed = session.updates_processed + session.pending_updates
            if resume and replayed:
                for _ in world.mobility.updates(replayed):
                    pass
            return cls(session.monitor, world.mobility, session=session)
        monitor = factory(config, world.places, world.units)
        return cls(
            monitor,
            world.mobility,
            audit_every=audit_every,
            batch_size=batch_size,
            obs=obs,
        )

    def run(self, updates: int) -> SimulationOutcome:
        """Generate and process ``updates`` live messages."""
        if updates <= 0:
            raise ValueError("updates must be positive")
        if not self.session.started:
            self.session.start()
        problems_before = len(self.session.audit_problems)
        processed = self.session.run(self.mobility.updates(updates))
        return SimulationOutcome(
            updates=processed,
            final_topk=self.monitor.top_k(),
            final_sk=self.monitor.sk(),
            summary=self.timeline.summary(),
            changes=list(self.changes),
            audit_problems=self.session.audit_problems[problems_before:],
        )
