"""A minimal page-granular store.

The store holds immutable pages of records keyed by an integer page id.
It knows nothing about places or cells — :class:`repro.storage.placestore
.PlaceStore` layers that schema on top. Reads are counted through a
shared :class:`~repro.storage.iostats.IoStats` so higher layers (buffer
pool, place store, bench harness) all see the same traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.storage.iostats import IoStats


@dataclass(frozen=True, slots=True)
class Page:
    """An immutable page of records."""

    page_id: int
    records: tuple[Any, ...]

    def __len__(self) -> int:
        return len(self.records)


@dataclass
class PageStore:
    """An append-only collection of pages with read/write accounting."""

    page_capacity: int = 64
    stats: IoStats = field(default_factory=IoStats)

    def __post_init__(self) -> None:
        if self.page_capacity <= 0:
            raise ValueError("page capacity must be positive")
        self._pages: dict[int, Page] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._pages)

    def allocate(self, records: Sequence[Any]) -> int:
        """Write ``records`` (at most one page worth) as a new page."""
        if len(records) > self.page_capacity:
            raise ValueError(
                f"{len(records)} records exceed page capacity {self.page_capacity}"
            )
        page_id = self._next_id
        self._next_id += 1
        self._pages[page_id] = Page(page_id, tuple(records))
        self.stats.page_writes += 1
        return page_id

    def allocate_all(self, records: Sequence[Any]) -> list[int]:
        """Write ``records`` across as many pages as needed."""
        ids = []
        for start in range(0, len(records), self.page_capacity):
            ids.append(self.allocate(records[start : start + self.page_capacity]))
        return ids

    def replace(self, page_id: int, records: Sequence[Any]) -> Page:
        """Overwrite an existing page with ``records`` (counts one write).

        The page keeps its id, so higher-level page directories stay
        valid; only the contents change. Rejects unknown pages and
        over-capacity record sets, like :meth:`allocate`.
        """
        if page_id not in self._pages:
            raise KeyError(f"no such page: {page_id}")
        if len(records) > self.page_capacity:
            raise ValueError(
                f"{len(records)} records exceed page capacity {self.page_capacity}"
            )
        page = Page(page_id, tuple(records))
        self._pages[page_id] = page
        self.stats.page_writes += 1
        return page

    def release(self, page_id: int) -> None:
        """Drop a page entirely (counts one write — the deallocation).

        Freed ids are never reused; :attr:`_next_id` is monotone so page
        identity stays unambiguous across a store's whole life.
        """
        if page_id not in self._pages:
            raise KeyError(f"no such page: {page_id}")
        del self._pages[page_id]
        self.stats.page_writes += 1

    def read(self, page_id: int) -> Page:
        """Read one page, counting a physical read."""
        try:
            page = self._pages[page_id]
        except KeyError:
            raise KeyError(f"no such page: {page_id}") from None
        self.stats.page_reads += 1
        return page

    def peek(self, page_id: int) -> Page:
        """Read one page without accounting.

        Reserved for out-of-band inspection (checkpoint fingerprinting)
        that must not perturb the experiment's I/O counters.
        """
        try:
            return self._pages[page_id]
        except KeyError:
            raise KeyError(f"no such page: {page_id}") from None
