"""Shared machinery for the benchmark suite.

Each benchmark regenerates one paper artefact through the experiment
registry, asserts its expected *shape* (who wins, how trends move), and
archives the regenerated series under ``bench_results/`` so
EXPERIMENTS.md can cite the exact numbers.

Workload scale comes from ``REPRO_BENCH_SCALE`` (default 1.0 = the
paper's Table III sizes).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "bench_results"


@pytest.fixture
def record_result():
    """Persist an ExperimentResult for the experiment log."""

    def save(result) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(result.to_text() + "\n")

    return save


def column(result, name: str) -> list:
    """Extract one column of an ExperimentResult by header name."""
    index = result.headers.index(name)
    return [row[index] for row in result.rows]
