"""RPL005 — deprecation hygiene.

The package promises (via pyproject's ``filterwarnings =
["error::DeprecationWarning:repro"]``) that no code *inside* ``repro``
calls its own deprecated surface — the tier-1 suite turns such a call
into a hard error at runtime. This rule proves it statically: the
pre-pass collects every function that raises ``DeprecationWarning``
(``CTUPMonitor.run_stream`` today, anything added later automatically),
and any in-package call to such a name is flagged, except recursion
inside the deprecated definition itself.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ProjectIndex, SourceFile
from repro.lint.registry import Violation, rule


@rule(
    "RPL005",
    "deprecation-hygiene",
    "no in-package calls to surfaces that raise DeprecationWarning "
    "(cross-checked by the pytest error::DeprecationWarning:repro gate)",
    project_dependent=True,
)
def check(source: SourceFile, project: ProjectIndex) -> Iterator[Violation]:
    if not source.in_packages("repro") or not project.deprecated:
        return
    spans = _function_spans(source.tree)
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _called_name(node.func)
        if name is None or name not in project.deprecated:
            continue
        if any(
            start <= node.lineno <= end for start, end in spans.get(name, ())
        ):
            continue  # the deprecated body delegating / recursing
        defined_at = project.deprecated[name]
        yield Violation(
            code="RPL005",
            message=(
                f"call to deprecated surface '{name}' (declared at "
                f"{defined_at[0]}:{defined_at[1]}) from inside the "
                "package — the pytest DeprecationWarning gate makes this "
                "a runtime error; use repro.api.open_session / the "
                "replacement the warning names"
            ),
            path=source.path,
            line=node.lineno,
            col=node.col_offset,
        )


def _called_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _function_spans(tree: ast.AST) -> dict[str, list[tuple[int, int]]]:
    spans: dict[str, list[tuple[int, int]]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            spans.setdefault(node.name, []).append(
                (node.lineno, node.end_lineno or node.lineno)
            )
    return spans
