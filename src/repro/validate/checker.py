"""Brute-force ground truth for the monitors."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.model import LocationUpdate, Place, SafetyRecord, Unit


@dataclass(slots=True)
class TopKValidation:
    """Outcome of validating one reported top-k result."""

    ok: bool
    problems: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


class Oracle:
    """An independent, trivially-correct CTUP implementation.

    Keeps its own copy of the unit fleet, recomputes all safeties with a
    vectorised scan on demand, and validates monitor output. Being
    separate from :class:`repro.core.units.UnitIndex` and the monitors'
    kernels, a shared bug would have to be implemented twice to slip by.
    """

    def __init__(self, places: Sequence[Place], units: Iterable[Unit]) -> None:
        self._places = list(places)
        self._place_by_id = {p.place_id: p for p in self._places}
        if len(self._place_by_id) != len(self._places):
            raise ValueError("duplicate place ids")
        self._unit_pos: dict[int, tuple[float, float]] = {}
        ranges = set()
        for u in units:
            self._unit_pos[u.unit_id] = (u.location.x, u.location.y)
            ranges.add(u.protection_range)
        if len(ranges) != 1:
            raise ValueError("units must share one protection range")
        self._radius = ranges.pop()
        self._xs = np.array([p.location.x for p in self._places])
        self._ys = np.array([p.location.y for p in self._places])
        self._required = np.array(
            [p.required_protection for p in self._places], dtype=np.float64
        )
        self._ids = np.array([p.place_id for p in self._places], dtype=np.int64)

    def apply(self, update: LocationUpdate) -> None:
        """Track a unit move."""
        if update.unit_id not in self._unit_pos:
            raise KeyError(f"unknown unit {update.unit_id}")
        self._unit_pos[update.unit_id] = (
            update.new_location.x,
            update.new_location.y,
        )

    def safeties(self) -> dict[int, float]:
        """Exact safety of every place under current unit positions."""
        values = self._safety_vector()
        return {
            int(pid): float(s) for pid, s in zip(self._ids, values)
        }

    def _safety_vector(self) -> np.ndarray:
        if not self._places:
            return np.empty(0)
        ux = np.array([x for x, _ in self._unit_pos.values()])
        uy = np.array([y for _, y in self._unit_pos.values()])
        r2 = self._radius * self._radius
        dx = self._xs[:, None] - ux[None, :]
        dy = self._ys[:, None] - uy[None, :]
        ap = np.count_nonzero(dx * dx + dy * dy <= r2, axis=1)
        return ap - self._required

    def sk(self, k: int) -> float:
        """The true safety of the k-th unsafe place."""
        values = self._safety_vector()
        if len(values) < k:
            return math.inf
        return float(np.partition(values, k - 1)[k - 1])

    def top_k(self, k: int) -> list[SafetyRecord]:
        """The true top-k, ties broken by place id."""
        values = self._safety_vector()
        order = np.lexsort((self._ids, values))[: min(k, len(values))]
        return [
            SafetyRecord(self._places[int(i)], float(values[int(i)]))
            for i in order
        ]

    def validate(self, reported: Sequence[SafetyRecord], k: int) -> TopKValidation:
        """Judge a reported top-k result against ground truth."""
        problems: list[str] = []
        truth = self.safeties()
        expected_size = min(k, len(self._places))
        if len(reported) != expected_size:
            problems.append(
                f"result has {len(reported)} records, expected {expected_size}"
            )
        seen: set[int] = set()
        for record in reported:
            pid = record.place_id
            if pid in seen:
                problems.append(f"place {pid} reported twice")
            seen.add(pid)
            if pid not in truth:
                problems.append(f"place {pid} does not exist")
                continue
            if truth[pid] != record.safety:
                problems.append(
                    f"place {pid}: reported safety {record.safety}, "
                    f"true safety {truth[pid]}"
                )
        true_sk = self.sk(k)
        if reported and not problems:
            reported_max = max(r.safety for r in reported)
            if reported_max != true_sk and math.isfinite(true_sk):
                problems.append(
                    f"k-th reported safety {reported_max} != true SK {true_sk}"
                )
            must_include = {pid for pid, s in truth.items() if s < true_sk}
            missing = must_include - seen
            if missing:
                problems.append(
                    f"places strictly below SK missing from result: "
                    f"{sorted(missing)[:10]}"
                )
        return TopKValidation(ok=not problems, problems=problems)
