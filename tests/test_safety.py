"""Unit tests for the safety kernels (Definitions 1-3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.safety import (
    brute_force_safeties,
    protects,
    safety_arrays,
    safety_of_place,
)
from repro.core.units import UnitIndex
from repro.geometry import Point
from repro.model import Place, Unit

unit_coord = st.floats(0.0, 1.0, allow_nan=False)


class TestProtects:
    def test_inside(self):
        assert protects(Point(0.5, 0.5), 0.1, Point(0.55, 0.5))

    def test_boundary_closed(self):
        assert protects(Point(0.0, 0.0), 0.5, Point(0.5, 0.0))

    def test_outside(self):
        assert not protects(Point(0.5, 0.5), 0.1, Point(0.7, 0.5))


class TestSafetyOfPlace:
    def test_counts_minus_requirement(self):
        units = UnitIndex(
            [
                Unit(0, Point(0.5, 0.5), 0.1),
                Unit(1, Point(0.52, 0.5), 0.1),
                Unit(2, Point(0.9, 0.9), 0.1),
            ]
        )
        place = Place(0, Point(0.5, 0.5), required_protection=3)
        assert safety_of_place(units, place) == 2 - 3

    def test_negative_safety(self):
        units = UnitIndex([Unit(0, Point(0.9, 0.9), 0.05)])
        place = Place(0, Point(0.1, 0.1), required_protection=4)
        assert safety_of_place(units, place) == -4


class TestVectorKernelAgreement:
    @settings(max_examples=50)
    @given(
        st.lists(st.tuples(unit_coord, unit_coord), min_size=1, max_size=8),
        st.lists(
            st.tuples(unit_coord, unit_coord, st.integers(0, 5)),
            min_size=1,
            max_size=20,
        ),
    )
    def test_vectorised_matches_brute_force(self, unit_pos, place_spec):
        units = [Unit(i, Point(x, y), 0.15) for i, (x, y) in enumerate(unit_pos)]
        places = [
            Place(i, Point(x, y), rp) for i, (x, y, rp) in enumerate(place_spec)
        ]
        index = UnitIndex(units)
        xs = np.array([p.location.x for p in places])
        ys = np.array([p.location.y for p in places])
        required = np.array([p.required_protection for p in places])
        vectorised = safety_arrays(index, xs, ys, required)
        reference = brute_force_safeties(places, units)
        for place, value in zip(places, vectorised):
            assert reference[place.place_id] == value


class TestBruteForce:
    def test_empty_units(self):
        places = [Place(0, Point(0.5, 0.5), 2)]
        assert brute_force_safeties(places, []) == {0: -2.0}

    def test_all_units_protect(self):
        places = [Place(0, Point(0.5, 0.5), 1)]
        units = [Unit(i, Point(0.5, 0.5), 0.1) for i in range(4)]
        assert brute_force_safeties(places, units) == {0: 3.0}

    def test_returns_floats(self):
        result = brute_force_safeties(
            [Place(0, Point(0.5, 0.5), 0)], [Unit(0, Point(0.5, 0.5), 0.1)]
        )
        assert isinstance(result[0], float)
