"""JSON codecs for the configuration half of a snapshot document.

Structure codecs live next to the structures they encode (cell-state
tables in :mod:`repro.grid.cellstate`, the maintained table and DecHash
on their classes); this module only covers the monitor configuration,
which no single structure owns.

Values pass through without lossy conversion: CPython's JSON round-trips
``float64`` exactly (shortest-repr encoding), so a decoded config is
``==`` to the encoded one bit for bit.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.config import CTUPConfig
from repro.geometry import Rect


def encode_config(config: CTUPConfig) -> dict[str, Any]:
    """A JSON-codable document holding every ``CTUPConfig`` field."""
    space = config.space
    return {
        "k": config.k,
        "delta": config.delta,
        "protection_range": config.protection_range,
        "granularity": config.granularity,
        "space": [space.xmin, space.ymin, space.xmax, space.ymax],
        "use_doo": config.use_doo,
        "use_unit_grid": config.use_unit_grid,
        "page_capacity": config.page_capacity,
        "buffer_pages": config.buffer_pages,
    }


def decode_config(data: Mapping[str, Any]) -> CTUPConfig:
    """Inverse of :func:`encode_config`."""
    xmin, ymin, xmax, ymax = data["space"]
    return CTUPConfig(
        k=data["k"],
        delta=data["delta"],
        protection_range=data["protection_range"],
        granularity=data["granularity"],
        space=Rect(xmin, ymin, xmax, ymax),
        use_doo=data["use_doo"],
        use_unit_grid=data["use_unit_grid"],
        page_capacity=data["page_capacity"],
        buffer_pages=data["buffer_pages"],
    )
