"""``python -m repro.lint`` entry point."""

from __future__ import annotations

import sys

from repro.lint.cli import main

sys.exit(main())
