"""Ablations beyond the paper's figures (DESIGN.md §6)."""

from conftest import column

from repro.experiments import get_experiment


def test_ablation_buffer_pool(benchmark, record_result):
    """A larger buffer pool absorbs more of the simulated I/O."""
    result = benchmark.pedantic(
        get_experiment("ablation_buffer").run, rounds=1, iterations=1
    )
    record_result(result)
    physical = column(result, "physical reads")
    assert physical == sorted(physical, reverse=True)
    assert physical[-1] < physical[0]


def test_ablation_incremental_baseline(benchmark, record_result):
    """Grid bounds beat incrementality alone on touched-place counts."""
    result = benchmark.pedantic(
        get_experiment("ablation_incremental").run, rounds=1, iterations=1
    )
    record_result(result)
    algos = column(result, "algorithm")
    scanned = dict(zip(algos, column(result, "places scanned/upd")))
    work = dict(zip(algos, column(result, "distance rows/upd")))
    # the incremental baseline touches every place every update; opt
    # touches only its maintained band.
    assert scanned["opt"] * 10 < scanned["incremental"]
    assert work["opt"] < work["incremental"] < work["naive"]


def test_ablation_network_topologies(benchmark, record_result):
    """OptCTUP wins on every road-network family."""
    result = benchmark.pedantic(
        get_experiment("ablation_network").run, rounds=1, iterations=1
    )
    record_result(result)
    for network, basic, opt in zip(
        column(result, "network"),
        column(result, "basic ms/upd"),
        column(result, "opt ms/upd"),
    ):
        assert opt < basic, f"opt should beat basic on the {network} network"


def test_ablation_placement(benchmark, record_result):
    """OptCTUP maintains fewer places under both placement regimes."""
    result = benchmark.pedantic(
        get_experiment("ablation_placement").run, rounds=1, iterations=1
    )
    record_result(result)
    for placement, basic_peak, opt_peak in zip(
        column(result, "placement"),
        column(result, "basic maintained peak"),
        column(result, "opt maintained peak"),
    ):
        assert opt_peak < basic_peak, placement


def test_ablation_snapshot_rtree(benchmark, record_result):
    """Best-first snapshot top-k touches a fraction of the place set."""
    result = benchmark.pedantic(
        get_experiment("ablation_snapshot").run, rounds=1, iterations=1
    )
    record_result(result)
    evaluated = column(result, "places evaluated")
    total = column(result, "full-scan places")
    for k, touched, everything in zip(column(result, "k"), evaluated, total):
        assert touched < everything / 2, f"pruning too weak at k={k}"
    # more results demand more evaluation.
    assert evaluated == sorted(evaluated)


def test_ablation_batch_processing(benchmark, record_result):
    """Burst processing never accesses more cells than per-update."""
    result = benchmark.pedantic(
        get_experiment("ablation_batch").run, rounds=1, iterations=1
    )
    record_result(result)
    accesses = column(result, "cells accessed")
    assert accesses[-1] <= accesses[0]


def test_ablation_decay_models(benchmark, record_result):
    """The generalised decay monitor stays in the core model's cost class."""
    result = benchmark.pedantic(
        get_experiment("ablation_decay").run, rounds=1, iterations=1
    )
    record_result(result)
    ms = dict(
        zip(column(result, "variant"), column(result, "avg update ms"))
    )
    # the step profile is the integer model in disguise: same SK.
    sk = dict(zip(column(result, "variant"), column(result, "final SK")))
    assert sk["decay step"] == sk["opt (integer)"]
    # no variant should be an order of magnitude off the core cost.
    assert max(ms.values()) < 10 * min(ms.values())
