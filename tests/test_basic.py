"""BasicCTUP-specific behaviour and invariants (§III)."""

import math

import pytest

from repro.core import BasicCTUP
from repro.engine import MonitorSession
from repro.validate import Oracle
from tests.conftest import assert_valid_topk


@pytest.fixture
def basic(small_config, small_places, small_units):
    monitor = BasicCTUP(small_config, small_places, small_units)
    monitor.initialize()
    return monitor


def audit_invariants(monitor: BasicCTUP, oracle: Oracle) -> None:
    """The §III invariants, checked against brute-force ground truth."""
    truth = oracle.safeties()
    grid = monitor.grid
    maintained = monitor.maintained.safeties_snapshot()
    # 1. dark-cell lower bounds never exceed the true cell minimum.
    per_cell_min: dict = {}
    for place in monitor.store.iter_all_places():
        cell = grid.cell_of(place.location)
        value = truth[place.place_id]
        per_cell_min[cell] = min(per_cell_min.get(cell, math.inf), value)
    for cell, state in monitor.cell_states.items():
        if not state.illuminated:
            assert state.lower_bound <= per_cell_min[cell] + 1e-9, cell
    # 2. maintained safeties are exact.
    for pid, safety in maintained.items():
        assert truth[pid] == safety, pid
    # 3. every place of an illuminated cell is maintained; no place of a
    #    dark cell is.
    for place in monitor.store.iter_all_places():
        cell = grid.cell_of(place.location)
        if monitor.cell_states[cell].illuminated:
            assert place.place_id in maintained
        else:
            assert place.place_id not in maintained
    # 4. every true top-k place lives in an illuminated cell.
    for record in oracle.top_k(monitor.config.k):
        if record.safety < oracle.sk(monitor.config.k):
            cell = grid.cell_of(record.place.location)
            assert monitor.cell_states[cell].illuminated


class TestInitialization:
    def test_initial_result_valid(self, basic, small_oracle, small_config):
        assert_valid_topk(small_oracle, basic, small_config.k)

    def test_initial_invariants(self, basic, small_oracle):
        audit_invariants(basic, small_oracle)

    def test_some_cells_stay_dark(self, basic):
        dark = [
            c for c, s in basic.cell_states.items() if not s.illuminated
        ]
        assert dark, "initialization should not illuminate everything"

    def test_illuminated_cells_reported(self, basic):
        assert basic.illuminated_cells() == {
            c for c, s in basic.cell_states.items() if s.illuminated
        }


class TestUpdateInvariants:
    def test_invariants_hold_along_stream(
        self, basic, small_oracle, small_stream
    ):
        for i, update in enumerate(small_stream.prefix(60)):
            small_oracle.apply(update)
            basic.process(update)
            assert_valid_topk(small_oracle, basic, basic.config.k)
            if i % 20 == 19:
                audit_invariants(basic, small_oracle)

    def test_darkening_happens(self, basic, small_stream):
        MonitorSession(basic).run(small_stream)
        assert basic.counters.cells_darkened > 0

    def test_lower_bounds_decrease_under_table1(self, basic, small_stream):
        MonitorSession(basic).run(small_stream.prefix(50))
        assert basic.counters.lb_decrements > 0

    def test_counters_progress(self, basic, small_stream):
        MonitorSession(basic).run(small_stream.prefix(30))
        c = basic.counters
        assert c.updates_processed == 30
        assert c.maintained_scans > 0
        assert c.time_maintain_s >= 0
        assert c.time_access_s >= 0
