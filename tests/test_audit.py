"""The public invariant auditor."""

import math

import pytest

from repro.core import BasicCTUP, NaiveCTUP, OptCTUP
from repro.core.audit import audit_monitor
from repro.engine import MonitorSession


@pytest.fixture(params=[BasicCTUP, OptCTUP, NaiveCTUP], ids=lambda c: c.name)
def monitor(request, small_config, small_places, small_units):
    m = request.param(small_config, small_places, small_units)
    m.initialize()
    return m


class TestCleanState:
    def test_fresh_monitor_audits_clean(self, monitor):
        assert audit_monitor(monitor) == []

    def test_after_stream_audits_clean(self, monitor, small_stream):
        MonitorSession(monitor).run(small_stream)
        assert audit_monitor(monitor) == []


class TestDetection:
    def test_detects_corrupted_bound(
        self, small_config, small_places, small_units
    ):
        monitor = OptCTUP(small_config, small_places, small_units)
        monitor.initialize()
        # raise some dark cell's bound above its true minimum.
        victim = min(
            (
                c
                for c, s in monitor.cell_states.items()
                if math.isfinite(s.lower_bound)
            ),
            key=lambda c: monitor.cell_states[c].lower_bound,
        )
        monitor.cell_states[victim].lower_bound += 5.0
        problems = audit_monitor(monitor)
        assert any("bound" in p for p in problems)

    def test_detects_stale_maintained_safety(
        self, small_config, small_places, small_units
    ):
        monitor = OptCTUP(small_config, small_places, small_units)
        monitor.initialize()
        pid = next(iter(monitor.maintained.safeties_snapshot()))
        monitor.maintained.set_safety(pid, -99.0)
        problems = audit_monitor(monitor)
        assert any("stale" in p or "result" in p for p in problems)

    def test_detects_missing_maintained_topk(
        self, small_config, small_places, small_units
    ):
        monitor = OptCTUP(small_config, small_places, small_units)
        monitor.initialize()
        # evict the least safe maintained place behind the scheme's back.
        worst = monitor.top_k()[0]
        monitor.maintained.remove_id(worst.place_id)
        problems = audit_monitor(monitor)
        assert problems

    def test_detects_corrupted_basic_bound(
        self, small_config, small_places, small_units
    ):
        monitor = BasicCTUP(small_config, small_places, small_units)
        monitor.initialize()
        victim = next(
            c for c, s in monitor.cell_states.items() if not s.illuminated
        )
        monitor.cell_states[victim].lower_bound = 10_000.0
        problems = audit_monitor(monitor)
        assert any("basic" in p for p in problems)
