"""Unit tests for the simulated two-level storage."""

import pytest

from repro.geometry import Point, Rect
from repro.grid import GridPartition
from repro.model import Place
from repro.storage import BufferPool, PageStore, PlaceStore
from repro.storage.iostats import IoStats


def make_places(n: int, grid: GridPartition) -> list[Place]:
    places = []
    for i in range(n):
        x = (i % 10) / 10 + 0.05
        y = ((i // 10) % 10) / 10 + 0.05
        places.append(Place(i, Point(x, y), required_protection=1))
    return places


class TestPageStore:
    def test_allocate_and_read(self):
        store = PageStore(page_capacity=4)
        pid = store.allocate(["a", "b"])
        page = store.read(pid)
        assert page.records == ("a", "b")
        assert store.stats.page_reads == 1
        assert store.stats.page_writes == 1

    def test_allocate_overflow_raises(self):
        store = PageStore(page_capacity=2)
        with pytest.raises(ValueError):
            store.allocate([1, 2, 3])

    def test_allocate_all_splits(self):
        store = PageStore(page_capacity=2)
        ids = store.allocate_all([1, 2, 3, 4, 5])
        assert len(ids) == 3
        assert store.read(ids[2]).records == (5,)

    def test_read_missing_page(self):
        store = PageStore()
        with pytest.raises(KeyError):
            store.read(99)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            PageStore(page_capacity=0)


class TestBufferPool:
    def test_hit_after_miss(self):
        store = PageStore(page_capacity=2)
        pid = store.allocate([1])
        pool = BufferPool(store, capacity=2)
        pool.read(pid)
        pool.read(pid)
        assert pool.hits == 1
        assert pool.misses == 1
        assert store.stats.page_reads == 1
        assert store.stats.buffered_reads == 1

    def test_lru_eviction(self):
        store = PageStore(page_capacity=1)
        pids = [store.allocate([i]) for i in range(3)]
        pool = BufferPool(store, capacity=2)
        pool.read(pids[0])
        pool.read(pids[1])
        pool.read(pids[2])  # evicts pids[0]
        pool.read(pids[0])  # miss again
        assert pool.misses == 4
        assert pool.hits == 0

    def test_lru_recency_updates_on_hit(self):
        store = PageStore(page_capacity=1)
        pids = [store.allocate([i]) for i in range(3)]
        pool = BufferPool(store, capacity=2)
        pool.read(pids[0])
        pool.read(pids[1])
        pool.read(pids[0])  # refresh 0
        pool.read(pids[2])  # evicts 1, not 0
        pool.read(pids[0])
        assert pool.hits == 2

    def test_zero_capacity_passthrough(self):
        store = PageStore(page_capacity=1)
        pid = store.allocate([1])
        pool = BufferPool(store, capacity=0)
        pool.read(pid)
        pool.read(pid)
        assert pool.hits == 0
        assert store.stats.page_reads == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(PageStore(), capacity=-1)

    def test_clear_drops_frames(self):
        store = PageStore(page_capacity=1)
        pid = store.allocate([1])
        pool = BufferPool(store, capacity=4)
        pool.read(pid)
        pool.clear()
        pool.read(pid)
        assert pool.misses == 2


class TestIoStats:
    def test_subtraction(self):
        a = IoStats(page_reads=10, buffered_reads=4, page_writes=2)
        b = IoStats(page_reads=3, buffered_reads=1, page_writes=2)
        diff = a - b
        assert (diff.page_reads, diff.buffered_reads, diff.page_writes) == (7, 3, 0)

    def test_reset(self):
        s = IoStats(page_reads=5)
        s.reset()
        assert s.page_reads == 0

    def test_snapshot_is_independent(self):
        s = IoStats(page_reads=1)
        snap = s.snapshot()
        s.page_reads = 9
        assert snap.page_reads == 1


class TestPlaceStore:
    @pytest.fixture
    def grid(self):
        return GridPartition.unit_square(10)

    def test_place_count(self, grid):
        store = PlaceStore(grid, make_places(50, grid))
        assert store.place_count == 50

    def test_duplicate_place_id_rejected(self, grid):
        p = Place(1, Point(0.5, 0.5), 0)
        with pytest.raises(ValueError):
            PlaceStore(grid, [p, p])

    def test_read_cell_returns_cell_places(self, grid):
        places = make_places(100, grid)
        store = PlaceStore(grid, places)
        loaded = store.read_cell((0, 0))
        assert {p.place_id for p in loaded} == {
            p.place_id for p in places if grid.cell_of(p.location) == (0, 0)
        }

    def test_read_empty_cell(self, grid):
        store = PlaceStore(grid, make_places(5, grid))
        assert store.read_cell((9, 9)) == []

    def test_io_charged_per_page(self, grid):
        store = PlaceStore(grid, make_places(100, grid), page_capacity=4)
        before = store.io_stats.page_reads
        loaded = store.read_cell((0, 0))
        pages = -(-len(loaded) // 4)
        assert store.io_stats.page_reads - before == pages

    def test_cell_arrays_alignment(self, grid):
        store = PlaceStore(grid, make_places(100, grid))
        places, arrays = store.read_cell_with_arrays((1, 1))
        assert list(arrays.ids) == [p.place_id for p in places]
        assert list(arrays.required) == [p.required_protection for p in places]

    def test_cell_arrays_charges_first_touch_only(self, grid):
        store = PlaceStore(grid, make_places(100, grid), page_capacity=8)
        base = store.io_stats.snapshot()
        store.cell_arrays((0, 0))
        first = store.io_stats.snapshot() - base
        store.cell_arrays((0, 0))
        second = store.io_stats.snapshot() - base
        # the first touch pays the page walk; the repeat is served from
        # the SoA cache and shows up as array hits instead of reads.
        assert first.page_reads > 0
        assert first.array_hits == 0
        assert second.page_reads == first.page_reads
        assert second.array_hits == first.page_reads

    def test_cell_arrays_hits_counted_in_page_equivalents(self, grid):
        store = PlaceStore(grid, make_places(100, grid), page_capacity=4)
        pages = len(store.read_cell((0, 0))) // 4 + (len(store.read_cell((0, 0))) % 4 > 0)
        store.cell_arrays((0, 0))
        before = store.io_stats.array_hits
        store.cell_arrays((0, 0))
        store.cell_arrays((0, 0))
        assert store.io_stats.array_hits - before == 2 * pages

    def test_read_cell_with_arrays_still_charges_every_time(self, grid):
        store = PlaceStore(grid, make_places(100, grid), page_capacity=8)
        base = store.io_stats.snapshot()
        store.read_cell_with_arrays((0, 0))
        first = store.io_stats.snapshot() - base
        store.read_cell_with_arrays((0, 0))
        second = store.io_stats.snapshot() - base
        # loading the Place records really re-reads the pages; only the
        # pure columnar view is cache-served.
        assert second.page_reads == 2 * first.page_reads

    def test_buffered_store_reduces_physical_reads(self, grid):
        places = make_places(100, grid)
        cold = PlaceStore(grid, places, page_capacity=4, buffer_pages=0)
        warm = PlaceStore(grid, places, page_capacity=4, buffer_pages=64)
        for _ in range(3):
            cold.read_cell((0, 0))
            warm.read_cell((0, 0))
        assert warm.io_stats.page_reads < cold.io_stats.page_reads

    def test_occupied_cells(self, grid):
        store = PlaceStore(grid, make_places(10, grid))
        occupied = store.occupied_cells()
        assert all(store.cell_place_count(c) > 0 for c in occupied)
        assert sum(store.cell_place_count(c) for c in occupied) == 10

    def test_iter_all_places(self, grid):
        places = make_places(30, grid)
        store = PlaceStore(grid, places)
        assert {p.place_id for p in store.iter_all_places()} == set(range(30))

    def test_place_on_space_boundary(self):
        grid = GridPartition(Rect(0.0, 0.0, 1.0, 1.0), 4, 4)
        store = PlaceStore(grid, [Place(0, Point(1.0, 1.0), 0)])
        assert store.cell_place_count((3, 3)) == 1
