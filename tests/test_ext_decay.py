"""The decaying-protection variant (§VII)."""

import numpy as np
import pytest

from repro.engine import MonitorSession
from repro.ext import DecayCTUP, linear_decay, step_decay


def brute_force_decay(places, unit_positions, radius, weight):
    xs = np.array([p.location.x for p in places])
    ys = np.array([p.location.y for p in places])
    ux = np.array([p.x for p in unit_positions.values()])
    uy = np.array([p.y for p in unit_positions.values()])
    d = np.sqrt((xs[:, None] - ux[None, :]) ** 2 + (ys[:, None] - uy[None, :]) ** 2)
    protection = weight(d).sum(axis=1)
    required = np.array([p.required_protection for p in places], dtype=float)
    return {
        p.place_id: float(s) for p, s in zip(places, protection - required)
    }


class TestDecayModels:
    def test_linear_weight_profile(self):
        model = linear_decay(0.2)
        d = np.array([0.0, 0.1, 0.2, 0.3])
        assert model.weight(d).tolist() == [1.0, 0.5, 0.0, 0.0]

    def test_linear_max_loss(self):
        model = linear_decay(0.2)
        assert model.max_loss(0.1) == pytest.approx(0.5)
        assert model.max_loss(1.0) == 1.0

    def test_step_weight_profile(self):
        model = step_decay(0.1)
        d = np.array([0.05, 0.1, 0.11])
        assert model.weight(d).tolist() == [1.0, 1.0, 0.0]

    def test_step_max_loss(self):
        model = step_decay(0.1)
        assert model.max_loss(0.0) == 0.0
        assert model.max_loss(0.01) == 1.0

    def test_weight_at_scalar(self):
        assert linear_decay(0.2).weight_at(0.1) == pytest.approx(0.5)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            linear_decay(0.0)
        with pytest.raises(ValueError):
            step_decay(-1.0)


class TestDecayMonitor:
    def run_and_check(
        self, config, places, units, stream, model, prefix=80
    ):
        monitor = DecayCTUP(config, places, units, decay=model)
        monitor.initialize()
        positions = {u.unit_id: u.location for u in units}
        for update in stream.prefix(prefix):
            monitor.process(update)
            positions[update.unit_id] = update.new_location
        truth = brute_force_decay(
            places, positions, config.protection_range, model.weight
        )
        values = sorted(truth.values())
        true_sk = values[config.k - 1]
        result = monitor.top_k()
        assert len(result) == config.k
        for record in result:
            assert truth[record.place_id] == pytest.approx(record.safety)
        assert max(r.safety for r in result) == pytest.approx(true_sk)
        must = {pid for pid, s in truth.items() if s < true_sk - 1e-9}
        assert must <= {r.place_id for r in result}
        return monitor

    def test_linear_decay_tracks_truth(
        self, small_config, small_places, small_units, small_stream
    ):
        self.run_and_check(
            small_config,
            small_places,
            small_units,
            small_stream,
            linear_decay(small_config.protection_range),
        )

    def test_step_decay_matches_core_semantics(
        self, small_config, small_places, small_units, small_stream, small_oracle
    ):
        monitor = self.run_and_check(
            small_config,
            small_places,
            small_units,
            small_stream,
            step_decay(small_config.protection_range),
        )
        for update in small_stream.prefix(80):
            small_oracle.apply(update)
        verdict = small_oracle.validate(monitor.top_k(), small_config.k)
        assert verdict.ok, verdict.problems

    def test_default_model_is_linear(
        self, small_config, small_places, small_units
    ):
        monitor = DecayCTUP(small_config, small_places, small_units)
        assert monitor.decay.name == "linear"

    def test_fractional_safeties_appear(
        self, small_config, small_places, small_units, small_stream
    ):
        monitor = DecayCTUP(
            small_config,
            small_places,
            small_units,
            decay=linear_decay(small_config.protection_range),
        )
        monitor.initialize()
        MonitorSession(monitor).run(small_stream.prefix(30))
        # the most unsafe places may be entirely unprotected (integer
        # safeties); the maintained band must show fractional values.
        safeties = monitor.maintained.safeties_snapshot().values()
        assert any(s != int(s) for s in safeties)

    def test_counters_advance(
        self, small_config, small_places, small_units, small_stream
    ):
        monitor = DecayCTUP(small_config, small_places, small_units)
        monitor.initialize()
        MonitorSession(monitor).run(small_stream.prefix(30))
        assert monitor.counters.updates_processed == 30
        assert monitor.counters.lb_decrements > 0
