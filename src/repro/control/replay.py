"""Folding journaled place events into a place list.

Recovery builds a monitor from a snapshot whose ``config`` captures the
``k`` / granularity in force at checkpoint time — but the *place set*
reaches :func:`~repro.state.snapshot.restore_monitor` as a plain list,
typically the workload's original one. When the journal records catalog
mutations that happened before the snapshot, the list must be brought
forward first; :func:`fold_places` does exactly that fold.

Only place events fold. ``k_changed`` / ``grid_retuned`` are already
baked into the snapshot's encoded config, and ``shard_plan_changed``
into its exported plan, so folding them here would double-apply.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.control.events import (
    ControlEvent,
    PlaceAdded,
    PlaceRemoved,
    PlaceReweighted,
)
from repro.model import Place


def fold_places(
    places: Sequence[Place], events: Iterable[ControlEvent]
) -> list[Place]:
    """``places`` after applying the place events in ``events``, in order.

    Non-place events are ignored (see module docstring). The result
    preserves first-insertion order, matching how a store built from it
    assigns pages.
    """
    table: dict[int, Place] = {}
    for place in places:
        if place.place_id in table:
            raise ValueError(f"duplicate place id {place.place_id}")
        table[place.place_id] = place
    for event in events:
        if isinstance(event, PlaceAdded):
            pid = event.place.place_id
            if pid in table:
                raise ValueError(f"place {pid} already exists")
            table[pid] = event.place
        elif isinstance(event, PlaceRemoved):
            if event.place_id not in table:
                raise ValueError(f"no such place {event.place_id}")
            del table[event.place_id]
        elif isinstance(event, PlaceReweighted):
            old = table.get(event.place_id)
            if old is None:
                raise ValueError(f"no such place {event.place_id}")
            table[event.place_id] = Place(
                place_id=old.place_id,
                location=old.location,
                required_protection=event.required_protection,
                kind=old.kind,
            )
    return list(table.values())
