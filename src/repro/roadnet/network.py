"""Road networks.

A :class:`RoadNetwork` is an undirected graph whose nodes carry plane
coordinates and whose edges carry a length and a *speed class* (0 =
slowest residential street; higher classes are faster arterials), in the
spirit of the Brinkhoff generator's road classes.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

import networkx as nx

from repro.geometry import Point, Rect

#: relative speed of each road class; class 0 is the reference.
SPEED_OF_CLASS: tuple[float, ...] = (1.0, 2.0, 3.0)


class RoadNetwork:
    """An undirected road graph embedded in the plane."""

    def __init__(self, graph: nx.Graph) -> None:
        if graph.number_of_nodes() == 0:
            raise ValueError("road network must have at least one node")
        if not nx.is_connected(graph):
            raise ValueError("road network must be connected")
        for node, data in graph.nodes(data=True):
            if "point" not in data:
                raise ValueError(f"node {node} has no 'point' attribute")
        self.graph = graph
        for a, b, data in graph.edges(data=True):
            length = self.node_point(a).distance_to(self.node_point(b))
            data["length"] = length
            road_class = data.get("road_class", 0)
            if not (0 <= road_class < len(SPEED_OF_CLASS)):
                raise ValueError(f"edge ({a},{b}): bad road class {road_class}")
            data["road_class"] = road_class
            # travel time drives route choice: fast roads attract routes.
            data["travel_time"] = (
                length / SPEED_OF_CLASS[road_class] if length > 0 else 0.0
            )
        self._nodes: Sequence = list(graph.nodes)

    @property
    def node_count(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def edge_count(self) -> int:
        return self.graph.number_of_edges()

    def node_point(self, node) -> Point:
        """The plane location of a node."""
        return self.graph.nodes[node]["point"]

    def edge_length(self, a, b) -> float:
        return self.graph.edges[a, b]["length"]

    def edge_speed(self, a, b) -> float:
        """Movement speed on the edge (space units per time unit)."""
        return SPEED_OF_CLASS[self.graph.edges[a, b]["road_class"]]

    def random_node(self, rng: random.Random):
        """A node chosen uniformly at random."""
        return self._nodes[rng.randrange(len(self._nodes))]

    def nearest_node(self, point: Point):
        """The network node closest to an arbitrary plane point.

        Used by directed patrols to turn "head towards that bank" into a
        routable destination. Linear scan — road networks here have
        hundreds of nodes, and patrol retargeting is infrequent.
        """
        return min(
            self._nodes,
            key=lambda node: self.node_point(node).squared_distance_to(point),
        )

    def shortest_path(self, source, target) -> list:
        """Node sequence of the fastest (travel-time) route."""
        return nx.shortest_path(
            self.graph, source, target, weight="travel_time"
        )

    def bounding_rect(self) -> Rect:
        """The bounding rectangle of all nodes."""
        xs = [self.node_point(n).x for n in self._nodes]
        ys = [self.node_point(n).y for n in self._nodes]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    def normalized_to(self, space: Rect) -> "RoadNetwork":
        """A copy rescaled so its bounding rect fills ``space``.

        The monitors assume all locations fall inside the configured
        space; normalising the network guarantees that for any topology.
        """
        bounds = self.bounding_rect()
        width = bounds.width or 1.0
        height = bounds.height or 1.0
        graph = nx.Graph()
        for node, data in self.graph.nodes(data=True):
            p = data["point"]
            graph.add_node(
                node,
                point=Point(
                    space.xmin + (p.x - bounds.xmin) / width * space.width,
                    space.ymin + (p.y - bounds.ymin) / height * space.height,
                ),
            )
        for a, b, data in self.graph.edges(data=True):
            graph.add_edge(a, b, road_class=data.get("road_class", 0))
        return RoadNetwork(graph)


def network_from_points(
    points: Iterable[Point], edges: Iterable[tuple[int, int, int]]
) -> RoadNetwork:
    """Build a network from point list and ``(a, b, road_class)`` edges."""
    graph = nx.Graph()
    for i, p in enumerate(points):
        graph.add_node(i, point=p)
    for a, b, road_class in edges:
        graph.add_edge(a, b, road_class=road_class)
    return RoadNetwork(graph)
