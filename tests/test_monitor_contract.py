"""The common monitor contract, checked for every scheme."""

import pytest

from repro.core import BasicCTUP, CTUPConfig, NaiveCTUP, OptCTUP
from repro.core.incremental import IncrementalNaiveCTUP
from repro.geometry import Point
from repro.model import LocationUpdate, Unit
from repro.shard import ShardedMonitor

# ShardedMonitor rides along: the sharded wrapper must satisfy the
# exact same contract as the plain schemes (defaults: 4 opt shards).
ALL_MONITORS = [
    NaiveCTUP,
    BasicCTUP,
    OptCTUP,
    IncrementalNaiveCTUP,
    ShardedMonitor,
]


@pytest.fixture(params=ALL_MONITORS, ids=lambda cls: cls.name)
def monitor(request, small_config, small_places, small_units):
    return request.param(small_config, small_places, small_units)


class TestLifecycle:
    def test_process_before_initialize_raises(self, monitor, small_units):
        unit = small_units[0]
        update = LocationUpdate(unit.unit_id, unit.location, Point(0.5, 0.5))
        with pytest.raises(RuntimeError):
            monitor.process(update)

    def test_double_initialize_raises(self, monitor):
        monitor.initialize()
        with pytest.raises(RuntimeError):
            monitor.initialize()

    def test_initialize_report_fields(self, monitor, small_config, small_oracle):
        report = monitor.initialize()
        assert report.seconds >= 0.0
        assert report.places_loaded > 0
        assert report.sk == small_oracle.sk(small_config.k)

    def test_topk_size(self, monitor, small_config):
        monitor.initialize()
        assert len(monitor.top_k()) == small_config.k

    def test_topk_sorted_with_id_tie_break(self, monitor):
        monitor.initialize()
        result = monitor.top_k()
        keys = [(r.safety, r.place_id) for r in result]
        assert keys == sorted(keys)

    def test_sk_equals_last_topk_safety(self, monitor):
        monitor.initialize()
        assert monitor.sk() == monitor.top_k()[-1].safety

    def test_run_stream_counts(self, monitor, small_stream):
        monitor.initialize()
        with pytest.warns(DeprecationWarning):  # legacy path, still exact
            assert monitor.run_stream(small_stream) == len(small_stream)
        assert monitor.counters.updates_processed == len(small_stream)

    def test_unknown_unit_update_raises(self, monitor):
        monitor.initialize()
        with pytest.raises(KeyError):
            monitor.process(
                LocationUpdate(999, Point(0.5, 0.5), Point(0.6, 0.6))
            )

    def test_inconsistent_old_location_raises(self, monitor, small_units):
        monitor.initialize()
        unit = small_units[0]
        with pytest.raises(ValueError):
            monitor.process(
                LocationUpdate(
                    unit.unit_id, Point(0.123, 0.456), Point(0.5, 0.5)
                )
            )


class TestConstruction:
    def test_range_mismatch_rejected(self, small_config, small_places):
        units = [Unit(0, Point(0.5, 0.5), 0.3)]  # config says 0.1
        for cls in ALL_MONITORS:
            with pytest.raises(ValueError):
                cls(small_config, small_places, units)

    def test_monitors_do_not_share_unit_state(
        self, small_config, small_places, small_units, small_stream
    ):
        a = OptCTUP(small_config, small_places, small_units)
        b = BasicCTUP(small_config, small_places, small_units)
        a.initialize()
        b.initialize()
        for update in small_stream.prefix(10):
            a.process(update)
        # b never saw the updates; its units are untouched.
        first = small_stream[0]
        assert b.units.location_of(first.unit_id) == first.old_location


class TestSmallK:
    def test_k_larger_than_place_count(self, small_units):
        from repro.workloads import generate_places

        config = CTUPConfig(k=50, delta=2, protection_range=0.1, granularity=4)
        places = generate_places(10, seed=3)
        for cls in ALL_MONITORS:
            monitor = cls(config, places, small_units)
            monitor.initialize()
            assert len(monitor.top_k()) == 10
            assert monitor.sk() == float("inf")

    def test_k_equals_one(self, small_places, small_units, small_oracle):
        config = CTUPConfig(k=1, delta=2, protection_range=0.1, granularity=8)
        for cls in ALL_MONITORS:
            monitor = cls(config, small_places, small_units)
            monitor.initialize()
            top = monitor.top_k()
            assert len(top) == 1
            assert top[0].safety == small_oracle.sk(1)
