"""The predictive variant (§VII, fourth future-work direction).

"Instead of monitoring, the user may want the system to continuously
predict the unsafe places in the near future." This module estimates a
velocity for every unit from its two most recent reports, extrapolates
all positions ``horizon`` time units ahead (clamped to the monitored
space), and evaluates the top-k unsafe places of that predicted world
with one vectorised snapshot query.

Prediction is a *view* over the observed stream: feed the same updates
to a live monitor and a :class:`PredictiveMonitor` and ask the latter
where trouble will be, not where it is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.topk import topk_rows
from repro.geometry import Point, Rect
from repro.model import LocationUpdate, Place, Unit


@dataclass(frozen=True, slots=True)
class PredictedRecord:
    """One predicted top-k entry."""

    place: Place
    predicted_safety: float
    horizon: float

    @property
    def place_id(self) -> int:
        return self.place.place_id


class PredictiveMonitor:
    """Velocity-extrapolated top-k unsafe-place prediction."""

    def __init__(
        self,
        places: Sequence[Place],
        units: Iterable[Unit],
        space: Rect = Rect(0.0, 0.0, 1.0, 1.0),
    ) -> None:
        places = list(places)
        if not places:
            raise ValueError("need at least one place")
        self._places = places
        self._space = space
        self._xs = np.array([p.location.x for p in places])
        self._ys = np.array([p.location.y for p in places])
        self._required = np.array(
            [p.required_protection for p in places], dtype=np.float64
        )
        self._ids = np.array([p.place_id for p in places], dtype=np.int64)
        self._pos: dict[int, Point] = {}
        self._velocity: dict[int, tuple[float, float]] = {}
        self._last_time: dict[int, float] = {}
        ranges = set()
        for u in units:
            self._pos[u.unit_id] = u.location
            self._velocity[u.unit_id] = (0.0, 0.0)
            self._last_time[u.unit_id] = 0.0
            ranges.add(u.protection_range)
        if len(ranges) != 1:
            raise ValueError("units must share one protection range")
        self._radius = ranges.pop()

    def observe(self, update: LocationUpdate) -> None:
        """Absorb a location update, refreshing the unit's velocity."""
        if update.unit_id not in self._pos:
            raise KeyError(f"unknown unit {update.unit_id}")
        previous = self._pos[update.unit_id]
        dt = update.timestamp - self._last_time[update.unit_id]
        if dt > 0:
            self._velocity[update.unit_id] = (
                (update.new_location.x - previous.x) / dt,
                (update.new_location.y - previous.y) / dt,
            )
        self._pos[update.unit_id] = update.new_location
        self._last_time[update.unit_id] = update.timestamp

    def predicted_positions(self, horizon: float) -> dict[int, Point]:
        """Where every unit is expected to be ``horizon`` from now."""
        if horizon < 0:
            raise ValueError("horizon cannot be negative")
        predicted = {}
        for unit_id, position in self._pos.items():
            vx, vy = self._velocity[unit_id]
            predicted[unit_id] = self._space.clamp_point(
                Point(position.x + vx * horizon, position.y + vy * horizon)
            )
        return predicted

    def predict_top_k(self, k: int, horizon: float) -> list[PredictedRecord]:
        """The k places expected to be least safe at ``now + horizon``."""
        if k <= 0:
            raise ValueError("k must be positive")
        positions = self.predicted_positions(horizon)
        ux = np.array([p.x for p in positions.values()])
        uy = np.array([p.y for p in positions.values()])
        r2 = self._radius * self._radius
        dx = self._xs[:, None] - ux[None, :]
        dy = self._ys[:, None] - uy[None, :]
        ap = np.count_nonzero(dx * dx + dy * dy <= r2, axis=1)
        safety = ap - self._required
        rows = topk_rows(self._ids, safety, k)
        return [
            PredictedRecord(
                place=self._places[int(row)],
                predicted_safety=float(safety[row]),
                horizon=horizon,
            )
            for row in rows.tolist()
        ]
