"""Fig. 5 — update cost varying k.

Paper shape: OptCTUP stays below BasicCTUP across the whole sweep.
"""

from conftest import column

from repro.experiments import get_experiment


def test_fig5_vary_k(benchmark, record_result):
    result = benchmark.pedantic(
        get_experiment("fig5").run, rounds=1, iterations=1
    )
    record_result(result)
    assert column(result, "k") == [5, 10, 15, 20, 25]
    basic = column(result, "basic ms/upd")
    opt = column(result, "opt ms/upd")
    for k, b, o in zip(column(result, "k"), basic, opt):
        assert o < b, f"opt should beat basic at k={k}"
