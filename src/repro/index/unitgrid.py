"""Grid-bucketed secondary index over the protecting units.

Every AP kernel ultimately answers one question: *which units' protection
disks can reach into this rectangle?* The linear answer scans all |U|
unit positions per query; this index buckets the unit *rows* of a
:class:`~repro.core.units.UnitIndex` by grid cell so a query only
examines the O(⌈R/w⌉²) bucket neighbourhood of the rectangle — the same
trick INSQ-style moving-query systems use for kNN candidate sets.

The index is a *candidate generator*, not an approximation: the gathered
rows still pass through the exact rect-distance filter, so callers see
the identical reachable set (in the identical row order) as the linear
scan, bit for bit.

Bucketing is defensive about geometry: positions are clamped into the
boundary buckets, and the query neighbourhood is clamped the same way,
so units sitting exactly on (or numerically just outside) the space
border are still found. The bucket assignment only has to be consistent
between insert and remove — exactness comes from the final filter.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import Rect
from repro.grid.partition import GridPartition

_EMPTY_ROWS = np.empty(0, dtype=np.int64)


class UnitGridIndex:
    """Buckets unit rows by grid cell for fast reachability queries.

    Parameters
    ----------
    grid:
        the partition whose cells become the buckets (monitors pass
        their own :class:`GridPartition`, keeping one geometry).
    xs, ys:
        the *live* position arrays of the owning ``UnitIndex``. The
        arrays are mutated in place by location updates; the index holds
        references, so gathered candidates always see current positions.
    radius:
        the shared protection range ``R``; queries inflate their
        rectangle by it to find every disk that can reach inside.
    """

    def __init__(
        self, grid: GridPartition, xs: np.ndarray, ys: np.ndarray, radius: float
    ) -> None:
        if radius <= 0:
            raise ValueError("protection radius must be positive")
        self.grid = grid
        self.radius = radius
        self._xs = xs
        self._ys = ys
        self.nx = grid.nx
        self.ny = grid.ny
        self._x0 = grid.space.xmin
        self._y0 = grid.space.ymin
        self._inv_w = 1.0 / grid.cell_width
        self._inv_h = 1.0 / grid.cell_height
        #: rows per linear bucket id, plus a per-bucket ndarray cache so
        #: repeated gathers over a static neighbourhood avoid list->array
        #: conversion; the cache entry is dropped whenever a move touches
        #: the bucket.
        self._rows: dict[int, list[int]] = {}
        self._cache: dict[int, np.ndarray] = {}
        #: gathered (concatenated + sorted) candidate rows per query
        #: block. Monitors re-query the same static cell rectangles every
        #: refresh while a single update re-buckets at most one unit, so
        #: almost all gathers are exact repeats; each cached block is
        #: registered with the buckets it covers and dropped when any of
        #: them changes membership. Within-bucket moves keep the cache:
        #: the candidate *set* only depends on bucket membership, and the
        #: exact filter reads live positions.
        self._block_cache: dict[tuple[int, int, int, int], np.ndarray] = {}
        self._blocks_of_bucket: dict[int, set[tuple[int, int, int, int]]] = {}
        for row in range(len(xs)):
            self._rows.setdefault(
                self._bucket(float(xs[row]), float(ys[row])), []
            ).append(row)

    # -- maintenance ------------------------------------------------------

    def move(self, row: int, old_x: float, old_y: float, x: float, y: float) -> None:
        """Re-bucket ``row`` after its unit moved (no-op within a bucket)."""
        old_bucket = self._bucket(old_x, old_y)
        new_bucket = self._bucket(x, y)
        if old_bucket == new_bucket:
            return
        self._rows[old_bucket].remove(row)
        if not self._rows[old_bucket]:
            del self._rows[old_bucket]
        self._invalidate_bucket(old_bucket)
        self._rows.setdefault(new_bucket, []).append(row)
        self._invalidate_bucket(new_bucket)

    def move_many(
        self,
        rows: np.ndarray,
        old_x: np.ndarray,
        old_y: np.ndarray,
        new_x: np.ndarray,
        new_y: np.ndarray,
    ) -> None:
        """Re-bucket many rows at once (one burst's coalesced moves).

        One vectorised pass computes every row's old and new bucket
        column; only the rows that actually crossed a bucket border go
        through the scalar remove/append path. End state is identical to
        calling :meth:`move` per row in order — almost all moves stay
        within their bucket, so the bucket-id arithmetic dominates the
        scalar loop and is what this batches away.
        """
        old_bucket = self.bucket_columns(old_x, old_y)
        new_bucket = self.bucket_columns(new_x, new_y)
        for pos in np.flatnonzero(old_bucket != new_bucket).tolist():
            row = int(rows[pos])
            source = int(old_bucket[pos])
            target = int(new_bucket[pos])
            self._rows[source].remove(row)
            if not self._rows[source]:
                del self._rows[source]
            self._invalidate_bucket(source)
            self._rows.setdefault(target, []).append(row)
            self._invalidate_bucket(target)

    def _invalidate_bucket(self, bucket: int) -> None:
        self._cache.pop(bucket, None)
        for key in sorted(self._blocks_of_bucket.pop(bucket, ())):
            self._block_cache.pop(key, None)

    # -- queries ----------------------------------------------------------

    def candidate_rows(self, rect: Rect) -> np.ndarray:
        """Rows bucketed within reach of ``rect`` (sorted, pre-filter).

        A superset of the reachable rows: every unit whose disk can
        intersect ``rect`` lies in a bucket whose column/row range the
        inflated rectangle overlaps (clamping at the space border keeps
        clamped border units inside the searched range).

        The returned array may be a shared cache entry — treat it as
        read-only.
        """
        i_lo = self._col(rect.xmin - self.radius)
        i_hi = self._col(rect.xmax + self.radius)
        j_lo = self._row(rect.ymin - self.radius)
        j_hi = self._row(rect.ymax + self.radius)
        key = (i_lo, i_hi, j_lo, j_hi)
        cached_block = self._block_cache.get(key)
        if cached_block is not None:
            return cached_block
        chunks: list[np.ndarray] = []
        for i in range(i_lo, i_hi + 1):
            base = i * self.ny
            for j in range(j_lo, j_hi + 1):
                bucket = base + j
                rows = self._rows.get(bucket)
                if not rows:
                    continue
                cached = self._cache.get(bucket)
                if cached is None:
                    cached = np.array(rows, dtype=np.int64)
                    self._cache[bucket] = cached
                chunks.append(cached)
        if not chunks:
            gathered = _EMPTY_ROWS
        else:
            gathered = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            # sorted row order makes downstream kernels (notably weighted
            # sums) bit-identical to the linear scan over all rows.
            gathered = np.sort(gathered)
        self._block_cache[key] = gathered
        for i in range(i_lo, i_hi + 1):
            base = i * self.ny
            for j in range(j_lo, j_hi + 1):
                self._blocks_of_bucket.setdefault(base + j, set()).add(key)
        return gathered

    def units_reaching(self, rect: Rect) -> tuple[np.ndarray, int]:
        """Rows whose protection disk reaches into ``rect``, exactly.

        Returns the sorted reachable rows and the number of candidate
        rows the prefilter examined (the work the bucketing saved is
        ``len(index) - candidates``).
        """
        rows = self.candidate_rows(rect)
        if len(rows) == 0:
            return rows, 0
        ux = self._xs[rows]
        uy = self._ys[rows]
        # identical arithmetic to the linear reachability scan.
        dx = np.maximum(rect.xmin - ux, 0.0)
        dx = np.maximum(dx, ux - rect.xmax)
        dy = np.maximum(rect.ymin - uy, 0.0)
        dy = np.maximum(dy, uy - rect.ymax)
        r = self.radius
        return rows[dx * dx + dy * dy <= r * r], len(rows)

    def bucket_columns(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorised linear bucket id per point (clamped into the grid)."""
        bi = np.clip(
            np.floor((xs - self._x0) * self._inv_w).astype(np.int64), 0, self.nx - 1
        )
        bj = np.clip(
            np.floor((ys - self._y0) * self._inv_h).astype(np.int64), 0, self.ny - 1
        )
        return bi * self.ny + bj

    # -- diagnostics -------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._rows.values())

    def occupied_buckets(self) -> int:
        return len(self._rows)

    def check(self) -> list[str]:
        """Invariant self-check (tests): every row in its position's bucket."""
        problems = []
        seen: set[int] = set()
        for bucket, rows in self._rows.items():
            for row in rows:
                if row in seen:
                    problems.append(f"row {row} bucketed twice")
                seen.add(row)
                expected = self._bucket(float(self._xs[row]), float(self._ys[row]))
                if expected != bucket:
                    problems.append(
                        f"row {row} in bucket {bucket}, position says {expected}"
                    )
        if len(seen) != len(self._xs):
            problems.append(f"{len(self._xs) - len(seen)} rows missing from buckets")
        return problems

    # -- internals ---------------------------------------------------------

    def _bucket(self, x: float, y: float) -> int:
        return self._col(x) * self.ny + self._row(y)

    def _col(self, x: float) -> int:
        i = int((x - self._x0) * self._inv_w)
        return 0 if i < 0 else (self.nx - 1 if i >= self.nx else i)

    def _row(self, y: float) -> int:
        j = int((y - self._y0) * self._inv_h)
        return 0 if j < 0 else (self.ny - 1 if j >= self.ny else j)
