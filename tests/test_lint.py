"""reprolint: every rule fires on a bad fixture, stays quiet on a good
one, suppressions and the reporters behave, and — the self-check — the
shipped tree lints clean."""

import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.lint import (
    RULES,
    LintConfig,
    lint_paths,
    lint_sources,
    render_json,
    render_text,
)
from repro.lint.cli import main as lint_main
from repro.lint.engine import (
    SourceFile,
    collect_files,
    module_name_of,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def src(text, module="repro.core.fixture", path="fixture.py"):
    return SourceFile(path, textwrap.dedent(text), module)


def run_rules(sources, *select):
    config = LintConfig(select=tuple(select))
    return lint_sources(sources, config)


def codes_of(result):
    return [v.code for v in result.violations]


#: a stub of the real base class so ProjectIndex can resolve the
#: hierarchy without parsing the whole package. Lives in the owning
#: module name, so its lifecycle defs are legal.
MONITOR_BASE = src(
    """
    class CTUPMonitor:
        def initialize(self): ...
        def apply_update(self, update): ...
        def refresh(self): ...
        def process(self, update): ...
        def run_stream(self, updates): ...
        def _build_initial_state(self): ...
        def _apply(self, update): ...
        def _refresh(self): ...
        def top_k(self): ...
        def sk(self): ...
        def partial_top_k(self, m): ...
    """,
    module="repro.core.monitor",
    path="monitor_stub.py",
)

GOOD_SCHEME = """
    class GoodScheme(CTUPMonitor):
        def _build_initial_state(self): ...
        def _apply(self, update): ...
        def _refresh(self): ...
        def top_k(self): ...
        def sk(self): ...
        def partial_top_k(self, m): ...
"""


# -- RPL001: scheme contract --------------------------------------------


class TestSchemeContract:
    def test_good_scheme_is_clean(self):
        fixture = src(GOOD_SCHEME, module="repro.ext.fixture")
        result = run_rules([MONITOR_BASE, fixture], "RPL001")
        assert codes_of(result) == []

    def test_missing_phase_api_fires(self):
        fixture = src(
            """
            class HollowScheme(CTUPMonitor):
                def top_k(self): ...
            """,
            module="repro.ext.fixture",
        )
        result = run_rules([MONITOR_BASE, fixture], "RPL001")
        messages = [v.message for v in result.violations]
        assert len(messages) == 4  # _build_initial_state/_apply/_refresh/sk
        assert any("_build_initial_state" in m for m in messages)
        assert all(v.code == "RPL001" for v in result.violations)

    def test_lifecycle_override_fires(self):
        fixture = src(
            GOOD_SCHEME
            + "        def process(self, update):\n"
            + "            return None\n",
            module="repro.ext.fixture",
        )
        result = run_rules([MONITOR_BASE, fixture], "RPL001")
        assert codes_of(result) == ["RPL001"]
        assert "process" in result.violations[0].message

    def test_phase_api_may_come_from_an_intermediate_class(self):
        base = src(GOOD_SCHEME, module="repro.ext.fixture", path="a.py")
        leaf = src(
            """
            class LeafScheme(GoodScheme):
                pass
            """,
            module="repro.ext.fixture2",
            path="b.py",
        )
        result = run_rules([MONITOR_BASE, base, leaf], "RPL001")
        assert codes_of(result) == []

    def test_partial_top_k_arity_fires(self):
        fixture = src(
            GOOD_SCHEME.replace(
                "def partial_top_k(self, m):",
                "def partial_top_k(self, m, extra):",
            ),
            module="repro.ext.fixture",
        )
        result = run_rules([MONITOR_BASE, fixture], "RPL001")
        assert codes_of(result) == ["RPL001"]
        assert "(self, m)" in result.violations[0].message

    def test_schemes_registry_rejects_non_monitor(self):
        api = src(
            """
            class Impostor:
                pass

            SCHEMES = {"impostor": Impostor}
            """,
            module="repro.api",
            path="api_stub.py",
        )
        result = run_rules([MONITOR_BASE, api], "RPL001")
        assert codes_of(result) == ["RPL001"]
        assert "Impostor" in result.violations[0].message


# -- RPL002: counter discipline -----------------------------------------


class TestCounterDiscipline:
    def test_foreign_io_counter_mutation_fires(self):
        fixture = src(
            """
            def sneak(stats):
                stats.page_reads += 1
            """,
            module="repro.core.fixture",
        )
        result = run_rules([fixture], "RPL002")
        assert codes_of(result) == ["RPL002"]
        assert "repro.storage" in result.violations[0].message

    def test_owner_module_may_mutate(self):
        fixture = src(
            """
            def charge(stats):
                stats.page_reads += 1
            """,
            module="repro.storage.fixture",
        )
        assert codes_of(run_rules([fixture], "RPL002")) == []

    def test_same_named_self_attribute_is_exempt(self):
        fixture = src(
            """
            class Driver:
                def bump(self):
                    self.updates_processed += 1
            """,
            module="repro.engine.fixture",
        )
        assert codes_of(run_rules([fixture], "RPL002")) == []

    def test_timing_fields_outside_lifecycle_fire(self):
        fixture = src(
            """
            def fake_timing(monitor):
                monitor.counters.time_access_s += 0.5
            """,
            module="repro.ext.fixture",
        )
        result = run_rules([fixture], "RPL002")
        assert codes_of(result) == ["RPL002"]

    def test_placestore_internal_access_fires(self):
        fixture = src(
            """
            def peek(store):
                return store._pages[0]
            """,
            module="repro.core.fixture",
        )
        result = run_rules([fixture], "RPL002")
        assert codes_of(result) == ["RPL002"]
        assert "IoStats" in result.violations[0].message


# -- RPL003: determinism ------------------------------------------------


class TestDeterminism:
    def test_random_import_fires(self):
        fixture = src("import random\n", module="repro.core.fixture")
        assert codes_of(run_rules([fixture], "RPL003")) == ["RPL003"]

    def test_wall_clock_fires(self):
        fixture = src(
            """
            import time

            def stamp():
                return time.time()
            """,
            module="repro.shard.fixture",
        )
        assert codes_of(run_rules([fixture], "RPL003")) == ["RPL003"]

    def test_set_iteration_fires(self):
        fixture = src(
            """
            def walk(cells: set[int]) -> list[int]:
                out = []
                for cell in cells:
                    out.append(cell)
                return out
            """,
            module="repro.index.fixture",
        )
        result = run_rules([fixture], "RPL003")
        assert codes_of(result) == ["RPL003"]

    def test_sorted_set_iteration_is_clean(self):
        fixture = src(
            """
            def walk(cells: set[int]) -> list[int]:
                out = []
                for cell in sorted(cells):
                    out.append(cell)
                return out
            """,
            module="repro.index.fixture",
        )
        assert codes_of(run_rules([fixture], "RPL003")) == []

    def test_rule_is_scoped_to_update_path_packages(self):
        fixture = src("import random\n", module="repro.workloads.fixture")
        assert codes_of(run_rules([fixture], "RPL003")) == []


# -- RPL004: shard thread-safety ----------------------------------------


class TestShardThreadSafety:
    def test_pooled_mutation_of_self_fires(self):
        fixture = src(
            """
            class Sharded:
                def drain_all(self, pool, busy):
                    return list(pool.map(self._drain, busy))

                def _drain(self, shard):
                    self.drained += 1
                    self.log.append(shard)
                    return shard
            """,
            module="repro.shard.fixture",
        )
        result = run_rules([fixture], "RPL004")
        assert codes_of(result) == ["RPL004", "RPL004"]
        assert "_drain" in result.violations[0].message

    def test_pooled_function_reading_self_is_clean(self):
        fixture = src(
            """
            class Sharded:
                def drain_all(self, pool, busy):
                    return list(pool.map(self._drain, busy))

                def _drain(self, shard):
                    work = shard.queue
                    shard.counter += 1
                    return len(work) + self.parallelism
            """,
            module="repro.shard.fixture",
        )
        assert codes_of(run_rules([fixture], "RPL004")) == []


# -- RPL005: deprecation hygiene ----------------------------------------


class TestDeprecationHygiene:
    def test_in_package_call_to_deprecated_surface_fires(self):
        fixture = src(
            """
            import warnings

            def run_stream(self, updates):
                warnings.warn("use process()", DeprecationWarning)

            def helper(monitor):
                return monitor.run_stream([])
            """,
            module="repro.core.fixture",
        )
        result = run_rules([fixture], "RPL005")
        assert codes_of(result) == ["RPL005"]
        assert "run_stream" in result.violations[0].message

    def test_delegation_inside_the_deprecated_body_is_clean(self):
        fixture = src(
            """
            import warnings

            def run_stream(self, updates):
                warnings.warn("use process()", DeprecationWarning)
                return run_stream(updates)
            """,
            module="repro.core.fixture",
        )
        assert codes_of(run_rules([fixture], "RPL005")) == []


# -- RPL006 / RPL007: hygiene -------------------------------------------


class TestHygiene:
    def test_mutable_default_fires(self):
        fixture = src("def f(xs=[]):\n    return xs\n")
        assert codes_of(run_rules([fixture], "RPL006")) == ["RPL006"]

    def test_factory_call_default_fires(self):
        fixture = src("def f(table=dict()):\n    return table\n")
        assert codes_of(run_rules([fixture], "RPL006")) == ["RPL006"]

    def test_none_default_is_clean(self):
        fixture = src("def f(xs=None):\n    return xs or []\n")
        assert codes_of(run_rules([fixture], "RPL006")) == []

    def test_shadowed_builtin_fires(self):
        fixture = src("def helper(list):\n    return list\n")
        assert codes_of(run_rules([fixture], "RPL007")) == ["RPL007"]

    def test_method_named_format_fires(self):
        fixture = src(
            """
            class Report:
                def format(self):
                    return ""
            """
        )
        assert codes_of(run_rules([fixture], "RPL007")) == ["RPL007"]


# -- RPL008: snapshot completeness --------------------------------------


class TestSnapshotCompleteness:
    def test_undeclared_mutation_fires(self):
        fixture = src(
            """
            class Scheme:
                STATE_FIELDS = ("units",)
                def _apply(self, update):
                    self.cache = {}
            """
        )
        result = run_rules([fixture], "RPL008")
        assert codes_of(result) == ["RPL008"]
        assert "self.cache" in result.violations[0].message

    def test_declared_and_transient_are_clean(self):
        fixture = src(
            """
            class Scheme:
                STATE_FIELDS = ("units", "counters")
                TRANSIENT_FIELDS = ("_dirty",)
                def _apply(self, update):
                    self.units[update.unit_id] = update.new_location
                    self.counters += 1
                    self._dirty = True
            """
        )
        assert codes_of(run_rules([fixture], "RPL008")) == []

    def test_init_is_exempt(self):
        fixture = src(
            """
            class Scheme:
                STATE_FIELDS = ("units",)
                def __init__(self):
                    self.cache = {}
            """
        )
        assert codes_of(run_rules([fixture], "RPL008")) == []

    def test_inherited_declaration_puts_subclass_in_scope(self):
        base = src(
            """
            class Base:
                STATE_FIELDS = ("units",)
            """,
            path="base.py",
        )
        leaf = src(
            """
            class Leaf(Base):
                def _apply(self, update):
                    self.sneaky = 1
            """,
            path="leaf.py",
        )
        result = run_rules([base, leaf], "RPL008")
        assert codes_of(result) == ["RPL008"]
        assert result.violations[0].path == "leaf.py"

    def test_subclass_fields_union_with_base(self):
        base = src(
            """
            class Base:
                STATE_FIELDS = ("units",)
            """,
            path="base.py",
        )
        leaf = src(
            """
            class Leaf(Base):
                STATE_FIELDS = ("extra",)
                def _apply(self, update):
                    self.units = 1
                    self.extra = 2
            """,
            path="leaf.py",
        )
        assert codes_of(run_rules([base, leaf], "RPL008")) == []

    def test_nested_targets_root_at_the_field(self):
        fixture = src(
            """
            class Scheme:
                STATE_FIELDS = ("table",)
                def _apply(self, update):
                    self.table[update.unit_id].count += 1
                    self.rogue[update.unit_id] = 1
            """
        )
        result = run_rules([fixture], "RPL008")
        assert codes_of(result) == ["RPL008"]
        assert "self.rogue" in result.violations[0].message

    def test_locals_and_other_receivers_ignored(self):
        fixture = src(
            """
            class Scheme:
                STATE_FIELDS = ("units",)
                def _apply(self, update, other):
                    local = 1
                    other.anything = 2
                    local, other.more = 3, 4
            """
        )
        assert codes_of(run_rules([fixture], "RPL008")) == []

    def test_undeclared_class_is_out_of_scope(self):
        fixture = src(
            """
            class Plain:
                def method(self):
                    self.anything = 1
            """
        )
        assert codes_of(run_rules([fixture], "RPL008")) == []


# -- RPL009: the burst kernels stay vectorised ---------------------------


class TestKernelsVectorised:
    def test_scalar_iterator_loop_fires(self):
        fixture = src(
            """
            def apply(moves):
                for pos in range(len(moves)):
                    handle(moves[pos])
            """,
            module="repro.core.kernels",
        )
        result = run_rules([fixture], "RPL009")
        assert codes_of(result) == ["RPL009"]
        assert "range" in result.violations[0].message

    def test_zip_enumerate_map_loops_fire(self):
        fixture = src(
            """
            def apply(xs, ys):
                for x, y in zip(xs, ys):
                    handle(x, y)
                for pos, x in enumerate(xs):
                    handle(pos, x)
                for x in map(float, xs):
                    handle(x)
            """,
            module="repro.core.kernels",
        )
        assert codes_of(run_rules([fixture], "RPL009")) == [
            "RPL009",
            "RPL009",
            "RPL009",
        ]

    def test_while_loop_fires(self):
        fixture = src(
            """
            def drain(queue):
                while queue:
                    queue.pop()
            """,
            module="repro.core.kernels",
        )
        assert codes_of(run_rules([fixture], "RPL009")) == ["RPL009"]

    def test_group_and_name_loops_are_clean(self):
        fixture = src(
            """
            def apply(groups, cells):
                for count, members in groups.items():
                    handle(count, members)
                for cell in cells:
                    handle(cell)
                matrix = [[w.x for w in chain] for chain in cells]
                total = sum(m.raw_count for m in cells)
                return matrix, total
            """,
            module="repro.core.kernels",
        )
        assert codes_of(run_rules([fixture], "RPL009")) == []

    def test_comprehensions_over_scalar_iterators_are_clean(self):
        # bounded setup idiom (LUT derivation, waypoint matrices) — only
        # for/while *statements* are the shape the rule polices.
        fixture = src(
            """
            PAIRS = [(code // 3, code % 3) for code in range(9)]
            def widths(xs, ys):
                return [x - y for x, y in zip(xs, ys)]
            """,
            module="repro.core.kernels",
        )
        assert codes_of(run_rules([fixture], "RPL009")) == []

    def test_other_core_modules_are_out_of_scope(self):
        fixture = src(
            """
            def apply(moves):
                for pos in range(len(moves)):
                    handle(moves[pos])
            """,
            module="repro.core.batch",
        )
        assert codes_of(run_rules([fixture], "RPL009")) == []

    def test_suppression_with_reason_silences(self):
        fixture = src(
            """
            def apply(xs, ys):
                for x, y in zip(  # reprolint: disable=RPL009 -- per-cell dict application is irreducible
                    xs, ys
                ):
                    handle(x, y)
            """,
            module="repro.core.kernels",
        )
        assert codes_of(run_rules([fixture], "RPL009")) == []


# -- RPL010: observability at pass boundaries ---------------------------


class TestObsPassBoundary:
    def test_runtime_obs_import_fires(self):
        fixture = src(
            """
            from repro.obs.spec import Observability

            def apply(monitor, moves):
                return monitor
            """,
            module="repro.core.kernels",
        )
        result = run_rules([fixture], "RPL010")
        assert codes_of(result) == ["RPL010"]
        assert "TYPE_CHECKING" in result.violations[0].message

    def test_type_checking_import_is_exempt(self):
        fixture = src(
            """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.obs.spec import Observability

            def apply(monitor, moves):
                return monitor
            """,
            module="repro.core.kernels",
        )
        assert codes_of(run_rules([fixture], "RPL010")) == []

    def test_span_inside_loop_fires(self):
        fixture = src(
            """
            def apply(monitor, moves):
                for move in moves:
                    with monitor.obs.tracer.span("kernel.move"):
                        handle(move)
            """,
            module="repro.core.kernels",
        )
        result = run_rules([fixture], "RPL010")
        assert codes_of(result) == ["RPL010"]
        assert "loop body" in result.violations[0].message

    def test_metric_inc_inside_loop_fires(self):
        fixture = src(
            """
            def apply(registry, cells):
                counter = registry.counter("ctup_cells_total")
                while cells:
                    cells.pop()
                    counter.inc()
            """,
            module="repro.core.kernels",
        )
        # only `counter.inc()` survives the chain check — the receiver
        # is not obs-rooted, so nothing fires; the registry-rooted form
        # must.
        assert codes_of(run_rules([fixture], "RPL010")) == []
        rooted = src(
            """
            def apply(registry, cells):
                while cells:
                    cells.pop()
                    registry.counter("ctup_cells_total").inc()
            """,
            module="repro.core.kernels",
        )
        assert codes_of(run_rules([rooted], "RPL010")) == ["RPL010"]

    def test_span_around_the_loop_is_clean(self):
        fixture = src(
            """
            def apply(monitor, moves):
                obs = monitor.obs
                with obs.tracer.span("kernel.burst", moves=len(moves)):
                    for move in moves:
                        handle(move)
            """,
            module="repro.core.kernels",
        )
        # the span call sits outside the for statement, so the loop-body
        # walk never reaches it.
        assert codes_of(run_rules([fixture], "RPL010")) == []

    def test_unrelated_set_calls_in_loops_are_clean(self):
        fixture = src(
            """
            def apply(cells):
                for cell in cells:
                    cell.bounds.set(0.0)
                    cell.flags.labels(kind="dark")
            """,
            module="repro.core.kernels",
        )
        assert codes_of(run_rules([fixture], "RPL010")) == []

    def test_other_modules_are_out_of_scope(self):
        fixture = src(
            """
            from repro.obs.spec import Observability

            def run(obs):
                for _ in range(3):
                    obs.tracer.record("x", "cat", 0.0, 1.0)
            """,
            module="repro.engine.fixture",
        )
        assert codes_of(run_rules([fixture], "RPL010")) == []


# -- RPLT01: the typing gate --------------------------------------------


class TestTypingGate:
    def test_unannotated_function_in_strict_module_fires(self):
        fixture = src(
            "def f(x):\n    return x\n", module="repro.core.fixture"
        )
        result = run_rules([fixture], "RPLT01")
        # the parameter and the return annotation are both missing.
        assert codes_of(result) == ["RPLT01", "RPLT01"]

    def test_fully_annotated_function_is_clean(self):
        fixture = src(
            """
            class Box:
                def get(self, key: int, *extra: object) -> int:
                    return key
            """,
            module="repro.core.fixture",
        )
        assert codes_of(run_rules([fixture], "RPLT01")) == []

    def test_non_strict_module_is_exempt(self):
        fixture = src(
            "def f(x):\n    return x\n", module="repro.bench.fixture"
        )
        assert codes_of(run_rules([fixture], "RPLT01")) == []

    def test_allowlist_is_configurable(self):
        fixture = src(
            "def f(x):\n    return x\n", module="repro.bench.fixture"
        )
        config = LintConfig(
            strict_typed_modules=("repro.bench",), select=("RPLT01",)
        )
        result = lint_sources([fixture], config)
        assert codes_of(result) == ["RPLT01", "RPLT01"]


# -- suppressions -------------------------------------------------------


class TestSuppressions:
    def test_trailing_suppression_silences_its_line(self):
        fixture = src(
            "def f(xs=[]):  # reprolint: disable=RPL006 -- fixture\n"
            "    return xs\n"
        )
        assert codes_of(run_rules([fixture], "RPL000", "RPL006")) == []

    def test_standalone_suppression_covers_the_next_line(self):
        fixture = src(
            "# reprolint: disable=RPL006 -- fixture\n"
            "def f(xs=[]):\n"
            "    return xs\n"
        )
        assert codes_of(run_rules([fixture], "RPL000", "RPL006")) == []

    def test_file_level_suppression_covers_everything(self):
        fixture = src(
            "# reprolint: disable-file=RPL006 -- fixture file\n"
            "def f(xs=[]):\n"
            "    return xs\n"
            "def g(ys={}):\n"
            "    return ys\n"
        )
        assert codes_of(run_rules([fixture], "RPL000", "RPL006")) == []

    def test_suppression_does_not_leak_to_other_rules(self):
        fixture = src(
            "def f(list=[]):  # reprolint: disable=RPL006 -- fixture\n"
            "    return list\n"
        )
        result = run_rules([fixture], "RPL000", "RPL006", "RPL007")
        assert codes_of(result) == ["RPL007"]

    def test_missing_reason_fires_rpl000(self):
        fixture = src(
            "def f(xs=[]):  # reprolint: disable=RPL006\n    return xs\n"
        )
        result = run_rules([fixture], "RPL000", "RPL006")
        assert "RPL000" in codes_of(result)

    def test_unknown_code_fires_rpl000(self):
        fixture = src("x = 1  # reprolint: disable=RPL999 -- because\n")
        result = run_rules([fixture], "RPL000")
        assert codes_of(result) == ["RPL000"]


# -- reporters ----------------------------------------------------------


class TestReporters:
    def _result(self):
        fixture = src("def f(xs=[]):\n    return xs\n", path="pkg/f.py")
        return run_rules([fixture], "RPL006")

    def test_json_schema(self):
        payload = json.loads(render_json(self._result()))
        assert payload["version"] == 1
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        (violation,) = payload["violations"]
        assert set(violation) == {"code", "message", "path", "line", "col"}
        assert violation["code"] == "RPL006"
        assert violation["path"] == "pkg/f.py"
        assert violation["line"] == 1

    def test_json_clean_tree(self):
        payload = json.loads(render_json(run_rules([], "RPL006")))
        assert payload["ok"] is True
        assert payload["violations"] == []

    def test_text_report(self):
        text = render_text(self._result())
        assert "pkg/f.py:1:" in text
        assert "RPL006" in text
        assert "1 violation(s) in 1 file(s)" in text


# -- the driver ---------------------------------------------------------


class TestDriver:
    def test_every_shipped_rule_is_registered(self):
        expected = {
            "RPL000",
            "RPL001",
            "RPL002",
            "RPL003",
            "RPL004",
            "RPL005",
            "RPL006",
            "RPL007",
            "RPL011",
            "RPL012",
            "RPL013",
            "RPL014",
            "RPLT01",
        }
        assert expected <= set(RULES)

    def test_module_name_resolution(self):
        path = REPO_ROOT / "src" / "repro" / "core" / "monitor.py"
        assert module_name_of(path) == "repro.core.monitor"

    def test_collect_files_skips_caches(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
        (tmp_path / "keep.py").write_text("x = 1\n")
        files = collect_files([tmp_path])
        assert [f.name for f in files] == ["keep.py"]

    def test_unparsable_file_is_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        result = lint_paths([bad])
        assert not result.ok
        assert result.violations == []
        assert [v.code for v in result.parse_errors] == ["RPLE00"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("X = 1\n")
        assert lint_main([str(clean)]) == 0
        capsys.readouterr()
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(xs=[]):\n    return xs\n")
        assert lint_main([str(dirty), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["violations"][0]["code"] == "RPL006"

    def test_cli_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "RPL001" in out and "RPLT01" in out


# -- the self-check -----------------------------------------------------


class TestShippedTree:
    def test_src_and_tests_lint_clean(self):
        result = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
        assert result.ok, render_text(result)

    def test_module_entry_point_runs(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src", "--format", "json"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={
                **__import__("os").environ,
                "PYTHONPATH": str(REPO_ROOT / "src"),
            },
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["ok"] is True

    def test_py_typed_marker_ships(self):
        assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()

    def test_pyproject_declares_the_strict_set(self):
        import tomllib

        with (REPO_ROOT / "pyproject.toml").open("rb") as handle:
            data = tomllib.load(handle)
        table = data["tool"]["reprolint"]
        assert "repro.core" in table["strict-typed-modules"]
        assert data["project"]["version"] == "1.6.0"
        assert "repro.obs" in table["strict-typed-modules"]


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-v"]))
