"""Workload assembly for the evaluation (§VI).

One :class:`Workload` bundles everything a monitor run needs: the place
set, the initial unit fleet, and a pre-recorded update stream. The
defaults mirror the paper: units move along a road network (Brinkhoff
style), places are uniform random, |U| = 150, |P| = 15 000.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.geometry import Rect
from repro.model import Place, Unit
from repro.roadnet import NetworkMobility, grid_network, radial_network, random_network
from repro.workloads import generate_places, record_stream
from repro.workloads.stream import UpdateStream

_NETWORK_BUILDERS = {
    "grid": grid_network,
    "radial": radial_network,
    "random": random_network,
}


@dataclass(frozen=True)
class Workload:
    """A fully materialised CTUP workload."""

    places: Sequence[Place]
    units: Sequence[Unit]
    stream: UpdateStream

    def prefix(self, updates: int) -> "Workload":
        """The same workload with a truncated stream."""
        return Workload(self.places, self.units, self.stream.prefix(updates))


def build_workload(
    n_units: int = 150,
    n_places: int = 15_000,
    protection_range: float = 0.1,
    stream_length: int = 2_000,
    seed: int = 0,
    network: str = "grid",
    placement: str = "uniform",
    speed: float = 0.004,
    report_distance: float = 0.004,
    space: Rect = Rect(0.0, 0.0, 1.0, 1.0),
) -> Workload:
    """Assemble a reproducible paper-style workload.

    Distinct sub-seeds derived from ``seed`` drive network construction,
    place generation and movement, so changing one knob (say |P|) does
    not reshuffle everything else.
    """
    try:
        build_network = _NETWORK_BUILDERS[network]
    except KeyError:
        raise ValueError(
            f"unknown network {network!r}; pick one of {sorted(_NETWORK_BUILDERS)}"
        ) from None
    net = build_network(seed=seed * 31 + 1)
    mobility = NetworkMobility(
        net,
        count=n_units,
        speed=speed,
        report_distance=report_distance,
        seed=seed * 31 + 2,
    )
    units = mobility.initial_units(protection_range)
    places = generate_places(
        n_places, seed=seed * 31 + 3, space=space, placement=placement
    )
    stream = record_stream(mobility, stream_length)
    return Workload(places=places, units=units, stream=stream)
