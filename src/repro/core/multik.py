"""Multiple concurrent CTUP queries over one monitor.

A deployment rarely has a single consumer: the dispatch desk wants the
top-5, the commissioner's dashboard the top-25, an analyst the top-100.
Running one monitor per query multiplies all maintenance work.

Following the K-slack idea of Yi et al. [25] (maintain a top-K view for
``K >= k`` and serve smaller queries from it), :class:`MultiQueryCTUP`
runs a single shared monitor at ``K = max(k_i)`` and answers each
registered query from a prefix of the shared result. This is exact:
``SK(k) <= SK(K)`` for ``k <= K``, so every place a smaller query needs
is maintained by the larger one, and the shared result is sorted with
deterministic tie-breaking.

Any scheme implementing the :class:`~repro.core.monitor.CTUPMonitor`
contract can back the shared view — pass ``monitor_factory`` (default
:class:`~repro.core.opt.OptCTUP`); only the contract methods are used.

Registering a query with ``k > K`` after initialization rebuilds the
inner monitor at the new maximum — the analogue of [25]'s "refill", paid
only when the registered maximum actually grows.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.core.config import CTUPConfig
from repro.core.metrics import UpdateReport
from repro.core.monitor import CTUPMonitor
from repro.core.opt import OptCTUP
from repro.model import LocationUpdate, Place, SafetyRecord, Unit

MonitorFactory = Callable[
    [CTUPConfig, Sequence[Place], Sequence[Unit]], CTUPMonitor
]


class MultiQueryCTUP:
    """One shared CTUP monitor serving many registered top-k queries."""

    def __init__(
        self,
        config: CTUPConfig,
        places: Sequence[Place],
        units: Iterable[Unit],
        monitor_factory: MonitorFactory = OptCTUP,
    ) -> None:
        self._config = config
        self._places = list(places)
        self._initial_units = [
            Unit(u.unit_id, u.location, u.protection_range) for u in units
        ]
        self._factory = monitor_factory
        self._queries: dict[str, int] = {}
        self._monitor: CTUPMonitor | None = None
        self._rebuilds = 0

    # -- query registry ---------------------------------------------------

    def register(self, query_id: str, k: int) -> None:
        """Add (or resize) a standing top-k query.

        Growing the registered maximum after initialization rebuilds the
        shared monitor from the current unit positions.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        self._queries[query_id] = k
        if self._monitor is not None and k > self._monitor.config.k:
            self._rebuild()

    def unregister(self, query_id: str) -> None:
        """Drop a standing query (the shared K is kept — shrinking it
        would discard maintained state that a future register() could
        need again; it is slack, not waste)."""
        try:
            del self._queries[query_id]
        except KeyError:
            raise KeyError(f"no such query: {query_id}") from None

    @property
    def queries(self) -> dict[str, int]:
        """Registered query ids and their k values."""
        return dict(self._queries)

    @property
    def shared_k(self) -> int:
        """The K the inner monitor currently maintains."""
        if self._monitor is None:
            raise RuntimeError("initialize() has not run yet")
        return self._monitor.config.k

    @property
    def rebuilds(self) -> int:
        """How many times a growing k forced a rebuild."""
        return self._rebuilds

    # -- lifecycle -----------------------------------------------------------

    def initialize(self) -> None:
        """Build the shared monitor at K = max registered k."""
        if self._monitor is not None:
            raise RuntimeError("initialize() may run only once")
        if not self._queries:
            raise RuntimeError("register at least one query first")
        self._monitor = self._build(max(self._queries.values()))

    def _build(self, k: int) -> CTUPMonitor:
        monitor = self._factory(
            self._config.replace(k=k), self._places, self._current_units()
        )
        monitor.initialize()
        return monitor

    def _current_units(self) -> list[Unit]:
        if self._monitor is None:
            return self._initial_units
        return [
            Unit(u.unit_id, u.location, u.protection_range)
            for u in self._monitor.units
        ]

    def _rebuild(self) -> None:
        self._monitor = self._build(max(self._queries.values()))
        self._rebuilds += 1

    def process(self, update: LocationUpdate) -> UpdateReport:
        """Feed one location update to the shared monitor."""
        if self._monitor is None:
            raise RuntimeError("initialize() must be called before processing")
        return self._monitor.process(update)

    def apply_update(self, update: LocationUpdate) -> None:
        """Maintain phase of the shared monitor (for burst ingest)."""
        if self._monitor is None:
            raise RuntimeError("initialize() must be called before processing")
        self._monitor.apply_update(update)

    def refresh(self) -> int:
        """Access phase of the shared monitor (for burst ingest)."""
        if self._monitor is None:
            raise RuntimeError("initialize() must be called before processing")
        return self._monitor.refresh()

    # -- answers -------------------------------------------------------------

    def top_k(self, query_id: str) -> list[SafetyRecord]:
        """The current answer of one registered query."""
        if self._monitor is None:
            raise RuntimeError("initialize() must be called first")
        try:
            k = self._queries[query_id]
        except KeyError:
            raise KeyError(f"no such query: {query_id}") from None
        return self._monitor.top_k()[:k]

    def sk(self, query_id: str) -> float:
        """The k-th safety of one registered query."""
        records = self.top_k(query_id)
        k = self._queries[query_id]
        if len(records) < k:
            return float("inf")
        return records[-1].safety

    @property
    def monitor(self) -> CTUPMonitor:
        """The shared inner monitor (for counters/diagnostics)."""
        if self._monitor is None:
            raise RuntimeError("initialize() has not run yet")
        return self._monitor
