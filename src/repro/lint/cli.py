"""The ``python -m repro.lint`` / ``ctup lint`` command line.

Exit code 0 means the tree is clean (including the RPLT01 typing gate
for the strict module set); any violation or unparsable file exits 1.
``--mypy`` additionally shells out to mypy when one is installed —
absence is reported as a skip, not a pass.

Incremental workflow flags:

* ``--cache [PATH]`` — keep/reuse the incremental analysis cache (a
  warm run re-lints an unchanged tree without re-parsing a single
  file);
* ``--changed [REF]`` — only *report* files that differ from the git
  baseline (default ``HEAD``) plus untracked files; the project
  pre-pass still covers the whole tree so cross-file rules stay exact;
* ``--jobs N`` — fan the rule pass out over N worker threads
  (``0`` = let the pool pick);
* ``--format sarif`` — SARIF 2.1.0 for code-scanning uploads.
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys
from typing import Sequence

from repro.lint import rules as _rules  # noqa: F401  (populate registry)
from repro.lint.cache import DEFAULT_CACHE_PATH, LintCache
from repro.lint.config import load_config
from repro.lint.engine import collect_files, lint_paths
from repro.lint.report import (
    render_json,
    render_rules,
    render_sarif,
    render_text,
)
from repro.lint.typing_gate import run_mypy


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "repo-aware static analysis: scheme contracts, counter "
            "discipline, determinism, thread-safety, deprecation "
            "hygiene, flow-sensitive safety rules and the strict "
            "typing gate"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rule table and exit",
    )
    parser.add_argument(
        "--mypy",
        action="store_true",
        help="additionally run mypy (skipped with a notice if not installed)",
    )
    parser.add_argument(
        "--cache",
        nargs="?",
        const=DEFAULT_CACHE_PATH,
        default=None,
        metavar="PATH",
        help=(
            "use the incremental analysis cache at PATH (default "
            f"{DEFAULT_CACHE_PATH} when the flag is given bare)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="rule-pass worker threads (0 = auto; default serial)",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help=(
            "report only files differing from the git baseline REF "
            "(default HEAD) plus untracked files; the project pre-pass "
            "still sees the whole tree"
        ),
    )
    return parser


def _git_changed_files(baseline: str) -> set[str] | None:
    """Paths changed vs ``baseline`` plus untracked files, or ``None``
    when git is unavailable (then everything is reported)."""
    changed: set[str] = set()
    for argv in (
        ["git", "diff", "--name-only", baseline, "--", "*.py"],
        ["git", "ls-files", "--others", "--exclude-standard", "--", "*.py"],
    ):
        try:
            proc = subprocess.run(
                argv, capture_output=True, text=True, timeout=30, check=False
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            print(
                f"reprolint: --changed: {' '.join(argv[:2])} failed: "
                f"{proc.stderr.strip() or 'unknown error'}",
                file=sys.stderr,
            )
            return None
        changed.update(
            line.strip() for line in proc.stdout.splitlines() if line.strip()
        )
    return changed


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rules())
        return 0
    config = load_config(pathlib.Path(args.paths[0]))
    cache = LintCache(args.cache) if args.cache is not None else None
    only: set[str] | None = None
    if args.changed is not None:
        changed = _git_changed_files(args.changed)
        if changed is not None:
            collected = {str(path) for path in collect_files(args.paths)}
            only = {
                str(pathlib.Path(item))
                for item in changed
                if str(pathlib.Path(item)) in collected
            }
    result = lint_paths(
        args.paths, config, cache=cache, jobs=args.jobs, only=only
    )
    if args.output_format == "json":
        print(render_json(result))
    elif args.output_format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result))
    exit_code = 0 if result.ok else 1
    if args.mypy:
        mypy_code, output = run_mypy([str(p) for p in args.paths])
        if mypy_code is None:
            print(output, file=sys.stderr)
        else:
            if output.strip():
                print(output)
            exit_code = exit_code or (0 if mypy_code == 0 else 1)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
