"""The turnkey simulation shell."""

import pytest

from repro.core import BasicCTUP, CTUPConfig, OptCTUP
from repro.sim import Simulation
from repro.workloads import RandomWalkMobility, generate_places, generate_units


@pytest.fixture
def live_sim(small_config, small_places, small_units):
    monitor = OptCTUP(small_config, small_places, small_units)
    mobility = RandomWalkMobility(small_units, step=0.03, seed=77)
    return Simulation(monitor, mobility, audit_every=50)


class TestRun:
    def test_run_produces_outcome(self, live_sim):
        outcome = live_sim.run(updates=120)
        assert outcome.updates == 120
        assert outcome.clean, outcome.audit_problems[:3]
        assert len(outcome.final_topk) == live_sim.monitor.config.k
        assert outcome.final_sk == outcome.final_topk[-1].safety
        assert outcome.summary.updates == 120

    def test_changes_collected(self, live_sim):
        outcome = live_sim.run(updates=150)
        assert outcome.changes == live_sim.changes
        # a 150-update random walk always moves the result at least once.
        assert outcome.changes

    def test_resume_accumulates(self, live_sim):
        first = live_sim.run(updates=40)
        second = live_sim.run(updates=40)
        assert first.updates == 40
        assert second.updates == 40
        assert second.summary.updates == 80  # the timeline keeps growing

    def test_invalid_updates(self, live_sim):
        with pytest.raises(ValueError):
            live_sim.run(updates=0)

    def test_negative_audit_every(self, small_config, small_places, small_units):
        monitor = OptCTUP(small_config, small_places, small_units)
        mobility = RandomWalkMobility(small_units, step=0.03, seed=1)
        with pytest.raises(ValueError):
            Simulation(monitor, mobility, audit_every=-1)

    def test_works_with_basic_monitor(
        self, small_config, small_places, small_units
    ):
        monitor = BasicCTUP(small_config, small_places, small_units)
        mobility = RandomWalkMobility(small_units, step=0.03, seed=5)
        sim = Simulation(monitor, mobility, audit_every=60)
        outcome = sim.run(updates=60)
        assert outcome.clean


class TestFromScenario:
    @pytest.mark.parametrize("name", ["downtown", "suburbia"])
    def test_scenario_simulation(self, name):
        sim = Simulation.from_scenario(
            name, k=5, n_places=600, n_units=15, seed=4, audit_every=80
        )
        outcome = sim.run(updates=160)
        assert outcome.clean
        assert outcome.updates == 160

    def test_granularity_auto_tuned(self):
        sim = Simulation.from_scenario(
            "downtown", n_places=600, n_units=10, seed=1
        )
        # 600 places at range 0.1: the population cap keeps it below 10.
        assert sim.monitor.config.granularity < 10

    def test_custom_monitor_factory(self):
        sim = Simulation.from_scenario(
            "suburbia",
            k=4,
            n_places=400,
            n_units=10,
            seed=2,
            monitor_factory=BasicCTUP,
        )
        assert isinstance(sim.monitor, BasicCTUP)
        assert sim.run(updates=50).updates == 50
