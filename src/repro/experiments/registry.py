"""Experiment descriptors and the lookup table."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bench.reporting import format_table


@dataclass
class ExperimentResult:
    """The regenerated series of one paper artefact."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list]
    notes: list[str] = field(default_factory=list)

    def to_text(self) -> str:
        """The result as an aligned table plus notes."""
        parts = [
            format_table(self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}")
        ]
        for note in self.notes:
            parts.append(f"  note: {note}")
        return "\n".join(parts)


Runner = Callable[..., ExperimentResult]


@dataclass(frozen=True)
class Experiment:
    """A registered, runnable reproduction of one paper artefact."""

    experiment_id: str
    title: str
    paper_ref: str  # e.g. "Fig. 4" / "Table III"
    kind: str  # "figure" | "table" | "ablation"
    expected_shape: str  # what EXPERIMENTS.md verifies
    runner: Runner

    def run(self, **kwargs) -> ExperimentResult:
        return self.runner(**kwargs)


_REGISTRY: dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    """Add an experiment to the registry (import-time side effect)."""
    if experiment.experiment_id in _REGISTRY:
        raise ValueError(f"duplicate experiment id {experiment.experiment_id}")
    _REGISTRY[experiment.experiment_id] = experiment
    return experiment


def get_experiment(experiment_id: str) -> Experiment:
    """Look an experiment up by id (``fig4``, ``table3``, ...)."""
    _ensure_loaded()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(_REGISTRY)}"
        ) from None


def all_experiments() -> list[Experiment]:
    """All registered experiments, figures first, in paper order."""
    _ensure_loaded()
    return sorted(
        _REGISTRY.values(),
        key=lambda e: (e.kind != "table", e.kind == "ablation", e.experiment_id),
    )


def _ensure_loaded() -> None:
    """Import the modules whose import registers the experiments."""
    from repro.experiments import ablations, figures  # noqa: F401
