"""repro — a reproduction of "On Monitoring the top-k Unsafe Places".

Zhang, Du and Hu (ICDE 2008) define the Continuous Top-k Unsafe Places
(CTUP) query: as protecting units (police cars) stream location updates,
continuously report the k places whose safety — actual protection minus
required protection — is smallest. This package implements the paper's
two schemes (BasicCTUP, OptCTUP with the Decrease Once Optimization),
the naïve baseline, the substrates they rest on (grid partition,
two-level storage, network-based moving-object workload) and the full
benchmark harness reproducing the paper's evaluation.

Quickstart::

    from repro import CTUPConfig, OptCTUP, generate_places, generate_units
    from repro.workloads import RandomWalkMobility, record_stream

    config = CTUPConfig(k=10)
    places = generate_places(5000, seed=1)
    units = generate_units(100, config.protection_range, seed=2)
    monitor = OptCTUP(config, places, units)
    monitor.initialize()
    for update in record_stream(RandomWalkMobility(units, seed=3), 1000):
        monitor.process(update)
        print(monitor.top_k()[0])
"""

from repro.core import (
    BasicCTUP,
    ChangeTracker,
    CTUPConfig,
    CTUPMonitor,
    NaiveCTUP,
    OptCTUP,
    TopKChange,
)
from repro.geometry import Circle, Point, Rect
from repro.model import LocationUpdate, Place, SafetyRecord, Unit
from repro.validate import Oracle
from repro.workloads import generate_places, generate_units

__version__ = "1.0.0"

__all__ = [
    "CTUPConfig",
    "CTUPMonitor",
    "NaiveCTUP",
    "BasicCTUP",
    "OptCTUP",
    "ChangeTracker",
    "TopKChange",
    "Place",
    "Unit",
    "LocationUpdate",
    "SafetyRecord",
    "Point",
    "Rect",
    "Circle",
    "Oracle",
    "generate_places",
    "generate_units",
    "__version__",
]
