"""Cross-cutting property tests on the substrates.

These target the bookkeeping-heavy structures whose bugs would corrupt
monitors silently: the swap-remove/compaction paths of the maintained
table, the page partitioning of the place store, and the grid's linear
encoding — each checked against a trivial model under random operation
sequences.
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.topk import MaintainedPlaces
from repro.geometry import Point, Rect
from repro.grid import GridPartition
from repro.index import RTree
from repro.model import Place
from repro.storage import PlaceStore
from repro.workloads import generate_places


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000), ops=st.integers(20, 150))
def test_maintained_table_matches_dict_model(seed, ops):
    """Random insert/remove/move sequences agree with a plain dict."""
    rng = random.Random(seed)
    table = MaintainedPlaces()
    model: dict[int, float] = {}
    next_id = 0
    for _ in range(ops):
        action = rng.random()
        if action < 0.5 or not model:
            place = Place(next_id, Point(rng.random(), rng.random()), 0)
            safety = float(rng.randint(-10, 10))
            cell = rng.randrange(4)
            table.insert(place, safety, cell)
            model[next_id] = safety
            next_id += 1
        elif action < 0.75:
            victim = rng.choice(list(model))
            table.remove_id(victim)
            del model[victim]
        elif action < 0.9 and len(model) > 3:
            # bulk removal through rows_of_cell / remove_rows.
            cell = rng.randrange(4)
            rows = table.rows_of_cell(cell)
            ids = [int(table._ids[r]) for r in rows]
            table.remove_rows(rows.tolist())
            for pid in ids:
                del model[pid]
        else:
            old = Point(rng.random(), rng.random())
            new = Point(rng.random(), rng.random())
            # mirror the move on the model.
            for pid in model:
                loc = table.place_of(pid).location
                was = old.squared_distance_to(loc) <= 0.04
                now = new.squared_distance_to(loc) <= 0.04
                model[pid] += int(now) - int(was)
            table.apply_unit_move(old, new, radius=0.2)
        assert table.safeties_snapshot() == model
        if model:
            assert table.min_safety() == min(model.values())
            assert table.sk(1) == min(model.values())
        else:
            assert table.min_safety() == math.inf


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 300),
    seed=st.integers(0, 1000),
    granularity=st.integers(1, 9),
    page=st.integers(1, 32),
)
def test_place_store_partitions_exactly(n, seed, granularity, page):
    """read_cell over all occupied cells is a partition of the input."""
    grid = GridPartition.unit_square(granularity)
    places = generate_places(n, seed=seed)
    store = PlaceStore(grid, places, page_capacity=page)
    seen: set[int] = set()
    for cell in store.occupied_cells():
        loaded = store.read_cell(cell)
        assert len(loaded) == store.cell_place_count(cell)
        for place in loaded:
            assert grid.cell_of(place.location) == cell
            assert place.place_id not in seen
            seen.add(place.place_id)
    assert seen == {p.place_id for p in places}


@settings(max_examples=60, deadline=None)
@given(nx=st.integers(1, 15), ny=st.integers(1, 15))
def test_grid_linear_encoding_is_a_bijection(nx, ny):
    grid = GridPartition(Rect(0.0, 0.0, 1.0, 1.0), nx, ny)
    codes = [grid.linear(cell) for cell in grid.all_cells()]
    assert sorted(codes) == list(range(nx * ny))
    for cell in grid.all_cells():
        assert grid.from_linear(grid.linear(cell)) == cell


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 400),
    seed=st.integers(0, 500),
    fanout=st.integers(2, 24),
)
def test_rtree_structural_invariants_all_fanouts(n, seed, fanout):
    places = generate_places(n, seed=seed)
    tree = RTree(places, fanout=fanout)
    assert len(tree) == n
    total = 0
    for node in tree.iter_nodes():
        if node.is_leaf:
            total += len(node.places)
            assert 1 <= len(node.places) <= fanout
            for place in node.places:
                assert node.mbr.contains_point(place.location)
        else:
            assert 1 <= len(node.children) <= fanout
            for child in node.children:
                assert node.mbr.contains_rect(child.mbr)
                assert node.max_required >= child.max_required
    assert total == n
