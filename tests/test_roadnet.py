"""Road networks and network-based moving objects."""

import networkx as nx
import pytest

from repro.geometry import Point, Rect
from repro.roadnet import (
    NetworkMobility,
    RoadNetwork,
    grid_network,
    radial_network,
    random_network,
)
from repro.roadnet.network import SPEED_OF_CLASS, network_from_points


def tiny_network() -> RoadNetwork:
    # a 2x2 square with one diagonal.
    points = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
    edges = [(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0), (0, 2, 1)]
    return network_from_points(points, edges)


class TestRoadNetwork:
    def test_requires_connected(self):
        g = nx.Graph()
        g.add_node(0, point=Point(0, 0))
        g.add_node(1, point=Point(1, 1))
        with pytest.raises(ValueError):
            RoadNetwork(g)

    def test_requires_points(self):
        g = nx.Graph()
        g.add_node(0)
        with pytest.raises(ValueError):
            RoadNetwork(g)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RoadNetwork(nx.Graph())

    def test_edge_lengths_computed(self):
        net = tiny_network()
        assert net.edge_length(0, 1) == pytest.approx(1.0)
        assert net.edge_length(0, 2) == pytest.approx(2 ** 0.5)

    def test_edge_speed_by_class(self):
        net = tiny_network()
        assert net.edge_speed(0, 1) == SPEED_OF_CLASS[0]
        assert net.edge_speed(0, 2) == SPEED_OF_CLASS[1]

    def test_bad_road_class_rejected(self):
        points = [Point(0, 0), Point(1, 0)]
        with pytest.raises(ValueError):
            network_from_points(points, [(0, 1, 99)])

    def test_shortest_path_prefers_fast_roads(self):
        # 0 -> 2 directly on a class-1 road (sqrt2/2 time) beats the
        # two class-0 edges (2 time units).
        net = tiny_network()
        assert net.shortest_path(0, 2) == [0, 2]

    def test_bounding_rect(self):
        rect = tiny_network().bounding_rect()
        assert (rect.xmin, rect.ymin, rect.xmax, rect.ymax) == (0, 0, 1, 1)

    def test_normalized_to(self):
        net = tiny_network().normalized_to(Rect(0.0, 0.0, 0.5, 0.5))
        rect = net.bounding_rect()
        assert rect.xmax == pytest.approx(0.5)
        assert rect.ymax == pytest.approx(0.5)

    def test_random_node_member(self):
        import random

        net = tiny_network()
        node = net.random_node(random.Random(0))
        assert node in net.graph.nodes


class TestGenerators:
    @pytest.mark.parametrize(
        "builder", [grid_network, radial_network, random_network]
    )
    def test_generators_connected_and_normalised(self, builder):
        net = builder(seed=3)
        assert nx.is_connected(net.graph)
        space = Rect(0.0, 0.0, 1.0, 1.0)
        for node in net.graph.nodes:
            assert space.contains_point(net.node_point(node))

    @pytest.mark.parametrize(
        "builder", [grid_network, radial_network, random_network]
    )
    def test_generators_deterministic(self, builder):
        a = builder(seed=5)
        b = builder(seed=5)
        assert sorted(map(str, a.graph.edges)) == sorted(map(str, b.graph.edges))

    def test_grid_size_bounds(self):
        with pytest.raises(ValueError):
            grid_network(rows=1, cols=5)

    def test_radial_bounds(self):
        with pytest.raises(ValueError):
            radial_network(rings=0)

    def test_random_bounds(self):
        with pytest.raises(ValueError):
            random_network(nodes=1)

    def test_grid_has_multiple_road_classes(self):
        net = grid_network(seed=1)
        classes = {d["road_class"] for _, _, d in net.graph.edges(data=True)}
        assert len(classes) >= 2


class TestNetworkMobility:
    def test_initial_units(self):
        mobility = NetworkMobility(grid_network(seed=1), count=10, seed=2)
        units = mobility.initial_units(0.1)
        assert len(units) == 10
        assert all(u.protection_range == 0.1 for u in units)

    def test_updates_form_consistent_chain(self):
        mobility = NetworkMobility(grid_network(seed=1), count=20, seed=2)
        units = mobility.initial_units(0.1)
        last = {u.unit_id: u.location for u in units}
        for update in mobility.updates(500):
            assert update.old_location == last[update.unit_id]
            last[update.unit_id] = update.new_location

    def test_updates_respect_report_distance(self):
        mobility = NetworkMobility(
            grid_network(seed=1),
            count=10,
            speed=0.01,
            report_distance=0.02,
            seed=2,
        )
        for update in mobility.updates(200):
            assert update.displacement() >= 0.02 - 1e-9

    def test_positions_stay_in_space(self):
        mobility = NetworkMobility(random_network(seed=4), count=25, seed=5)
        space = Rect(0.0, 0.0, 1.0, 1.0)
        for update in mobility.updates(500):
            assert space.contains_point(update.new_location)

    def test_objects_travel(self):
        mobility = NetworkMobility(grid_network(seed=1), count=5, seed=3)
        start = {o.unit_id: o.position for o in mobility.objects}
        list(mobility.updates(300))
        moved = sum(
            1
            for o in mobility.objects
            if o.position.distance_to(start[o.unit_id]) > 0.05
        )
        assert moved >= 3

    def test_deterministic(self):
        a = NetworkMobility(grid_network(seed=1), count=5, seed=3)
        b = NetworkMobility(grid_network(seed=1), count=5, seed=3)
        assert list(a.updates(100)) == list(b.updates(100))

    def test_invalid_parameters(self):
        net = grid_network(seed=1)
        with pytest.raises(ValueError):
            NetworkMobility(net, count=0)
        with pytest.raises(ValueError):
            NetworkMobility(net, count=1, speed=0)
        with pytest.raises(ValueError):
            NetworkMobility(net, count=1, report_distance=-1)

    def test_timestamps_monotone(self):
        mobility = NetworkMobility(grid_network(seed=1), count=5, seed=3)
        times = [u.timestamp for u in mobility.updates(100)]
        assert times == sorted(times)
