"""Reconfiguration benchmark: incremental control events vs rebuild.

Runs the OptCTUP scheme over a pinned-seed workload, warms it with the
update stream, then applies a batch of ``PlaceAdded`` control events
twice — once in ``incremental`` mode (the scheme splices the new place
into its maintained state) and once in ``rebuild`` mode (every event
tears the derived state down and rebuilds it from the catalog).

Both runs must land on the *same* world: the final SK and top-k are
asserted identical, so the speedup is never bought with a wrong answer.
The headline number is ``speedup_x = rebuild_seconds /
incremental_seconds``; the bench hard-fails when it drops below
:data:`MIN_SPEEDUP` on the smoke profile (|P| = 2000) — incremental
application is the tentpole of the control plane, and a 5x margin is
the floor, not the target.

The work counters (cells accessed, places loaded, page reads — summed
over the :class:`~repro.control.EpochReport` receipts) are deterministic
for a pinned workload and guarded tightly; wall clocks are advisory.

CLI (also wired into CI as a smoke job)::

    python benchmarks/bench_reconfig.py --smoke --check   # fast CI guard
    python benchmarks/bench_reconfig.py --write-baseline  # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

from repro.api import make_monitor
from repro.bench import build_workload
from repro.bench.guard import (
    SCHEMA_VERSION,
    compare,
    load_baseline,
    write_baseline,
)
from repro.control import PlaceAdded
from repro.core import CTUPConfig
from repro.model import Place, Point

BASELINE_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_reconfig.json"
)

BENCH_NAME = "reconfig"
SCHEME = "opt"

#: execution modes: how apply_control handles each event.
MODES = ("incremental", "rebuild")

#: the floor, asserted outright on the smoke profile (|P| = 2000).
MIN_SPEEDUP = 5.0

COUNTER_METRICS = (
    "cells_accessed",
    "places_loaded",
    "page_reads",
    "rebuilds",
    "epoch",
    "final_sk",
)
WALL_METRICS = ("apply_seconds",)

#: pinned workloads; these parameters are part of the baseline's
#: identity — changing them is a structural break, not a regression.
PROFILES = {
    "smoke": dict(n_units=200, n_places=2_000, stream_length=30, seed=7),
    "default": dict(n_units=400, n_places=8_000, stream_length=60, seed=7),
}
K = 5
N_ADDS = 24


def machine_metadata() -> dict:
    import platform

    import numpy as np

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "numpy": np.__version__,
    }


def _added_places(workload, seed: int) -> list[Place]:
    """The pinned batch of new places, ids above the existing range."""
    rng = random.Random(seed * 31 + 9)
    base = max(p.place_id for p in workload.places) + 1
    return [
        Place(
            base + i,
            Point(rng.random() * 0.999, rng.random() * 0.999),
            rng.randint(1, 5),
        )
        for i in range(N_ADDS)
    ]


def _warm_monitor(workload, config: CTUPConfig):
    monitor = make_monitor(
        SCHEME, places=workload.places, units=workload.units, config=config
    )
    monitor.initialize()
    for update in workload.stream:
        monitor.process(update)
    return monitor


def _run_mode(workload, config: CTUPConfig, mode: str, adds) -> dict:
    monitor = _warm_monitor(workload, config)
    reports = []
    start = time.perf_counter()
    for place in adds:
        reports.append(monitor.apply_control(PlaceAdded(place), mode=mode))
    apply_seconds = time.perf_counter() - start
    sk = monitor.sk()
    rows = [(r.place_id, r.safety) for r in monitor.top_k()]
    return {
        "apply_seconds": round(apply_seconds, 4),
        "cells_accessed": sum(r.cells_accessed for r in reports),
        "places_loaded": sum(r.places_loaded for r in reports),
        "page_reads": sum(r.page_reads for r in reports),
        "rebuilds": sum(1 for r in reports if r.rebuilt),
        "epoch": monitor.epoch,
        "final_sk": sk,
        # the guaranteed part of the answer (monitor.top_k's contract):
        # SK, every place strictly below it, and the safety multiset —
        # which tied place fills the last slot is scheme-ambiguous.
        "_answer": (
            sk,
            [t for t in rows if t[1] < sk],
            sorted(s for _, s in rows),
        ),
    }


def run_profile(name: str) -> dict:
    params = PROFILES[name]
    workload = build_workload(**params)
    config = CTUPConfig(k=K)
    adds = _added_places(workload, params["seed"])
    modes = {
        mode: _run_mode(workload, config, mode, adds) for mode in MODES
    }
    incremental, rebuild = modes["incremental"], modes["rebuild"]
    # equivalence first: a fast wrong answer is not a speedup.
    if incremental["_answer"] != rebuild["_answer"]:
        raise AssertionError(
            f"{name}: incremental and rebuild answers diverge"
        )
    if incremental["final_sk"] != rebuild["final_sk"]:
        raise AssertionError(
            f"{name}: sk diverges: {incremental['final_sk']} vs "
            f"{rebuild['final_sk']}"
        )
    for metrics in modes.values():
        del metrics["_answer"]
    speedup = rebuild["apply_seconds"] / max(
        incremental["apply_seconds"], 1e-9
    )
    return {
        "workload": {**params, "k": K, "n_adds": N_ADDS},
        "speedup_x": round(speedup, 1),
        "schemes": {SCHEME: modes},
    }


def run_bench(profiles: list[str]) -> dict:
    return {
        "bench": BENCH_NAME,
        "version": SCHEMA_VERSION,
        "machine": machine_metadata(),
        "profiles": {name: run_profile(name) for name in profiles},
    }


def _summary_lines(doc: dict) -> list[str]:
    lines = []
    for profile, prof in doc["profiles"].items():
        modes = prof["schemes"][SCHEME]
        inc, reb = modes["incremental"], modes["rebuild"]
        lines.append(
            f"{profile:8} {N_ADDS} adds: incremental "
            f"{inc['apply_seconds'] * 1e3:7.1f} ms "
            f"({inc['rebuilds']} rebuilds), rebuild "
            f"{reb['apply_seconds'] * 1e3:7.1f} ms "
            f"({reb['rebuilds']} rebuilds) -> {prof['speedup_x']:.1f}x"
        )
    return lines


def _assert_speedup(doc: dict) -> None:
    smoke = doc["profiles"].get("smoke")
    if smoke and smoke["speedup_x"] < MIN_SPEEDUP:
        raise AssertionError(
            f"incremental place-add speedup {smoke['speedup_x']:.1f}x is "
            f"below the {MIN_SPEEDUP:.0f}x floor at |P| = "
            f"{smoke['workload']['n_places']}"
        )


def _guard(baseline: dict, doc: dict) -> "GuardReport":
    return compare(
        baseline,
        doc,
        bench=BENCH_NAME,
        counter_metrics=COUNTER_METRICS,
        wall_metrics=WALL_METRICS,
    )


# -- pytest entry point (the CI smoke job runs this file directly) --------


def test_reconfig_smoke_matches_baseline():
    doc = run_bench(["smoke"])
    modes = doc["profiles"]["smoke"]["schemes"][SCHEME]
    assert modes["incremental"]["rebuilds"] == 0
    assert modes["rebuild"]["rebuilds"] == N_ADDS
    assert modes["incremental"]["epoch"] == N_ADDS
    _assert_speedup(doc)
    report = _guard(load_baseline(BASELINE_PATH), doc)
    assert report.ok(), report.render()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="run only the fast smoke profile"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline "
        "(exit 1 on structural mismatch)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="with --check: also fail on counter regressions",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=f"write the results to {BASELINE_PATH.name}",
    )
    args = parser.parse_args(argv)

    profiles = ["smoke"] if args.smoke else ["smoke", "default"]
    doc = run_bench(profiles)
    print(json.dumps(doc["machine"], sort_keys=True))
    for line in _summary_lines(doc):
        print(line)
    _assert_speedup(doc)

    status = 0
    if args.check:
        try:
            baseline = load_baseline(BASELINE_PATH)
        except FileNotFoundError:
            print(f"no baseline at {BASELINE_PATH}; run --write-baseline first")
            return 1
        report = _guard(baseline, doc)
        print(report.render())
        if not report.ok(strict=args.strict):
            status = 1
    if args.write_baseline:
        write_baseline(BASELINE_PATH, doc)
        print(f"baseline written to {BASELINE_PATH}")
    return status


if __name__ == "__main__":
    sys.exit(main())
