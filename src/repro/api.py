"""The one front door to the reproduction.

Examples, benchmarks and deployments used to hand-wire scheme
constructors, :class:`~repro.engine.session.MonitorSession`,
``run_stream`` loops and ``ChangeTracker`` instances, each slightly
differently. This facade gives them a single stable surface:

>>> from repro.api import ObsSpec, ShardSpec, open_session
>>> session = open_session(
...     "opt",
...     places=places,
...     units=units,
...     config=CTUPConfig(k=10),
...     shard=ShardSpec(shards=4, parallelism=2),
...     obs=ObsSpec(metrics=True),
... )
>>> session.start()
>>> for update in stream:
...     session.feed(update)
>>> session.flush()
>>> session.monitor.top_k()

Options group by concern into small spec dataclasses rather than flat
keyword sprawl: :class:`ShardSpec` (how the place set splits across
shard monitors), :class:`DurabilitySpec` (journal + checkpoint
directory, snapshot cadence, resume), and
:class:`~repro.obs.ObsSpec` (metrics, tracing, the ``/metrics``
endpoint). The pre-1.4 flat kwargs (``shards=``, ``checkpoint_dir=``,
…) still work through a shim that emits ``DeprecationWarning``.

:func:`make_monitor` builds any registered scheme — including the
sharded wrapper (``"sharded"``, or any scheme plus a ``shard=`` spec) —
and :func:`open_session` wraps the monitor in a configured session, the
one supported way to drive a stream (batching, change tracking, audits,
hooks and observability included).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.core.basic import BasicCTUP
from repro.core.config import CTUPConfig
from repro.core.incremental import IncrementalNaiveCTUP
from repro.core.monitor import CTUPMonitor
from repro.core.naive import NaiveCTUP
from repro.core.opt import OptCTUP
from repro.engine.hooks import MonitorHooks
from repro.engine.session import MonitorSession
from repro.model import Place, Unit
from repro.obs.spec import Observability, ObsSpec, coerce_observability
from repro.shard.monitor import ShardedMonitor
from repro.shard.plan import ShardPlan
from repro.state.recovery import (
    CheckpointPolicy,
    CheckpointStore,
    RecoveryManager,
)


class _SchemeRegistry(dict):
    """Registered single-monitor schemes, by benchmark-table name.

    ====================  ==================================================
    ``"naive"``           recompute the result from storage per update
    ``"basic"``           BasicCTUP — dark cells with lower bounds (§III)
    ``"opt"``             OptCTUP — bounds + DecHash/DOO suppression (§IV)
    ``"incremental"``     incremental re-evaluation baseline
    ``"sharded"``         the shard-parallel wrapper
                          (:class:`~repro.shard.monitor.ShardedMonitor`) —
                          a first-class entry path resolved by
                          :func:`scheme_factory` and sized with
                          ``shard=ShardSpec(shards=..., parallelism=...)``.
                          It deliberately does not live in the mapping
                          itself: iterating ``SCHEMES`` yields exactly the
                          single-monitor schemes the equivalence suites
                          parametrize over, and the wrapper composes with
                          *any* of them.
    ====================  ==================================================
    """


#: every registered single-monitor scheme, by its benchmark-table name
#: (see ``SCHEMES.__doc__`` for the ``"sharded"`` entry path).
SCHEMES: dict[str, Callable] = _SchemeRegistry(
    {
        NaiveCTUP.name: NaiveCTUP,
        BasicCTUP.name: BasicCTUP,
        OptCTUP.name: OptCTUP,
        IncrementalNaiveCTUP.name: IncrementalNaiveCTUP,
    }
)


@dataclass(frozen=True, slots=True)
class ShardSpec:
    """How the place set splits across shard monitors.

    ``shards`` is 0 (unsharded, the default), a shard count, an explicit
    :class:`~repro.shard.plan.ShardPlan`, or a per-linear-cell shard-id
    sequence. ``parallelism`` > 1 drains shard queues on a thread pool;
    ``strategy`` picks the cell→shard assignment (``striped`` /
    ``interleaved`` / ``hashed`` / ``explicit``).
    """

    shards: int | Sequence[int] | ShardPlan = 0
    parallelism: int = 0
    strategy: str = "striped"

    @property
    def sharded(self) -> bool:
        """Whether this spec asks for the sharded wrapper at all."""
        return not (isinstance(self.shards, int) and self.shards == 0)


@dataclass(frozen=True, slots=True)
class ControlSpec:
    """How the session applies reconfiguration events (see
    :mod:`repro.control`).

    ``mode`` is the default application strategy for
    ``session.apply_control``: ``"incremental"`` lets each scheme patch
    its state in place (falling back to a rebuild only when it cannot
    absorb the event), ``"rebuild"`` always rebuilds — the slow path the
    equivalence suites compare against, and a safe big-hammer override
    in production. A per-call ``mode=`` still wins over the spec.
    """

    mode: str = "incremental"

    def __post_init__(self) -> None:
        if self.mode not in ("incremental", "rebuild"):
            raise ValueError(
                f"ControlSpec.mode must be 'incremental' or 'rebuild' "
                f"(got {self.mode!r})"
            )


@dataclass(frozen=True, slots=True)
class DurabilitySpec:
    """Journal + checkpoint directory attachment for a session.

    Every ingested update is journaled under ``checkpoint_dir`` and
    snapshots are written every ``every`` flush boundaries (plus one on
    ``close()``). ``resume=False`` starts fresh — the run owns the
    directory WAL-style and wipes stale state; ``resume=True`` recovers
    it instead (restore latest snapshot, replay the journal tail,
    return an already-started, bit-identical session).
    """

    checkpoint_dir: str | Path
    every: int = 0
    resume: bool = False


def scheme_factory(scheme: str | Callable) -> Callable:
    """Resolve a scheme name (or pass a factory through).

    A factory is any callable ``(config, places, units) -> CTUPMonitor``
    — the scheme classes themselves qualify. The name ``"sharded"``
    resolves to :class:`~repro.shard.monitor.ShardedMonitor`; size it by
    passing ``shard=ShardSpec(shards=..., parallelism=...)`` to
    :func:`make_monitor` / :func:`open_session`.
    """
    if callable(scheme):
        return scheme
    if scheme == ShardedMonitor.name:
        return ShardedMonitor
    try:
        return SCHEMES[scheme]
    except KeyError:
        raise ValueError(
            f"unknown scheme {scheme!r}; pick one of {sorted(SCHEMES)}, "
            f"{ShardedMonitor.name!r} (sized via shard=ShardSpec(shards=..., "
            "parallelism=...)), or pass a factory "
            "(config, places, units) -> CTUPMonitor"
        ) from None


def _warn_flat_kwargs(caller: str, names: Sequence[str], spec: str) -> None:
    """The pre-1.4 flat-kwarg deprecation shim (one warning per call)."""
    warnings.warn(
        f"{caller}: flat keyword argument(s) {', '.join(names)} are "
        f"deprecated since 1.4; pass {spec} instead",
        DeprecationWarning,
        # _warn_flat_kwargs -> _coerce_* -> public facade fn -> caller
        stacklevel=4,
    )


def _coerce_shard(
    shard: "ShardSpec | int | Sequence[int] | ShardPlan | None",
    shards: int | Sequence[int] | ShardPlan | None,
    parallelism: int | None,
    shard_strategy: str | None,
    caller: str,
) -> ShardSpec:
    """Normalize the grouped ``shard=`` spec and the deprecated flats."""
    flat = {
        name: value
        for name, value in (
            ("shards", shards),
            ("parallelism", parallelism),
            ("shard_strategy", shard_strategy),
        )
        if value is not None
    }
    if flat:
        if shard is not None:
            raise TypeError(
                f"{caller}: pass shard=ShardSpec(...) or the flat "
                f"{sorted(flat)} kwargs, not both"
            )
        _warn_flat_kwargs(  # reprolint: disable=RPL005 -- this IS the sanctioned shim call site; external flat-kwarg callers get the warning from here
            caller,
            sorted(flat),
            "shard=ShardSpec(shards=..., parallelism=..., strategy=...)",
        )
        return ShardSpec(
            shards=shards if shards is not None else 0,
            parallelism=parallelism if parallelism is not None else 0,
            strategy=shard_strategy if shard_strategy is not None else "striped",
        )
    if shard is None:
        return ShardSpec()
    if isinstance(shard, ShardSpec):
        return shard
    return ShardSpec(shards=shard)


def _coerce_durability(
    durability: "DurabilitySpec | str | Path | None",
    checkpoint_dir: str | Path | None,
    checkpoint_every: int | None,
    resume: bool | None,
    caller: str,
) -> DurabilitySpec | None:
    """Normalize the grouped ``durability=`` spec and the deprecated flats."""
    flat = {
        name: value
        for name, value in (
            ("checkpoint_dir", checkpoint_dir),
            ("checkpoint_every", checkpoint_every),
            ("resume", resume),
        )
        if value is not None
    }
    if flat:
        if durability is not None:
            raise TypeError(
                f"{caller}: pass durability=DurabilitySpec(...) or the flat "
                f"{sorted(flat)} kwargs, not both"
            )
        _warn_flat_kwargs(  # reprolint: disable=RPL005 -- this IS the sanctioned shim call site; external flat-kwarg callers get the warning from here
            caller,
            sorted(flat),
            "durability=DurabilitySpec(checkpoint_dir, every=..., resume=...)",
        )
        if checkpoint_dir is None:
            # matches the pre-1.4 behavior: the other knobs were inert
            # without a directory, except that resuming nothing is an error.
            if resume:
                raise ValueError("resume=True needs a checkpoint_dir")
            return None
        return DurabilitySpec(
            checkpoint_dir=checkpoint_dir,
            every=checkpoint_every if checkpoint_every is not None else 0,
            resume=bool(resume),
        )
    if durability is None:
        return None
    if isinstance(durability, DurabilitySpec):
        return durability
    if isinstance(durability, (str, Path)):
        return DurabilitySpec(checkpoint_dir=durability)
    raise TypeError(
        f"{caller}: durability= takes a DurabilitySpec or a checkpoint "
        f"directory path (got {type(durability).__name__})"
    )


def make_monitor(
    scheme: str | Callable = "opt",
    *,
    places: Sequence[Place],
    units: Iterable[Unit],
    config: CTUPConfig | None = None,
    shard: "ShardSpec | int | Sequence[int] | ShardPlan | None" = None,
    shards: int | Sequence[int] | ShardPlan | None = None,
    parallelism: int | None = None,
    shard_strategy: str | None = None,
) -> CTUPMonitor:
    """Build a monitor of any scheme, optionally sharded.

    ``shard=None`` (the default) returns the plain scheme monitor;
    otherwise pass a :class:`ShardSpec` (or, as shorthand, just its
    ``shards`` value — a count, an explicit
    :class:`~repro.shard.plan.ShardPlan`, or a per-cell shard-id
    sequence) to wrap the scheme in a
    :class:`~repro.shard.monitor.ShardedMonitor`. ``scheme="sharded"``
    builds the wrapper directly over its default per-shard scheme. The
    returned monitor is not yet initialized.

    .. deprecated:: 1.4
        The flat ``shards=`` / ``parallelism=`` / ``shard_strategy=``
        kwargs; pass ``shard=ShardSpec(...)``.
    """
    spec = _coerce_shard(shard, shards, parallelism, shard_strategy, "make_monitor")
    config = config if config is not None else CTUPConfig()
    factory = scheme_factory(scheme)
    if factory is ShardedMonitor:
        if not spec.sharded:
            return ShardedMonitor(
                config,
                places,
                units,
                parallelism=spec.parallelism,
                strategy=spec.strategy,
            )
        return ShardedMonitor(
            config,
            places,
            units,
            shards=spec.shards,
            parallelism=spec.parallelism,
            strategy=spec.strategy,
        )
    if not spec.sharded:
        return factory(config, places, units)
    return ShardedMonitor(
        config,
        places,
        units,
        shards=spec.shards,
        scheme=factory,
        parallelism=spec.parallelism,
        strategy=spec.strategy,
    )


def open_session(
    scheme: str | Callable = "opt",
    *,
    places: Sequence[Place] | None = None,
    units: Iterable[Unit] | None = None,
    config: CTUPConfig | None = None,
    monitor: CTUPMonitor | None = None,
    shard: "ShardSpec | int | Sequence[int] | ShardPlan | None" = None,
    durability: "DurabilitySpec | str | Path | None" = None,
    obs: "ObsSpec | Observability | None" = None,
    control: "ControlSpec | str | None" = None,
    batch_size: int = 0,
    audit_every: int = 0,
    hooks: MonitorHooks | Sequence[MonitorHooks] = (),
    track_changes: bool = True,
    shards: int | Sequence[int] | ShardPlan | None = None,
    parallelism: int | None = None,
    shard_strategy: str | None = None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int | None = None,
    resume: bool | None = None,
) -> MonitorSession:
    """A configured :class:`MonitorSession`, ready to ``start()``.

    Either pass ``places`` + ``units`` (plus ``scheme`` and an optional
    ``shard=`` :class:`ShardSpec`) to build the monitor here, or pass an
    existing ``monitor`` — e.g. one restored from a checkpoint — to
    adopt it. The session knobs (``batch_size``, ``audit_every``,
    ``hooks`` — a sequence or one bare hook — and ``track_changes``)
    are forwarded unchanged.

    ``durability=`` attaches durable state per its
    :class:`DurabilitySpec` (a bare path means "journal here, no
    periodic snapshots"). A fresh (non-resuming) start wipes whatever
    the directory held — the run owns it WAL-style. With
    ``DurabilitySpec(..., resume=True)`` the directory is recovered
    instead: the latest snapshot is restored, the journal tail
    replayed, and the returned session is **already started** and
    bit-identical to the uninterrupted run. On resume, the snapshot's
    recorded scheme and config win over the arguments (they describe
    the run being continued); pass the same ``batch_size`` the original
    run used, and a callable ``scheme`` to act as the factory for
    unregistered schemes.

    ``control=`` sets the default application mode for
    ``session.apply_control`` per its :class:`ControlSpec` (a bare
    ``"incremental"`` / ``"rebuild"`` string works as shorthand).

    ``obs=`` attaches observability per its
    :class:`~repro.obs.ObsSpec` (or an already-built
    :class:`~repro.obs.Observability` to share a registry across
    sessions): registry metrics bridge the monitor's ledgers, spans
    trace phases / kernels / shard drains / journal I/O, and a serve
    port runs a ``/metrics`` endpoint for the session's lifetime.

    .. deprecated:: 1.4
        The flat ``shards=`` / ``parallelism=`` / ``shard_strategy=`` /
        ``checkpoint_dir=`` / ``checkpoint_every=`` / ``resume=``
        kwargs; pass ``shard=ShardSpec(...)`` and
        ``durability=DurabilitySpec(...)``.
    """
    shard_spec = _coerce_shard(
        shard, shards, parallelism, shard_strategy, "open_session"
    )
    dura = _coerce_durability(
        durability, checkpoint_dir, checkpoint_every, resume, "open_session"
    )
    bundle = coerce_observability(obs)
    if control is None:
        control = ControlSpec()
    elif isinstance(control, str):
        control = ControlSpec(mode=control)
    elif not isinstance(control, ControlSpec):
        raise TypeError(
            "control= takes a ControlSpec or a mode string "
            f"(got {type(control).__name__})"
        )
    if dura is not None and dura.resume:
        if monitor is not None:
            raise ValueError("resume=True builds its own monitor")
        if places is None or units is None:
            raise ValueError("resume needs the original places + units")
        policy = CheckpointPolicy(
            directory=dura.checkpoint_dir, every_batches=dura.every
        )
        manager = RecoveryManager(
            policy,
            places=places,
            units=units,
            factory=scheme if callable(scheme) else None,
            parallelism=shard_spec.parallelism,
        )
        session = manager.resume_session(
            fresh_monitor=lambda: make_monitor(
                scheme,
                places=places,
                units=units,
                config=config,
                shard=shard_spec,
            ),
            batch_size=batch_size,
            audit_every=audit_every,
            hooks=hooks,
            track_changes=track_changes,
            obs=bundle,
        )
        # resume replays journaled events with their *recorded* modes;
        # the spec only governs events applied from here on.
        session.control_mode = control.mode
        return session
    if monitor is None:
        if places is None or units is None:
            raise ValueError(
                "open_session needs either a monitor or places + units"
            )
        monitor = make_monitor(
            scheme,
            places=places,
            units=units,
            config=config,
            shard=shard_spec,
        )
    elif places is not None or units is not None:
        raise ValueError("pass either a monitor or places/units, not both")
    policy_arg: CheckpointPolicy | None = None
    if dura is not None:
        # a fresh run owns the directory: stale snapshots or journal
        # records from an earlier run must not leak into this one.
        CheckpointStore(dura.checkpoint_dir).wipe()
        policy_arg = CheckpointPolicy(
            directory=dura.checkpoint_dir, every_batches=dura.every
        )
    return MonitorSession(
        monitor,
        batch_size=batch_size,
        audit_every=audit_every,
        hooks=hooks,
        track_changes=track_changes,
        checkpoint=policy_arg,
        obs=bundle,
        control_mode=control.mode,
    )


__all__ = [
    "SCHEMES",
    "scheme_factory",
    "make_monitor",
    "open_session",
    "ShardSpec",
    "ControlSpec",
    "DurabilitySpec",
    "ObsSpec",
    "Observability",
    "CheckpointPolicy",
    "MonitorSession",
    "RecoveryManager",
    "ShardedMonitor",
    "ShardPlan",
    "CTUPConfig",
]
