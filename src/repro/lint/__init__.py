"""reprolint — repo-aware static analysis for the CTUP reproduction.

The monitors rest on conventions that ordinary linters cannot see:
every scheme must speak the phase-split monitor API (and leave the
timing/counter bookkeeping to the base class), every storage touch must
be charged through :class:`~repro.storage.iostats.IoStats`, and the
sharded execution layer must stay deterministic so the global top-k
merge and the equivalence suite remain provable. ``repro.lint`` encodes
those invariants as AST rules over the source tree:

========  ==============================================================
RPL000    suppression hygiene — every ``# reprolint: disable=`` comment
          must name known rules and carry a ``-- reason``.
RPL001    scheme contract — CTUP monitor subclasses define the phase
          API and never override the base class's timing/counter
          ownership; everything in ``repro.api.SCHEMES`` is a monitor.
RPL002    counter discipline — ``IoStats`` / ``MonitorCounters`` timing
          fields / ``UnitKernelStats`` / ``MergeStats`` are mutated only
          in their owning modules; no reaching into ``PlaceStore`` page
          internals from outside the storage layer.
RPL003    determinism — no ``random``/wall-clock/unordered-set
          iteration in the ``core``/``shard``/``index``/``grid`` update
          paths; ties go through the documented ``(safety, id)`` key.
RPL004    shard thread-safety — functions drained on the shard thread
          pool never mutate shared monitor state.
RPL005    deprecation hygiene — no in-package calls to surfaces that
          raise ``DeprecationWarning`` (``run_stream`` and friends).
RPL006    no mutable default arguments.
RPL007    no shadowing of load-bearing builtins.
RPL011    durability discipline — every checkpoint/journal write path
          reaches flush+fsync before its rename/publish, and no state
          mutation survives a swallowed exception without rollback
          (flow-sensitive, ``repro.lint.flow``).
RPL012    lock discipline — attributes shared with the drain pool or
          the ``/metrics`` thread are accessed with the owning lock
          definitely held (the ``GUARDED_FIELDS`` contract).
RPL013    counter conservation — once-per-call ``MonitorCounters``
          charges happen on every normal exit path and never twice.
RPL014    phase protocol — no access-phase helper (reachable from
          ``_refresh``/``top_k``/``sk`` over the project call graph)
          calls a maintain-phase mutator.
RPLT01    typing gate — fully annotated defs in the strict module set
          declared in ``[tool.reprolint]`` (see ``typing_gate``).
========  ==============================================================

RPL011–RPL014 are path-aware: they run a worklist dataflow solver over
per-function CFGs (and, for RPL014, a project-wide call graph) built by
:mod:`repro.lint.flow`.

Violations are suppressed per line with ``# reprolint: disable=RPL003
-- reason`` (the reason is mandatory, enforced by RPL000) or per file
with ``# reprolint: disable-file=RPL003 -- reason``.

Run as ``python -m repro.lint src tests`` or ``ctup lint``. Useful
flags: ``--format sarif`` (code-scanning uploads), ``--cache``
(incremental re-runs), ``--changed REF`` (report only files changed vs
a git baseline), ``--jobs N`` (parallel rule pass).
"""

from __future__ import annotations

from repro.lint.cache import DEFAULT_CACHE_PATH, LintCache
from repro.lint.config import LintConfig, load_config
from repro.lint.engine import LintResult, lint_paths, lint_sources
from repro.lint.registry import RULES, Rule, Violation, rule
from repro.lint.report import render_json, render_sarif, render_text
from repro.lint import rules as _rules  # noqa: F401  (populate registry)

__all__ = [
    "DEFAULT_CACHE_PATH",
    "LintCache",
    "LintConfig",
    "LintResult",
    "RULES",
    "Rule",
    "Violation",
    "lint_paths",
    "lint_sources",
    "load_config",
    "render_json",
    "render_sarif",
    "render_text",
    "rule",
]
