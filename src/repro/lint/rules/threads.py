"""RPL004 — thread-safety of the shard drain pool.

``ShardedMonitor`` may drain shard queues on a thread pool. The whole
correctness argument (PR 3) is that drained work touches *only* the one
shard passed in — shards share no mutable state, so results and merged
counters are independent of thread scheduling. This rule finds the
functions handed to an executor (``pool.map(self._drain, ...)`` /
``pool.submit(...)``) inside ``repro.shard`` and flags any mutation of
shared state from their bodies: assignments to ``self`` attributes,
mutating calls on ``self``-rooted objects (the plan, the router, the
merger), and ``global``/``nonlocal`` rebinding.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ProjectIndex, SourceFile
from repro.lint.registry import Violation, rule

SCOPES = ("repro.shard",)

_EXECUTOR_ENTRYPOINTS = frozenset({"map", "submit"})
_MUTATORS = frozenset(
    {
        "append",
        "add",
        "update",
        "clear",
        "remove",
        "discard",
        "pop",
        "popitem",
        "insert",
        "extend",
        "setdefault",
        "sort",
        "reverse",
    }
)


@rule(
    "RPL004",
    "shard-thread-safety",
    "functions drained on the shard thread pool must not mutate shared "
    "monitor state",
)
def check(source: SourceFile, project: ProjectIndex) -> Iterator[Violation]:
    if not source.in_packages(*SCOPES):
        return
    pooled = _pooled_function_names(source.tree)
    if not pooled:
        return
    for node in ast.walk(source.tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name in pooled
        ):
            yield from _check_pooled_body(source, node)


def _pooled_function_names(tree: ast.AST) -> set[str]:
    """Names of methods/functions passed to ``.map`` / ``.submit``."""
    pooled: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            not isinstance(func, ast.Attribute)
            or func.attr not in _EXECUTOR_ENTRYPOINTS
            or not node.args
        ):
            continue
        worker = node.args[0]
        if isinstance(worker, ast.Attribute):
            pooled.add(worker.attr)
        elif isinstance(worker, ast.Name):
            pooled.add(worker.id)
    return pooled


def _check_pooled_body(
    source: SourceFile, node: ast.FunctionDef | ast.AsyncFunctionDef
) -> Iterator[Violation]:
    for inner in ast.walk(node):
        if isinstance(inner, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                inner.targets
                if isinstance(inner, ast.Assign)
                else [inner.target]
            )
            for target in targets:
                if _is_self_rooted(target):
                    yield _violation(
                        source,
                        target,
                        node.name,
                        f"assignment to '{ast.unparse(target)}'",
                    )
        elif isinstance(inner, ast.Call):
            func = inner.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and _is_self_rooted(func.value)
            ):
                yield _violation(
                    source,
                    inner,
                    node.name,
                    f"mutating call '{ast.unparse(func)}(...)'",
                )
        elif isinstance(inner, (ast.Global, ast.Nonlocal)):
            yield _violation(
                source,
                inner,
                node.name,
                f"{'global' if isinstance(inner, ast.Global) else 'nonlocal'} "
                f"rebinding of {', '.join(inner.names)}",
            )


def _is_self_rooted(node: ast.expr) -> bool:
    """Whether the expression reaches shared state through ``self``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


def _violation(
    source: SourceFile, node: ast.AST, function: str, what: str
) -> Violation:
    return Violation(
        code="RPL004",
        message=(
            f"{what} inside '{function}', which runs on the shard drain "
            "pool — pooled work may only touch the shard it was handed; "
            "shared plan/router/merger state must stay read-only "
            "(determinism of the parallel drain, PR 3)"
        ),
        path=source.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
    )
