"""Configuration shared by all CTUP monitors.

The defaults reproduce Table III of the paper: 150 units, 15 000 places,
``k = 15``, ``Δ = 6``, protection range 0.1 and a 10×10 grid over the
unit square. (The place/unit counts live in the workload configuration,
not here — this object describes the *monitor*.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Rect


def _unit_square() -> Rect:
    return Rect(0.0, 0.0, 1.0, 1.0)


@dataclass(frozen=True, slots=True)
class CTUPConfig:
    """Parameters of a CTUP monitor instance.

    Attributes
    ----------
    k:
        how many unsafe places to monitor (Table III default 15).
    delta:
        OptCTUP's Δ slack: after accessing a cell, every place with
        ``safety < SK + Δ`` stays maintained, so the cell's bound can
        absorb Δ decreases before the cell is touched again.
    protection_range:
        radius ``R`` of every unit's protection disk.
    granularity:
        the grid is ``granularity × granularity`` over ``space``.
    space:
        the monitored region (unit square by default).
    use_doo:
        enable the Decrease Once Optimization in OptCTUP. Switching it
        off (Fig. 8's ablation) falls back to Table I bound maintenance
        while keeping the rest of OptCTUP intact.
    use_unit_grid:
        bucket the unit positions by grid cell so the AP kernels only
        examine the bucket neighbourhood of a queried rectangle instead
        of scanning all |U| units. Purely a performance toggle — results
        are bit-for-bit identical either way (the exact reachability
        filter always runs); off is the hot-path ablation.
    burst_kernels:
        run coalesced bursts through the vectorised multi-unit maintain
        kernels of :mod:`repro.core.kernels` (BasicCTUP / OptCTUP).
        Like ``use_unit_grid`` this is purely a performance toggle: the
        kernels fold the same per-waypoint Table I/II transitions the
        scalar path applies, so results, top-k, SK and the logical work
        counters are bit-for-bit identical; off is the scalar ablation
        measured by ``benchmarks/bench_burst.py``.
    page_capacity / buffer_pages:
        layout of the simulated lower storage level.
    """

    k: int = 15
    delta: int = 6
    protection_range: float = 0.1
    granularity: int = 10
    space: Rect = field(default_factory=_unit_square)
    use_doo: bool = True
    use_unit_grid: bool = True
    burst_kernels: bool = False
    page_capacity: int = 64
    buffer_pages: int = 0

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValueError("k cannot be negative")
        if self.delta < 0:
            raise ValueError("delta cannot be negative")
        if self.protection_range <= 0:
            raise ValueError("protection range must be positive")
        if self.granularity <= 0:
            raise ValueError("granularity must be positive")

    def replace(self, **overrides: object) -> "CTUPConfig":
        """A copy with some fields overridden (sweep helper)."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **overrides)
