"""Sharded-execution benchmark: fan-out routing and the global merge.

Runs the OptCTUP scheme over a pinned-seed workload unsharded (``mono``)
and sharded (``s1``, ``s4``, serial and ``s4p`` with a 4-thread drain
pool) and writes a canonical JSON document. ``repro.bench.guard``
compares it against the committed baseline (``BENCH_shard.json`` at the
repository root): structural mismatch fails, numeric drift only warns.

The deterministic counters tell the sharding story directly:
``sync_deliveries`` vs ``full_deliveries`` is the routing win (most
shards only sync unit positions), and ``merge_refills`` /
``merge_records_pulled`` is the cost of recombining partial top-k lists.
``updates_per_s`` is recorded for information only — throughput is not a
guarded metric (the guard treats increases as regressions).

CLI (also wired into CI as a smoke job)::

    python benchmarks/bench_shard.py --smoke --check   # fast CI guard
    python benchmarks/bench_shard.py --write-baseline  # refresh baseline

Running under pytest executes the smoke profile, checks mode agreement,
and runs the structural comparison against the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.bench import build_workload
from repro.bench.guard import (
    SCHEMA_VERSION,
    compare,
    load_baseline,
    write_baseline,
)
from repro.core import CTUPConfig
from repro.engine.session import MonitorSession
from repro.api import ShardSpec, make_monitor
from repro.validate import Oracle

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_shard.json"

BENCH_NAME = "shard"
SCHEME = "opt"

#: execution modes: (shards, parallelism); 0 shards = the plain scheme.
MODES = {
    "mono": (0, 0),
    "s1": (1, 0),
    "s4": (4, 0),
    "s4p": (4, 4),
}

#: deterministic counters guarded tightly (absent ones are skipped, so
#: the sharding-only counters don't break the ``mono`` comparison).
COUNTER_METRICS = (
    "cells_accessed",
    "distance_rows",
    "final_sk",
    "full_deliveries",
    "sync_deliveries",
    "merge_refills",
    "merge_records_pulled",
)
WALL_METRICS = ("wall_seconds",)

#: pinned workloads; these parameters are part of the baseline's
#: identity — changing them is a structural break, not a regression.
PROFILES = {
    "smoke": dict(n_units=200, n_places=2_000, stream_length=30, seed=7),
    "default": dict(n_units=1_000, n_places=15_000, stream_length=200, seed=7),
}
K = 5


def machine_metadata() -> dict:
    import platform

    import numpy as np

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "numpy": np.__version__,
    }


def _run_mode(workload, config: CTUPConfig, shards: int, parallelism: int) -> dict:
    monitor = make_monitor(
        SCHEME,
        places=workload.places,
        units=workload.units,
        config=config,
        shard=ShardSpec(shards=shards, parallelism=parallelism),
    )
    monitor.initialize()
    sharded = shards != 0
    counters_of = monitor.merged_counters if sharded else monitor.counters.snapshot
    after_init = counters_of()
    session = MonitorSession(monitor, track_changes=False)
    session.start()
    start = time.perf_counter()
    n = session.run(workload.stream)
    wall = time.perf_counter() - start
    c = counters_of() - after_init
    metrics = {
        "wall_seconds": round(wall, 4),
        "updates_per_s": round(n / wall, 1) if wall else 0.0,
        "cells_accessed": c.cells_accessed,
        "distance_rows": c.distance_rows,
        "final_sk": monitor.sk(),
    }
    if sharded:
        metrics.update(
            full_deliveries=monitor.full_deliveries,
            sync_deliveries=monitor.sync_deliveries,
            merge_refills=monitor.merger.stats.refills,
            merge_records_pulled=monitor.merger.stats.records_pulled,
        )
        monitor.close()
    return metrics


def run_profile(name: str, validate: bool = True) -> dict:
    params = PROFILES[name]
    workload = build_workload(**params)
    config = CTUPConfig(k=K)
    modes = {
        mode: _run_mode(workload, config, shards, parallelism)
        for mode, (shards, parallelism) in MODES.items()
    }
    if validate:
        oracle = Oracle(workload.places, workload.units)
        for update in workload.stream:
            oracle.apply(update)
        true_sk = oracle.sk(K)
        for mode, metrics in modes.items():
            if metrics["final_sk"] != true_sk:
                raise AssertionError(
                    f"{name}/{mode}: final SK {metrics['final_sk']} "
                    f"!= oracle {true_sk}"
                )
    return {"workload": {**params, "k": K}, "schemes": {SCHEME: modes}}


def run_bench(profiles: list[str], validate: bool = True) -> dict:
    return {
        "bench": BENCH_NAME,
        "version": SCHEMA_VERSION,
        "machine": machine_metadata(),
        "profiles": {name: run_profile(name, validate) for name in profiles},
    }


def _summary_lines(doc: dict) -> list[str]:
    lines = []
    for profile, prof in doc["profiles"].items():
        modes = prof["schemes"][SCHEME]
        mono = modes["mono"]
        for mode, m in modes.items():
            detail = ""
            if "full_deliveries" in m:
                total = m["full_deliveries"] + m["sync_deliveries"]
                detail = (
                    f"  full {m['full_deliveries']}/{total} "
                    f"refills {m['merge_refills']}"
                )
            lines.append(
                f"{profile:8} {mode:5} {m['updates_per_s']:9.1f} up/s "
                f"({m['wall_seconds'] / mono['wall_seconds'] if mono['wall_seconds'] else 1:4.2f}x mono wall, "
                f"sk {'==' if m['final_sk'] == mono['final_sk'] else '!='})"
                f"{detail}"
            )
    return lines


def _guard(baseline: dict, doc: dict) -> "GuardReport":
    return compare(
        baseline,
        doc,
        bench=BENCH_NAME,
        counter_metrics=COUNTER_METRICS,
        wall_metrics=WALL_METRICS,
    )


# -- pytest entry point (the CI smoke job runs this file directly) --------


def test_shard_smoke_matches_baseline():
    doc = run_bench(["smoke"])
    modes = doc["profiles"]["smoke"]["schemes"][SCHEME]
    mono = modes["mono"]
    for mode, m in modes.items():
        # every execution mode reports the exact same SK.
        assert m["final_sk"] == mono["final_sk"], mode
    # one shard performs exactly the unsharded work.
    assert modes["s1"]["cells_accessed"] == mono["cells_accessed"]
    assert modes["s1"]["distance_rows"] == mono["distance_rows"]
    assert modes["s1"]["sync_deliveries"] == 0
    # the thread pool must not change any deterministic counter.
    for metric in COUNTER_METRICS:
        assert modes["s4p"][metric] == modes["s4"][metric], metric
    # routing pays off: most deliveries are cheap unit-position syncs.
    assert modes["s4"]["sync_deliveries"] > modes["s4"]["full_deliveries"]
    report = _guard(load_baseline(BASELINE_PATH), doc)
    # counters may drift with numpy/python versions (warned, tolerated);
    # a structural mismatch means the committed baseline is stale.
    assert report.ok(), report.render()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="run only the fast smoke profile"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline "
        "(exit 1 on structural mismatch)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="with --check: also fail on counter regressions",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=f"write the results to {BASELINE_PATH.name}",
    )
    parser.add_argument(
        "--no-validate",
        action="store_true",
        help="skip the final-SK oracle validation",
    )
    args = parser.parse_args(argv)

    profiles = ["smoke"] if args.smoke else ["smoke", "default"]
    doc = run_bench(profiles, validate=not args.no_validate)
    print(json.dumps(doc["machine"], sort_keys=True))
    for line in _summary_lines(doc):
        print(line)

    status = 0
    if args.check:
        try:
            baseline = load_baseline(BASELINE_PATH)
        except FileNotFoundError:
            print(f"no baseline at {BASELINE_PATH}; run --write-baseline first")
            return 1
        report = _guard(baseline, doc)
        print(report.render())
        if not report.ok(strict=args.strict):
            status = 1
    if args.write_baseline:
        write_baseline(BASELINE_PATH, doc)
        print(f"baseline written to {BASELINE_PATH}")
    return status


if __name__ == "__main__":
    sys.exit(main())
