"""Per-update time-series collection.

Averages hide dynamics: a monitor that is cheap on average but spikes
whenever SK shifts behaves very differently operationally from a flat
one. :class:`Timeline` records per-update samples (SK, maintained size,
cells accessed, wall time) while a monitor consumes a stream, and
summarises them (quantiles, spike counts, drift).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.metrics import UpdateReport
from repro.core.monitor import CTUPMonitor
from repro.engine.hooks import MonitorHooks
from repro.model import LocationUpdate


@dataclass(slots=True)
class TimelineSummary:
    """Aggregates over one recorded run."""

    updates: int
    sk_start: float
    sk_end: float
    sk_min: float
    sk_changes: int
    maintained_mean: float
    maintained_max: int
    accesses_total: int
    #: updates that accessed at least one cell.
    updates_with_access: int
    update_ms_p50: float
    update_ms_p95: float
    update_ms_max: float


class TimelineHook(MonitorHooks):
    """Engine hook sampling a monitor into a :class:`Timeline`.

    Attach it to a :class:`~repro.engine.session.MonitorSession` to get
    per-update samples without owning the driving loop; in batch mode
    every update of a burst is sampled with the burst's shared report.
    """

    def __init__(self, timeline: "Timeline", monitor: CTUPMonitor) -> None:
        self.timeline = timeline
        self.monitor = monitor

    def on_update_end(self, update: LocationUpdate, report: UpdateReport) -> None:
        self.timeline.sk.append(report.sk)
        self.timeline.maintained.append(self.monitor.maintained_count())
        self.timeline.accesses.append(report.cells_accessed)
        self.timeline.update_seconds.append(
            report.maintain_seconds + report.access_seconds
        )


@dataclass
class Timeline:
    """Sampled per-update history of one monitor."""

    sk: list[float] = field(default_factory=list)
    maintained: list[int] = field(default_factory=list)
    accesses: list[int] = field(default_factory=list)
    update_seconds: list[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.sk)

    def record(self, monitor: CTUPMonitor, updates: Iterable[LocationUpdate]) -> None:
        """Drive ``monitor`` over ``updates``, sampling after each one."""
        hook = TimelineHook(self, monitor)
        for update in updates:
            report = monitor.process(update)
            hook.on_update_end(update, report)

    def summary(self) -> TimelineSummary:
        """Aggregate the recorded run."""
        if not self.sk:
            raise ValueError("nothing recorded")
        sk = self.sk
        ms = np.array(self.update_seconds) * 1e3
        changes = sum(1 for a, b in zip(sk, sk[1:]) if a != b)
        return TimelineSummary(
            updates=len(sk),
            sk_start=sk[0],
            sk_end=sk[-1],
            sk_min=min(sk),
            sk_changes=changes,
            maintained_mean=float(np.mean(self.maintained)),
            maintained_max=max(self.maintained),
            accesses_total=sum(self.accesses),
            updates_with_access=sum(1 for a in self.accesses if a > 0),
            update_ms_p50=float(np.percentile(ms, 50)),
            update_ms_p95=float(np.percentile(ms, 95)),
            update_ms_max=float(ms.max()),
        )

    def sparkline(self, values: list[float] | None = None, width: int = 60) -> str:
        """A text sparkline of a series (defaults to maintained size)."""
        series = values if values is not None else [float(v) for v in self.maintained]
        if not series:
            return ""
        blocks = "▁▂▃▄▅▆▇█"
        arr = np.asarray(series, dtype=np.float64)
        finite = arr[np.isfinite(arr)]
        if len(finite) == 0:
            return "·" * min(width, len(series))
        low, high = float(finite.min()), float(finite.max())
        span = high - low or 1.0
        if len(arr) > width:
            # average-pool down to the display width.
            edges = np.linspace(0, len(arr), width + 1, dtype=int)
            arr = np.array(
                [
                    arr[a:b][np.isfinite(arr[a:b])].mean()
                    if np.isfinite(arr[a:b]).any()
                    else math.nan
                    for a, b in zip(edges, edges[1:])
                ]
            )
        chars = []
        for value in arr:
            if not math.isfinite(value):
                chars.append("·")
            else:
                index = int((value - low) / span * (len(blocks) - 1))
                chars.append(blocks[index])
        return "".join(chars)
