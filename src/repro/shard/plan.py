"""Partitioning the place space into disjoint shards.

A :class:`ShardPlan` assigns every grid cell — and therefore every place,
since a place belongs to exactly one cell — to exactly one of ``S``
shards. The plan is the single source of truth for the sharded execution
layer: :class:`~repro.shard.monitor.ShardedMonitor` uses it to split the
place set, and :class:`~repro.shard.router.ShardRouter` uses it to
answer "which shards can a disk centred here touch?" from the disk's
candidate-cell block.

Because shard membership is defined at cell granularity, the routing
question reduces to cell arithmetic the grid already does for bound
maintenance: a unit move whose old and new protection disks touch no
cell of shard ``s`` cannot change the safety of any place of ``s`` nor
any of its cell bounds (the ``N -> N`` row of Tables I/II), so ``s``
need not run its maintain or access phase for that update.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.grid.partition import CellId, GridPartition
from repro.model import Place


class ShardPlan:
    """An immutable cell -> shard assignment over one grid partition.

    Construct through one of the classmethods (:meth:`striped`,
    :meth:`interleaved`, :meth:`hashed`, :meth:`from_mapping`) — the raw
    constructor takes a dense ``(nx, ny)`` int array of shard ids.
    """

    #: the named partitioning strategies accepted by ``ShardedMonitor``.
    STRATEGIES = ("striped", "interleaved", "hashed")

    def __init__(self, grid: GridPartition, assignment: np.ndarray) -> None:
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (grid.nx, grid.ny):
            raise ValueError(
                f"assignment shape {assignment.shape} does not match the "
                f"{grid.nx}x{grid.ny} grid"
            )
        if assignment.size and assignment.min() < 0:
            raise ValueError("shard ids must be non-negative")
        self.grid = grid
        self._assignment = assignment.copy()
        self._assignment.setflags(write=False)
        self.n_shards = int(assignment.max()) + 1 if assignment.size else 0

    # -- constructors -----------------------------------------------------

    @classmethod
    def striped(cls, grid: GridPartition, n_shards: int) -> "ShardPlan":
        """Contiguous vertical bands of columns, one band per shard.

        Keeps each shard spatially compact, so a protection disk (which
        spans a ``O(R/w)``-wide cell block) usually touches one or two
        shards only — the lowest-fanout default.
        """
        cls._check_shards(grid, n_shards)
        cols = np.arange(grid.nx, dtype=np.int64) * n_shards // grid.nx
        return cls(grid, np.repeat(cols[:, None], grid.ny, axis=1))

    @classmethod
    def interleaved(cls, grid: GridPartition, n_shards: int) -> "ShardPlan":
        """Diagonal round-robin: cell ``(i, j)`` goes to ``(i + j) % S``.

        Balances load under skewed workloads at the cost of higher
        routing fanout (neighbouring cells live in different shards).
        """
        cls._check_shards(grid, n_shards)
        i = np.arange(grid.nx, dtype=np.int64)[:, None]
        j = np.arange(grid.ny, dtype=np.int64)[None, :]
        return cls(grid, (i + j) % n_shards)

    @classmethod
    def hashed(
        cls, grid: GridPartition, n_shards: int, seed: int = 0
    ) -> "ShardPlan":
        """Deterministic spatial hash of the cell coordinates."""
        cls._check_shards(grid, n_shards)
        i = np.arange(grid.nx, dtype=np.uint64)[:, None]
        j = np.arange(grid.ny, dtype=np.uint64)[None, :]
        mixed = (i * np.uint64(73856093)) ^ (j * np.uint64(19349663))
        mixed = mixed ^ np.uint64(seed * 83492791 & 0xFFFFFFFF)
        return cls(grid, (mixed % np.uint64(n_shards)).astype(np.int64))

    @classmethod
    def from_mapping(
        cls,
        grid: GridPartition,
        mapping: Mapping[CellId, int],
        n_shards: int | None = None,
    ) -> "ShardPlan":
        """Build a plan from an explicit ``cell -> shard`` mapping.

        Every cell of the grid must be assigned. ``n_shards`` pads the
        plan with trailing empty shards (useful when a random assignment
        happens to skip the last shard id).
        """
        assignment = np.full((grid.nx, grid.ny), -1, dtype=np.int64)
        for cell, shard in mapping.items():
            grid._check_cell(cell)
            assignment[cell] = int(shard)
        if (assignment < 0).any():
            missing = int((assignment < 0).sum())
            raise ValueError(f"mapping leaves {missing} cells unassigned")
        plan = cls(grid, assignment)
        if n_shards is not None:
            if n_shards < plan.n_shards:
                raise ValueError(
                    f"mapping uses shard id {plan.n_shards - 1} but only "
                    f"{n_shards} shards were requested"
                )
            plan.n_shards = n_shards
        return plan

    @classmethod
    def build(
        cls, grid: GridPartition, n_shards: int, strategy: str = "striped"
    ) -> "ShardPlan":
        """Dispatch to a named strategy (see :attr:`STRATEGIES`)."""
        if strategy not in cls.STRATEGIES:
            raise ValueError(
                f"unknown shard strategy {strategy!r}; "
                f"pick one of {cls.STRATEGIES}"
            )
        return getattr(cls, strategy)(grid, n_shards)

    @staticmethod
    def _check_shards(grid: GridPartition, n_shards: int) -> None:
        if n_shards <= 0:
            raise ValueError(f"need at least one shard, got {n_shards}")
        if n_shards > grid.cell_count:
            raise ValueError(
                f"{n_shards} shards cannot all own a cell of a "
                f"{grid.nx}x{grid.ny} grid"
            )

    # -- lookups ----------------------------------------------------------

    def shard_of_cell(self, cell: CellId) -> int:
        """The shard owning ``cell``."""
        self.grid._check_cell(cell)
        return int(self._assignment[cell])

    def shard_of_place(self, place: Place) -> int:
        """The shard owning ``place`` (via its grid cell)."""
        return int(self._assignment[self.grid.cell_of(place.location)])

    def shards_in_block(
        self, block: tuple[int, int, int, int]
    ) -> frozenset[int]:
        """Distinct shards owning any cell of a clamped ``(i_lo, i_hi,
        j_lo, j_hi)`` block (empty for an empty block)."""
        i_lo, i_hi, j_lo, j_hi = block
        if i_lo > i_hi or j_lo > j_hi:
            return frozenset()
        view = self._assignment[i_lo : i_hi + 1, j_lo : j_hi + 1]
        return frozenset(np.unique(view).tolist())

    def cells_of_shard(self, shard: int) -> list[CellId]:
        """All cells owned by ``shard`` (row-major order)."""
        return [
            (int(i), int(j))
            for i, j in np.argwhere(self._assignment == shard)
        ]

    def split_places(
        self, places: Iterable[Place]
    ) -> list[list[Place]]:
        """Partition ``places`` into one list per shard (order kept)."""
        out: list[list[Place]] = [[] for _ in range(self.n_shards)]
        for place in places:
            out[self.shard_of_place(place)].append(place)
        return out

    def cell_counts(self) -> list[int]:
        """Number of cells owned by each shard."""
        return np.bincount(
            self._assignment.ravel(), minlength=self.n_shards
        ).tolist()

    def assignment_list(self) -> list[int]:
        """Per-linear-cell shard ids (the :func:`plan_for` sequence form).

        ``plan_for(grid, plan.assignment_list())`` rebuilds an equivalent
        plan — the JSON-codable round-trip used by checkpoints.
        """
        return [int(s) for s in self._assignment.ravel()]

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"ShardPlan({self.grid.nx}x{self.grid.ny} grid, "
            f"{self.n_shards} shards, cells/shard {self.cell_counts()})"
        )


def plan_for(
    grid: GridPartition,
    shards: int | Sequence[int] | ShardPlan,
    strategy: str = "striped",
) -> ShardPlan:
    """Coerce a shard spec — a count, a plan, or a per-linear-cell
    sequence of shard ids — into a :class:`ShardPlan` over ``grid``."""
    if isinstance(shards, ShardPlan):
        plan = shards
        if (
            plan.grid.nx != grid.nx
            or plan.grid.ny != grid.ny
            or plan.grid.space != grid.space
        ):
            raise ValueError("shard plan was built for a different grid")
        return plan
    if isinstance(shards, int):
        return ShardPlan.build(grid, shards, strategy)
    flat = np.asarray(list(shards), dtype=np.int64)
    if flat.size != grid.cell_count:
        raise ValueError(
            f"per-cell shard sequence has {flat.size} entries for a "
            f"{grid.cell_count}-cell grid"
        )
    # the sequence is indexed by GridPartition.linear (row-major).
    return ShardPlan(grid, flat.reshape(grid.nx, grid.ny))
