"""Lint-perf guard: a warm incremental-cache run must beat a cold one.

The incremental cache (:mod:`repro.lint.cache`) exists to make
re-linting an unchanged tree nearly free — a fully warm run restores
every pre-pass summary and every finding bucket from the cache and
parses no AST at all. This benchmark measures that claim on the real
tree and guards it in CI:

- **cold**: lint ``src`` + ``tests`` into a fresh cache;
- **warm**: lint again, reloading the cache the cold run wrote;
- the two runs must report *identical* findings, and warm must be at
  least ``--min-speedup`` times faster (default 5x; the observed ratio
  on this tree is ~40x).

CLI (also wired into CI as the lint-perf guard)::

    python benchmarks/bench_lint.py --check         # CI guard
    python benchmarks/bench_lint.py                 # just report timings
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import tempfile
import time

from repro.lint import LintCache, LintResult, lint_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

DEFAULT_PATHS = (REPO_ROOT / "src", REPO_ROOT / "tests")


def _findings(result: LintResult) -> list[tuple[str, str, int, int, str]]:
    return [
        (v.code, v.path, v.line, v.col, v.message)
        for v in result.all_findings()
    ]


def run(paths: list[pathlib.Path], min_speedup: float, check: bool) -> int:
    with tempfile.TemporaryDirectory(prefix="bench-lint-") as tmp:
        cache_path = pathlib.Path(tmp) / "cache.json"

        started = time.perf_counter()
        cold = lint_paths(paths, cache=LintCache(cache_path))
        cold_s = time.perf_counter() - started

        warm_cache = LintCache(cache_path)
        started = time.perf_counter()
        warm = lint_paths(paths, cache=warm_cache)
        warm_s = time.perf_counter() - started

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(
        f"lint {cold.files_checked} file(s): cold {cold_s:.3f}s, "
        f"warm {warm_s:.3f}s ({speedup:.1f}x, cache hits "
        f"{warm_cache.hits}, misses {warm_cache.misses})"
    )

    if _findings(cold) != _findings(warm):
        print("FAIL: cold and warm runs disagree on findings", file=sys.stderr)
        return 1
    print("cold and warm findings identical")
    if check and speedup < min_speedup:
        print(
            f"FAIL: warm speedup {speedup:.1f}x below the "
            f"{min_speedup:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    if check:
        print(f"speedup >= {min_speedup:.1f}x floor: ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        default=[str(p) for p in DEFAULT_PATHS],
        help="paths to lint (default: the repo's src and tests)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="required warm-vs-cold ratio with --check (default 5.0)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail when the warm run misses the speedup floor",
    )
    args = parser.parse_args(argv)
    return run(
        [pathlib.Path(p) for p in args.paths], args.min_speedup, args.check
    )


if __name__ == "__main__":
    sys.exit(main())
