"""RPL001 — the scheme contract (PR 1's phase-split monitor API).

Every CTUP monitor subclass must implement the phase API
(``_build_initial_state`` / ``_apply`` / ``_refresh`` / ``top_k`` /
``sk``) and must leave the lifecycle methods — where *all* timing and
stream counters live, exactly once — to the base class. Anything
registered in ``repro.api.SCHEMES`` must be such a monitor, and a
``partial_top_k`` override must keep the ``(self, m)`` shape the shard
merger calls.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ProjectIndex, SourceFile
from repro.lint.registry import Violation, rule

#: lifecycle methods owned by ``CTUPMonitor`` (timing + counters).
OWNED_METHODS = frozenset(
    {"initialize", "apply_update", "refresh", "process", "run_stream"}
)
#: the phase-split monitor API every scheme must provide.
PHASE_API = (
    "_build_initial_state",
    "_apply",
    "_refresh",
    "top_k",
    "sk",
)
#: the module that owns the base class (allowed to define everything).
BASE_MODULE = "repro.core.monitor"


@rule(
    "RPL001",
    "scheme-contract",
    "monitor subclasses define the phase API and never override the "
    "base class's timing/counter ownership",
    project_dependent=True,
)
def check(source: SourceFile, project: ProjectIndex) -> Iterator[Violation]:
    if not source.in_packages("repro"):
        return
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ClassDef):
            yield from _check_class(source, project, node)
    yield from _check_registry(source, project)


def _check_class(
    source: SourceFile, project: ProjectIndex, node: ast.ClassDef
) -> Iterator[Violation]:
    name = node.name
    if name == "CTUPMonitor" or not project.is_descendant_of(
        name, "CTUPMonitor"
    ):
        return
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods.setdefault(item.name, item)
    if source.module != BASE_MODULE:
        for owned in sorted(OWNED_METHODS & set(methods)):
            yield Violation(
                code="RPL001",
                message=(
                    f"{name}.{owned} overrides a lifecycle method owned by "
                    "CTUPMonitor — timing and stream counters live in the "
                    "base class exactly once; implement the scheme through "
                    "the phase API instead"
                ),
                path=source.path,
                line=methods[owned].lineno,
                col=methods[owned].col_offset,
            )
    direct = "CTUPMonitor" in _base_names(node)
    if direct:
        provided = set(methods)
        for ancestor in project.ancestors(name):
            if ancestor.name != "CTUPMonitor":
                provided |= set(ancestor.methods)
        for required in PHASE_API:
            if required not in provided:
                yield Violation(
                    code="RPL001",
                    message=(
                        f"{name} subclasses CTUPMonitor but does not define "
                        f"{required}() — the phase API is the scheme "
                        "contract (maintain/access split, PR 1)"
                    ),
                    path=source.path,
                    line=node.lineno,
                    col=node.col_offset,
                )
    partial = methods.get("partial_top_k")
    if partial is not None:
        positional = len(partial.args.posonlyargs) + len(partial.args.args)
        if positional != 2 or partial.args.vararg is not None:
            yield Violation(
                code="RPL001",
                message=(
                    f"{name}.partial_top_k must keep the (self, m) "
                    "signature — the shard merger calls it positionally"
                ),
                path=source.path,
                line=partial.lineno,
                col=partial.col_offset,
            )


def _check_registry(
    source: SourceFile, project: ProjectIndex
) -> Iterator[Violation]:
    for cls_name, (path, line) in sorted(project.scheme_classes.items()):
        if path != source.path:
            continue
        if not project.is_descendant_of(cls_name, "CTUPMonitor"):
            yield Violation(
                code="RPL001",
                message=(
                    f"SCHEMES registers {cls_name}, which is not a "
                    "CTUPMonitor subclass — every registered scheme must "
                    "speak the monitor contract"
                ),
                path=source.path,
                line=line,
            )


def _base_names(node: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names
