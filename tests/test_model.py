"""Unit tests for the data model."""

import pytest

from repro.geometry import Point
from repro.model import LocationUpdate, Place, SafetyRecord, Unit


class TestPlace:
    def test_negative_required_protection_rejected(self):
        with pytest.raises(ValueError):
            Place(0, Point(0.5, 0.5), required_protection=-1)

    def test_zero_required_protection_allowed(self):
        assert Place(0, Point(0.5, 0.5), 0).required_protection == 0

    def test_frozen(self):
        p = Place(0, Point(0.5, 0.5), 1)
        with pytest.raises(AttributeError):
            p.required_protection = 5  # type: ignore[misc]

    def test_kind_defaults(self):
        assert Place(0, Point(0.5, 0.5), 1).kind == "place"


class TestUnit:
    def test_positive_range_required(self):
        with pytest.raises(ValueError):
            Unit(0, Point(0.5, 0.5), protection_range=0.0)

    def test_protection_region(self):
        u = Unit(0, Point(0.5, 0.5), 0.2)
        region = u.protection_region()
        assert region.center == Point(0.5, 0.5)
        assert region.radius == 0.2

    def test_protects_inside(self):
        u = Unit(0, Point(0.5, 0.5), 0.2)
        assert u.protects(Place(0, Point(0.6, 0.5), 1))

    def test_protects_boundary(self):
        u = Unit(0, Point(0.0, 0.0), 0.5)
        assert u.protects(Place(0, Point(0.5, 0.0), 1))

    def test_does_not_protect_outside(self):
        u = Unit(0, Point(0.5, 0.5), 0.1)
        assert not u.protects(Place(0, Point(0.7, 0.5), 1))

    def test_location_mutable(self):
        u = Unit(0, Point(0.5, 0.5), 0.1)
        u.location = Point(0.6, 0.6)
        assert u.location == Point(0.6, 0.6)


class TestLocationUpdate:
    def test_displacement(self):
        update = LocationUpdate(0, Point(0.0, 0.0), Point(3.0, 4.0))
        assert update.displacement() == 5.0

    def test_frozen(self):
        update = LocationUpdate(0, Point(0.0, 0.0), Point(1.0, 0.0))
        with pytest.raises(AttributeError):
            update.unit_id = 3  # type: ignore[misc]

    def test_default_timestamp(self):
        update = LocationUpdate(0, Point(0.0, 0.0), Point(1.0, 0.0))
        assert update.timestamp == 0.0


class TestSafetyRecord:
    def test_place_id_proxy(self):
        record = SafetyRecord(Place(42, Point(0.5, 0.5), 1), -3.0)
        assert record.place_id == 42
        assert record.safety == -3.0
