"""Parameter tuning heuristics and calibration."""

import pytest

from repro.bench import build_workload
from repro.core import CTUPConfig
from repro.core.tuning import DeltaChoice, choose_delta, suggest_granularity
from repro.geometry import Rect


class TestSuggestGranularity:
    def test_table3_neighbourhood(self):
        # the paper's setting: 15k places, range 0.1 -> granularity 10.
        assert suggest_granularity(15_000, 0.1) == 10

    def test_range_dominates_for_dense_sets(self):
        # even millions of places should not shrink cells below the disk.
        assert suggest_granularity(1_000_000, 0.1) == 10

    def test_population_caps_sparse_sets(self):
        # 500 places cannot usefully fill a 10x10 grid.
        value = suggest_granularity(500, 0.1)
        assert value < 10

    def test_minimum_of_two(self):
        assert suggest_granularity(5, 0.5) >= 2

    def test_larger_range_coarser_grid(self):
        fine = suggest_granularity(15_000, 0.05)
        coarse = suggest_granularity(15_000, 0.25)
        assert coarse < fine

    def test_respects_space_extent(self):
        wide = suggest_granularity(
            15_000, 0.1, space=Rect(0.0, 0.0, 2.0, 2.0)
        )
        assert wide >= suggest_granularity(15_000, 0.1)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            suggest_granularity(0, 0.1)
        with pytest.raises(ValueError):
            suggest_granularity(100, 0.0)


class TestChooseDelta:
    @pytest.fixture(scope="class")
    def workload(self):
        return build_workload(
            n_units=25, n_places=800, stream_length=150, seed=5
        )

    @pytest.fixture(scope="class")
    def config(self):
        return CTUPConfig(k=5, protection_range=0.1, granularity=6)

    def test_returns_candidate(self, workload, config):
        choice = choose_delta(workload, config, candidates=(0, 4, 8))
        assert choice.delta in (0, 4, 8)
        assert isinstance(choice, DeltaChoice)

    def test_best_has_lowest_cost(self, workload, config):
        choice = choose_delta(workload, config, candidates=(0, 4, 8))
        best_cost = choice.cost_of(choice.delta)
        for delta in (0, 4, 8):
            assert best_cost <= choice.cost_of(delta)

    def test_all_candidates_measured(self, workload, config):
        choice = choose_delta(workload, config, candidates=(0, 6))
        assert set(choice.results) == {0, 6}

    def test_wall_metric(self, workload, config):
        choice = choose_delta(
            workload, config, candidates=(0, 6), metric="wall"
        )
        assert choice.metric == "wall"
        assert choice.cost_of(choice.delta) > 0

    def test_unknown_metric_rejected(self, workload, config):
        with pytest.raises(ValueError):
            choose_delta(workload, config, candidates=(0,), metric="magic")

    def test_empty_candidates_rejected(self, workload, config):
        with pytest.raises(ValueError):
            choose_delta(workload, config, candidates=())

    def test_updates_prefix_respected(self, workload, config):
        choice = choose_delta(workload, config, candidates=(4,), updates=30)
        assert choice.results[4].n_updates == 30
