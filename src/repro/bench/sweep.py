"""Parameter sweeps (the x-axes of Figures 5-9)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.bench.harness import RunResult


@dataclass(frozen=True)
class SweepPoint:
    """One x-value of a sweep with the per-algorithm results."""

    x: float | int
    results: dict[str, RunResult]

    def avg_update_ms(self, algorithm: str) -> float:
        return self.results[algorithm].avg_update_ms


def sweep(
    values: Sequence,
    run_point: Callable[[object], dict[str, RunResult]],
) -> list[SweepPoint]:
    """Evaluate ``run_point`` at every x-value.

    ``run_point`` receives the x-value and returns per-algorithm
    results; keeping it a callback lets each figure decide what the
    x-axis changes (k, granularity, range, |P|, Δ) and what stays fixed.
    """
    return [SweepPoint(x=value, results=run_point(value)) for value in values]
