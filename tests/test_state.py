"""The universal state layer: snapshots, the journal, crash recovery.

The headline guarantee under test: for **every** registered scheme (and
the sharded wrapper), killing a checkpointed run at an arbitrary batch
boundary and resuming from the directory produces a monitor that is
*bit-identical* to the uninterrupted run — same top-k (ids and
safeties), same SK, same work counters, same I/O accounting.
"""

from __future__ import annotations

import json
import pathlib
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import SCHEMES, DurabilitySpec, ShardSpec, open_session
from repro.core import CTUPConfig
from repro.ext import DecayCTUP, ExtentCTUP, ExtentPlace, ThresholdCTUP
from repro.geometry import Rect
from repro.state import (
    CheckpointPolicy,
    CheckpointStore,
    SnapshotError,
    Snapshottable,
    UpdateJournal,
    fingerprint_places,
    fingerprint_places_v1,
    restore_monitor,
    snapshot_monitor,
)
from repro.workloads import (
    RandomWalkMobility,
    generate_places,
    generate_units,
    record_stream,
)

CONFIG = CTUPConfig(k=5, delta=3, protection_range=0.1, granularity=8)
PLACES = generate_places(400, seed=21)
STREAM = record_stream(
    RandomWalkMobility(
        generate_units(24, CONFIG.protection_range, seed=22),
        step=0.03,
        seed=23,
    ),
    80,
)
BATCH = 8


def make_units():
    """Fresh unit objects at their initial (pre-stream) positions."""
    return generate_units(24, CONFIG.protection_range, seed=22)


def state_fingerprint(monitor, session=None):
    """Everything "bit-identical" quantifies over, as one comparable."""
    data = {
        "topk": [(r.place_id, r.safety) for r in monitor.top_k()],
        "sk": monitor.sk(),
        "counters": {
            name: value
            for name, value in monitor.counters.as_dict().items()
            if not name.startswith("time_")
        },
    }
    store = getattr(monitor, "store", None)
    if store is not None:
        io = store.io_stats
        data["io"] = (
            io.page_reads,
            io.buffered_reads,
            io.page_writes,
            io.array_hits,
        )
    if session is not None:
        data["updates_processed"] = session.updates_processed
    return data


def run_straight(scheme, shards, total=80, batch_size=BATCH):
    """The uninterrupted reference run (no checkpointing at all)."""
    session = open_session(
        scheme,
        places=PLACES,
        units=make_units(),
        config=CONFIG,
        shard=ShardSpec(shards=shards),
        batch_size=batch_size,
    )
    session.start()
    for update in STREAM.updates[:total]:
        session.feed(update)
    session.flush()
    return state_fingerprint(session.monitor, session)


_STRAIGHT_CACHE: dict[tuple, dict] = {}


def straight(scheme, shards):
    key = (scheme, shards)
    if key not in _STRAIGHT_CACHE:
        _STRAIGHT_CACHE[key] = run_straight(scheme, shards)
    return _STRAIGHT_CACHE[key]


def crash_and_resume(
    scheme, shards, kill, directory, total=80, every=2, batch_size=BATCH
):
    """Feed ``kill`` updates, die without flushing, resume, finish."""
    session = open_session(
        scheme,
        places=PLACES,
        units=make_units(),
        config=CONFIG,
        shard=ShardSpec(shards=shards),
        batch_size=batch_size,
        durability=DurabilitySpec(directory, every=every),
    )
    session.start()
    for update in STREAM.updates[:kill]:
        session.feed(update)
    # the crash: no flush, no close-snapshot. Every journal record is
    # already fsynced; dropping the handle is just harness hygiene.
    session.journal.close()
    resumed = open_session(
        scheme,
        places=PLACES,
        units=make_units(),
        config=CONFIG,
        shard=ShardSpec(shards=shards),
        batch_size=batch_size,
        durability=DurabilitySpec(directory, resume=True),
    )
    assert resumed.started, "resume must hand back a started session"
    for update in STREAM.updates[kill:total]:
        resumed.feed(update)
    resumed.flush()
    return state_fingerprint(resumed.monitor, resumed)


# -- the headline guarantee ---------------------------------------------


class TestCrashRecovery:
    @pytest.mark.parametrize("shards", [0, 1, 4])
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    @given(boundary=st.integers(min_value=1, max_value=8))
    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_kill_at_batch_boundary_resumes_bit_identical(
        self, scheme, shards, boundary
    ):
        kill = BATCH * boundary
        with tempfile.TemporaryDirectory() as directory:
            resumed = crash_and_resume(scheme, shards, kill, directory)
        assert resumed == straight(scheme, shards)

    def test_mid_batch_kill_replays_the_pending_tail(self, tmp_path):
        # 21 is not a batch boundary: three journaled-but-unflushed
        # updates must come back as the resumed session's pending burst.
        resumed = crash_and_resume("opt", 4, 21, tmp_path)
        assert resumed == straight("opt", 4)

    def test_journal_only_resume_needs_no_snapshot(self, tmp_path):
        # checkpoint_every=0 and no close: the crash leaves a journal
        # but zero snapshots — recovery replays from scratch.
        resumed = crash_and_resume("basic", 0, 24, tmp_path, every=0)
        assert not CheckpointStore(tmp_path).snapshot_paths()
        assert resumed == straight("basic", 0)

    def test_fresh_start_wipes_the_directory(self, tmp_path):
        crash_and_resume("naive", 0, 16, tmp_path)
        session = open_session(
            "naive",
            places=PLACES,
            units=make_units(),
            config=CONFIG,
            batch_size=BATCH,
            durability=tmp_path,
        )
        assert not CheckpointStore(tmp_path).snapshot_paths()
        session.start()
        session.feed(STREAM.updates[0])
        assert session.journal.last_seq == 1  # seq restarted: old run gone

    def test_close_writes_the_on_close_snapshot(self, tmp_path):
        with open_session(
            "opt",
            places=PLACES,
            units=make_units(),
            config=CONFIG,
            batch_size=BATCH,
            durability=DurabilitySpec(tmp_path),
        ) as session:
            session.start()
            for update in STREAM.updates[:10]:
                session.feed(update)
        document = CheckpointStore(tmp_path).latest()
        assert document is not None
        assert document["session"]["updates_processed"] == 10


class TestOpenSessionValidation:
    def test_resume_requires_a_directory(self):
        with pytest.warns(DeprecationWarning, match="flat keyword"):
            with pytest.raises(ValueError, match="checkpoint_dir"):
                open_session(
                    "opt",
                    places=PLACES,
                    units=make_units(),
                    config=CONFIG,
                    resume=True,
                )

    def test_resume_rejects_an_adopted_monitor(self, tmp_path):
        monitor = SCHEMES["opt"](CONFIG, PLACES, make_units())
        with pytest.raises(ValueError, match="own monitor"):
            open_session(
                monitor=monitor,
                durability=DurabilitySpec(tmp_path, resume=True),
            )

    def test_resume_requires_places_and_units(self, tmp_path):
        with pytest.raises(ValueError, match="places"):
            open_session(
                "opt", durability=DurabilitySpec(tmp_path, resume=True)
            )


# -- the snapshot protocol ----------------------------------------------


def _ext_factories():
    return {
        "threshold": lambda c, p, u: ThresholdCTUP(c, p, u, tau=-5.0),
        "decay": DecayCTUP,
    }


class TestSnapshottable:
    def test_every_scheme_satisfies_the_protocol(self):
        units = make_units()
        monitors = [
            factory(CONFIG, PLACES, units)
            for factory in (*SCHEMES.values(), *_ext_factories().values())
        ]
        for monitor in monitors:
            assert isinstance(monitor, Snapshottable), type(monitor)
            assert "counters" in monitor.state_fields()

    def test_sharded_and_extent_satisfy_it_structurally(self):
        from repro.shard.monitor import ShardedMonitor

        sharded = ShardedMonitor(CONFIG, PLACES, make_units(), shards=2)
        assert isinstance(sharded, Snapshottable)
        extent = ExtentCTUP(CONFIG, _extent_places(), make_units())
        assert isinstance(extent, Snapshottable)

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_roundtrip_through_json_is_bit_identical(self, scheme):
        monitor = SCHEMES[scheme](CONFIG, PLACES, make_units())
        monitor.initialize()
        for update in STREAM.prefix(40):
            monitor.process(update)
        document = json.loads(json.dumps(snapshot_monitor(monitor)))
        restored = restore_monitor(
            document, places=PLACES, units=make_units()
        )
        assert state_fingerprint(restored) == state_fingerprint(monitor)
        # both must keep evolving identically after the cut.
        for update in STREAM.updates[40:60]:
            monitor.process(update)
            restored.process(update)
        assert state_fingerprint(restored) == state_fingerprint(monitor)

    @pytest.mark.parametrize("name", sorted(_ext_factories()))
    def test_ext_schemes_roundtrip_via_factory(self, name):
        factory = _ext_factories()[name]
        monitor = factory(CONFIG, PLACES, make_units())
        monitor.initialize()
        for update in STREAM.prefix(40):
            monitor.process(update)
        document = json.loads(json.dumps(snapshot_monitor(monitor)))
        restored = restore_monitor(
            document, places=PLACES, units=make_units(), factory=factory
        )
        assert state_fingerprint(restored) == state_fingerprint(monitor)

    def test_extent_roundtrips(self):
        places = _extent_places()
        monitor = ExtentCTUP(CONFIG, places, make_units())
        monitor.initialize()
        for update in STREAM.prefix(40):
            monitor.process(update)
        document = json.loads(json.dumps(snapshot_monitor(monitor)))
        restored = restore_monitor(
            document,
            places=places,
            units=make_units(),
            factory=ExtentCTUP,
        )
        assert [
            (r.place_id, r.safety) for r in restored.top_k()
        ] == [(r.place_id, r.safety) for r in monitor.top_k()]
        assert restored.sk() == monitor.sk()

    def test_restore_against_wrong_places_rejected(self):
        monitor = SCHEMES["opt"](CONFIG, PLACES, make_units())
        monitor.initialize()
        document = snapshot_monitor(monitor)
        with pytest.raises(SnapshotError, match="place set"):
            restore_monitor(
                document,
                places=generate_places(400, seed=999),
                units=make_units(),
            )

    def test_unknown_format_rejected(self):
        monitor = SCHEMES["opt"](CONFIG, PLACES, make_units())
        monitor.initialize()
        document = dict(snapshot_monitor(monitor), format=99)
        with pytest.raises(SnapshotError, match="format"):
            restore_monitor(document, places=PLACES, units=make_units())


def _extent_places():
    import random

    rng = random.Random(31)
    places = []
    for i in range(200):
        cx, cy = rng.random(), rng.random()
        hw, hh = rng.uniform(0, 0.01), rng.uniform(0, 0.01)
        places.append(
            ExtentPlace(
                i,
                Rect(
                    max(0.0, cx - hw),
                    max(0.0, cy - hh),
                    min(1.0, cx + hw),
                    min(1.0, cy + hh),
                ),
                rng.choice([0, 1, 2, 5]),
            )
        )
    return places


# -- the journal --------------------------------------------------------


class TestJournal:
    def test_seq_continues_across_reopen(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with UpdateJournal(path) as journal:
            journal.append_update(STREAM.updates[0], batched=False)
            journal.append_update(STREAM.updates[1], batched=True)
            assert journal.append_flush() == 3
        with UpdateJournal(path) as journal:
            assert journal.last_seq == 3
            assert journal.append_flush() == 4

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with UpdateJournal(path) as journal:
            journal.append_update(STREAM.updates[0], batched=False)
            journal.append_update(STREAM.updates[1], batched=False)
        with open(path, "a") as handle:
            handle.write('{"q": 3, "op": "u", "u"')  # the torn write
        with UpdateJournal(path) as journal:
            records = list(journal.records())
            assert [r.seq for r in records] == [1, 2]
            assert journal.append_flush() == 3

    def test_tail_filters_already_applied_records(self, tmp_path):
        with UpdateJournal(tmp_path / "journal.jsonl") as journal:
            for update in STREAM.prefix(5):
                journal.append_update(update, batched=False)
            tail = list(journal.tail(3))
            assert [r.seq for r in tail] == [4, 5]

    def test_update_payload_roundtrips_exactly(self, tmp_path):
        original = STREAM.updates[0]
        with UpdateJournal(tmp_path / "journal.jsonl") as journal:
            journal.append_update(original, batched=False)
            record = next(iter(journal.records()))
        assert record.update.unit_id == original.unit_id
        assert record.update.old_location == original.old_location
        assert record.update.new_location == original.new_location
        assert record.update.timestamp == original.timestamp


class TestCheckpointPolicy:
    def test_negative_cadence_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointPolicy(directory=tmp_path, every_batches=-1)

    def test_empty_directory_has_no_latest(self, tmp_path):
        assert CheckpointStore(tmp_path).latest() is None


# -- fingerprints -------------------------------------------------------


class TestFingerprint:
    def test_v2_hashes_exact_float_bits(self):
        assert fingerprint_places(PLACES) != fingerprint_places_v1(PLACES)
        assert fingerprint_places(PLACES) == fingerprint_places(list(PLACES))

    def test_different_places_differ(self):
        other = generate_places(400, seed=999)
        assert fingerprint_places(PLACES) != fingerprint_places(other)

    def test_version_1_fingerprints_still_verify(self):
        monitor = SCHEMES["opt"](CONFIG, PLACES, make_units())
        monitor.initialize()
        document = dict(
            snapshot_monitor(monitor),
            fingerprint_version=1,
            places_fingerprint=fingerprint_places_v1(PLACES),
        )
        restored = restore_monitor(document, places=PLACES, units=make_units())
        assert restored.topk_ids() == monitor.topk_ids()

    def test_unknown_fingerprint_version_rejected(self):
        monitor = SCHEMES["opt"](CONFIG, PLACES, make_units())
        monitor.initialize()
        document = dict(snapshot_monitor(monitor), fingerprint_version=3)
        with pytest.raises(SnapshotError, match="fingerprint"):
            restore_monitor(document, places=PLACES, units=make_units())


# -- the committed format-1 fixture -------------------------------------


class TestV1Compat:
    FIXTURE = pathlib.Path(__file__).parent / "data" / "checkpoint_v1.json"

    def test_committed_v1_checkpoint_still_loads(self, small_places):
        from repro.persist import restore_optctup

        monitor = restore_optctup(self.FIXTURE.read_text(), small_places)
        assert monitor.topk_ids() == [21, 327, 58, 277, 284]
        assert monitor.sk() == -9.0

    def test_restored_v1_monitor_keeps_monitoring(
        self, small_places, small_stream, small_oracle
    ):
        from repro.persist import restore_optctup
        from tests.conftest import assert_valid_topk

        monitor = restore_optctup(self.FIXTURE.read_text(), small_places)
        for update in small_stream.prefix(60):
            small_oracle.apply(update)
        for update in small_stream.updates[60:90]:
            small_oracle.apply(update)
            monitor.process(update)
        assert_valid_topk(small_oracle, monitor, monitor.config.k)
