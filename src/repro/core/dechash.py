"""DecHash — the hash table behind the Decrease Once Optimization (§IV-B).

``DecHash`` records (unit, cell) pairs: the presence of a pair means the
cell's lower bound has already been decreased on account of that unit and
must not be decreased for it again. Pairs are removed when the unit's
new protection region fully contains the cell (N→F and P→F-with-pair in
Table II), at which point the bound is raised and the unit may legally
cause one future decrease again.

One detail the paper leaves implicit: when a cell is *accessed* its
lower bound is recomputed exactly from the current safeties. Keeping the
cell's hash pairs across that refresh would be unsound — a unit whose
pair survived could later leave the cell without the bound ever being
decreased for it, even though the fresh bound assumed it was still
protecting. :meth:`clear_cell` therefore drops all pairs of a cell when
the cell is accessed, re-arming one decrease per unit for the new epoch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.grid.partition import CellId

if TYPE_CHECKING:
    from repro.grid.partition import GridPartition


class DecHash:
    """The (unit, cell) pair set of the Decrease Once Optimization."""

    def __init__(self) -> None:
        self._by_cell: dict[CellId, set[int]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, pair: tuple[int, CellId]) -> bool:
        unit_id, cell = pair
        return self.contains(unit_id, cell)

    def contains(self, unit_id: int, cell: CellId) -> bool:
        """Whether this unit already caused a decrease of this cell."""
        units = self._by_cell.get(cell)
        return units is not None and unit_id in units

    def insert(self, unit_id: int, cell: CellId) -> bool:
        """Record a decrease; returns False if the pair was already there."""
        units = self._by_cell.setdefault(cell, set())
        if unit_id in units:
            return False
        units.add(unit_id)
        self._size += 1
        return True

    def remove(self, unit_id: int, cell: CellId) -> bool:
        """Forget the pair (the unit fully covers the cell again).

        Returns whether the pair was present; removing an absent pair is
        legal (the N→F transition *attempts* a removal unconditionally).
        """
        units = self._by_cell.get(cell)
        if units is None or unit_id not in units:
            return False
        units.remove(unit_id)
        self._size -= 1
        if not units:
            del self._by_cell[cell]
        return True

    def clear_cell(self, cell: CellId) -> int:
        """Drop every pair of ``cell`` (called when the cell is accessed).

        Returns the number of pairs dropped.
        """
        units = self._by_cell.pop(cell, None)
        if units is None:
            return 0
        self._size -= len(units)
        return len(units)

    def pairs_of_cell(self, cell: CellId) -> set[int]:
        """Unit ids holding a pair with ``cell`` (diagnostics)."""
        return set(self._by_cell.get(cell, ()))

    def clear(self) -> None:
        self._by_cell.clear()
        self._size = 0

    def export_pairs(self, grid: "GridPartition") -> list[list[Any]]:
        """JSON-codable ``[linear cell, [unit ids]]`` rows, fully sorted.

        The pair set is semantically unordered (membership tests only),
        so the export canonicalizes: cells ascending, unit ids ascending.
        """
        return [
            [grid.linear(cell), sorted(self._by_cell[cell])]
            for cell in sorted(self._by_cell, key=grid.linear)
        ]

    @classmethod
    def from_pairs(
        cls, rows: Iterable[Sequence[Any]], grid: "GridPartition"
    ) -> "DecHash":
        """Rebuild a pair set from :meth:`export_pairs` rows."""
        out = cls()
        for linear, unit_ids in rows:
            cell = grid.from_linear(int(linear))
            for unit_id in unit_ids:
                out.insert(int(unit_id), cell)
        return out
