"""Worklist dataflow solving over :mod:`repro.lint.flow.cfg` graphs.

Two generic solvers (forward and backward) plus the three analyses the
path-aware rules build on:

* reaching definitions — which assignment of a name can reach a block;
* liveness — which names are read downstream of a block;
* :class:`FlagLattice` — the small "possible abstract values" lattice
  the safety rules use for *resource written / flushed / synced*,
  *lock held*, and *counter charged* facts. A state maps a key to the
  frozenset of values it may hold along some path into the block, so
  "definitely X" is ``state[key] == {"X"}`` and "may be Y" is
  ``"Y" in state[key]`` — must- and may-questions over one lattice.

Exception edges carry the *pre*-state of the raising statement (the
statement may not have completed), which is what makes "the charge is
skipped only on the except edge" detectable at all.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Callable, Iterable, Mapping, Sequence

from repro.lint.flow.cfg import EDGE_EXCEPTION, CFG, Block, scan_roots


class _Bottom:
    """Unreachable-state sentinel (identity element for every join)."""

    def __repr__(self) -> str:
        return "BOTTOM"


#: the unique unreachable-state marker; solvers start every non-entry
#: block here and rules treat it as "no path reaches this block".
BOTTOM = _Bottom()

#: one abstract state: key -> set of values the key may hold.
FlagState = Mapping[str, frozenset[str]]

_Transfer = Callable[[Block, FlagState], FlagState]


class FlagLattice:
    """Pointwise may-union lattice over :data:`FlagState` maps."""

    def __init__(self, default: str) -> None:
        self.default = default

    def initial(self, keys: Iterable[str] = ()) -> FlagState:
        return {key: frozenset({self.default}) for key in keys}

    def read(self, state: FlagState, key: str) -> frozenset[str]:
        return state.get(key, frozenset({self.default}))

    def write(self, state: FlagState, key: str, value: str) -> FlagState:
        updated = dict(state)
        updated[key] = frozenset({value})
        return updated

    def join(self, states: Sequence[FlagState]) -> FlagState:
        merged: dict[str, frozenset[str]] = {}
        seen: set[str] = set()
        for state in states:
            seen.update(state)
        for key in seen:
            merged[key] = frozenset().union(
                *(self.read(state, key) for state in states)
            )
        return merged

    def definitely(self, state: FlagState, key: str, value: str) -> bool:
        return self.read(state, key) == frozenset({value})

    def may(self, state: FlagState, key: str, value: str) -> bool:
        return value in self.read(state, key)


def solve_forward(
    cfg: CFG,
    init: FlagState,
    transfer: _Transfer,
    join: Callable[[Sequence[FlagState]], FlagState],
    *,
    exception_transfer: _Transfer | None = None,
) -> dict[int, FlagState | _Bottom]:
    """In-states of every block under a forward monotone analysis.

    ``transfer`` produces the normal out-state of a block from its
    in-state; ``exception_transfer`` (default: identity, i.e. the
    pre-state) produces the state carried along ``exception`` edges.
    Unreachable blocks keep :data:`BOTTOM`.
    """
    in_states: dict[int, FlagState | _Bottom] = {
        block_id: BOTTOM for block_id in cfg.blocks
    }
    in_states[cfg.entry] = init
    worklist: deque[int] = deque([cfg.entry])
    queued: set[int] = {cfg.entry}
    while worklist:
        block_id = worklist.popleft()
        queued.discard(block_id)
        state_in = in_states[block_id]
        if isinstance(state_in, _Bottom):
            continue
        block = cfg.blocks[block_id]
        out_normal = transfer(block, state_in)
        for edge in cfg.successors(block_id):
            if edge.kind == EDGE_EXCEPTION:
                carried = (
                    exception_transfer(block, state_in)
                    if exception_transfer is not None
                    else state_in
                )
            else:
                carried = out_normal
            previous = in_states[edge.dst]
            if isinstance(previous, _Bottom):
                merged: FlagState = carried
            else:
                merged = join([previous, carried])
            if merged != previous:
                in_states[edge.dst] = merged
                if edge.dst not in queued:
                    worklist.append(edge.dst)
                    queued.add(edge.dst)
    return in_states


def solve_backward(
    cfg: CFG,
    init: frozenset[str],
    transfer: Callable[[Block, frozenset[str]], frozenset[str]],
) -> dict[int, frozenset[str]]:
    """In-facts of every block under a backward union analysis
    (the liveness shape: out = union of successor ins)."""
    in_facts: dict[int, frozenset[str]] = {
        block_id: frozenset() for block_id in cfg.blocks
    }
    in_facts[cfg.exit] = init
    worklist: deque[int] = deque(sorted(cfg.blocks, reverse=True))
    queued: set[int] = set(worklist)
    while worklist:
        block_id = worklist.popleft()
        queued.discard(block_id)
        out_fact: frozenset[str] = frozenset()
        for edge in cfg.successors(block_id):
            out_fact |= in_facts[edge.dst]
        if block_id == cfg.exit:
            out_fact |= init
        merged = transfer(cfg.blocks[block_id], out_fact)
        if merged != in_facts[block_id]:
            in_facts[block_id] = merged
            for edge in cfg.predecessors(block_id):
                if edge.src not in queued:
                    worklist.append(edge.src)
                    queued.add(edge.src)
    return in_facts


# -- name helpers ---------------------------------------------------------


def _assigned_names(node: ast.AST | None) -> frozenset[str]:
    """Plain names a statement (re)binds."""
    if node is None:
        return frozenset()
    bound: set[str] = set()
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = [*node.targets]
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        targets = [node.target]
    elif isinstance(node, (ast.With, ast.AsyncWith)):
        targets = [
            item.optional_vars
            for item in node.items
            if item.optional_vars is not None
        ]
    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        bound.add(node.name)
    elif isinstance(node, (ast.Import, ast.ImportFrom)):
        for alias in node.names:
            bound.add((alias.asname or alias.name).split(".")[0])
    for target in targets:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                bound.add(sub.id)
    return frozenset(bound)


def _read_names(node: ast.AST | None) -> frozenset[str]:
    """Plain names a statement reads (Name nodes in Load context)."""
    if node is None:
        return frozenset()
    reads: set[str] = set()
    for root in scan_roots(node):
        for sub in ast.walk(root):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                reads.add(sub.id)
    return frozenset(reads)


# -- canned analyses ------------------------------------------------------


def reaching_definitions(
    cfg: CFG,
) -> dict[int, frozenset[tuple[str, int]]]:
    """In-state per block: the ``(name, defining block id)`` pairs that
    may reach it. Function parameters appear as definitions at entry."""
    lattice = FlagLattice(default="?")

    def transfer(block: Block, state: FlagState) -> FlagState:
        names = _assigned_names(block.node)
        if not names:
            return state
        updated = dict(state)
        for name in names:
            updated[name] = frozenset({str(block.block_id)})
        return updated

    in_states = solve_forward(cfg, {}, transfer, lattice.join)
    result: dict[int, frozenset[tuple[str, int]]] = {}
    for block_id, state in in_states.items():
        if isinstance(state, _Bottom):
            result[block_id] = frozenset()
            continue
        pairs: set[tuple[str, int]] = set()
        for name, sites in state.items():
            for site in sites:
                if site != "?":
                    pairs.add((name, int(site)))
        result[block_id] = frozenset(pairs)
    return result


def liveness(cfg: CFG) -> dict[int, frozenset[str]]:
    """Live-in names per block (read on some downstream path before
    being rebound)."""

    def transfer(block: Block, out_fact: frozenset[str]) -> frozenset[str]:
        return _read_names(block.node) | (out_fact - _assigned_names(block.node))

    return solve_backward(cfg, frozenset(), transfer)
