"""Fan-out routing of location updates to shards.

For one unit move the only shards whose monitoring state can change are
those owning at least one cell inside the old or the new protection
disk's candidate block (the same ``O(ceil(R/w))``-sized block
:class:`~repro.grid.partition.CircleStencil` classifies for bound
maintenance). Every other shard keeps all its cell relations at ``N`` on
both sides of the move — no safety changes, no bound actions — and only
needs its unit positions synchronised.

The router is deliberately conservative at block granularity: a corner
cell of the block may not actually intersect the disk, in which case the
target shard runs a maintain phase that turns out to be a no-op. That
costs a little work, never correctness, and keeps routing to two
``block_of`` computations and one ``np.unique`` per disk.
"""

from __future__ import annotations

from repro.geometry import Point
from repro.shard.plan import ShardPlan


class ShardRouter:
    """Maps a unit move to the set of shards that must process it."""

    def __init__(self, plan: ShardPlan, radius: float) -> None:
        if radius < 0:
            raise ValueError(f"negative protection radius: {radius}")
        self.plan = plan
        self.radius = radius
        self._stencil = plan.grid.stencil(radius)
        #: number of updates routed, and total full deliveries produced —
        #: ``fanout_total / updates_routed`` is the mean shard fanout.
        self.updates_routed = 0
        self.fanout_total = 0

    def shards_touching(self, center: Point) -> frozenset[int]:
        """Shards owning any candidate cell of a disk at ``center``."""
        return self.plan.shards_in_block(self._stencil.block_of(center))

    def route(self, old: Point, new: Point) -> tuple[int, ...]:
        """Shard ids (ascending) that must run their maintain phase for
        a move from ``old`` to ``new``; all other shards only need the
        unit-position sync."""
        targets = self.shards_touching(old) | self.shards_touching(new)
        self.updates_routed += 1
        self.fanout_total += len(targets)
        return tuple(sorted(targets))
