"""The flow-sensitive reprolint layer: CFG construction, the dataflow
solver, the call graph, the path-aware rules RPL011-RPL015 (bad and
good fixtures each), the SARIF reporter, the incremental cache
(cold == warm), the --changed mode, suppression edge cases, and — the
self-check — reprolint analysing its own flow package."""

import ast
import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.lint import (
    LintCache,
    LintConfig,
    lint_paths,
    lint_sources,
    render_sarif,
)
from repro.lint.cli import main as lint_main
from repro.lint.engine import ProjectIndex, SourceFile
from repro.lint.flow.callgraph import CallGraph, function_summaries
from repro.lint.flow.cfg import (
    EDGE_EXCEPTION,
    EDGE_LOOP,
    EDGE_RAISE,
    EDGE_RETURN,
    NORMAL_EXIT_KINDS,
    build_cfg,
    scan_roots,
)
from repro.lint.flow.dataflow import (
    BOTTOM,
    FlagLattice,
    liveness,
    reaching_definitions,
    solve_forward,
)
from repro.lint.registry import RULES, rule_signature

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def src(text, module="repro.core.fixture", path="fixture.py"):
    return SourceFile(path, textwrap.dedent(text), module)


def run_rules(sources, *select):
    config = LintConfig(select=tuple(select))
    return lint_sources(sources, config)


def codes_of(result):
    return [v.code for v in result.violations]


def fn_cfg(text):
    """The CFG of the single function in ``text``."""
    tree = ast.parse(textwrap.dedent(text))
    node = tree.body[0]
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(node)


# -- CFG construction ----------------------------------------------------


class TestCfg:
    def test_linear_body_single_fallthrough_exit(self):
        cfg = fn_cfg(
            """
            def f(x):
                y = x + 1
                z = y * 2
            """
        )
        kinds = [edge.kind for edge in cfg.exit_edges()]
        assert kinds == ["fallthrough"]
        assert len(list(cfg.statement_blocks())) == 2

    def test_if_else_true_false_edges(self):
        cfg = fn_cfg(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        tests = [b for b in cfg.blocks.values() if b.label == "test"]
        assert len(tests) == 1
        out_kinds = {e.kind for e in cfg.successors(tests[0].block_id)}
        assert out_kinds == {"true", "false"}
        assert [e.kind for e in cfg.exit_edges()] == [EDGE_RETURN]

    def test_while_loop_back_edge(self):
        cfg = fn_cfg(
            """
            def f(n):
                while n:
                    n -= 1
            """
        )
        assert any(
            edge.kind == EDGE_LOOP
            for edges in [cfg.successors(b) for b in cfg.blocks]
            for edge in edges
        )

    def test_early_return_gives_two_exit_edges(self):
        cfg = fn_cfg(
            """
            def f(x):
                if x:
                    return 1
                x = 2
            """
        )
        kinds = sorted(edge.kind for edge in cfg.exit_edges())
        assert kinds == ["fallthrough", "return"]
        assert set(kinds) <= NORMAL_EXIT_KINDS

    def test_try_body_statements_get_exception_edges(self):
        cfg = fn_cfg(
            """
            def f():
                try:
                    risky()
                    more()
                except ValueError:
                    recover()
            """
        )
        handlers = [
            b.block_id for b in cfg.blocks.values() if b.label == "except"
        ]
        assert len(handlers) == 1
        into_handler = [
            e for e in cfg.predecessors(handlers[0]) if e.kind == EDGE_EXCEPTION
        ]
        # both try-body statements may raise into the handler.
        assert len(into_handler) == 2

    def test_bare_raise_is_a_raise_exit(self):
        cfg = fn_cfg(
            """
            def f():
                raise ValueError("no")
            """
        )
        assert [e.kind for e in cfg.exit_edges()] == [EDGE_RAISE]

    def test_return_in_try_runs_finally(self):
        cfg = fn_cfg(
            """
            def f():
                try:
                    return 1
                finally:
                    cleanup()
            """
        )
        # the return edge must leave from the re-lowered finally body,
        # not from the return statement itself.
        (ret_edge,) = [e for e in cfg.exit_edges() if e.kind == EDGE_RETURN]
        block = cfg.blocks[ret_edge.src]
        assert isinstance(block.node, ast.Expr)  # the cleanup() call

    def test_with_blocks_record_lexical_items(self):
        cfg = fn_cfg(
            """
            def f(self):
                with self._lock:
                    inner()
                outer()
            """
        )
        inner_blocks = [
            b
            for b in cfg.statement_blocks()
            if isinstance(b.node, ast.Expr) and b.withitems
        ]
        assert len(inner_blocks) == 1
        expr = inner_blocks[0].withitems[0].context_expr
        assert isinstance(expr, ast.Attribute) and expr.attr == "_lock"

    def test_unreachable_code_after_return_is_dropped(self):
        cfg = fn_cfg(
            """
            def f():
                return 1
                never()
            """
        )
        stmts = [b.node for b in cfg.statement_blocks()]
        assert all(isinstance(node, ast.Return) for node in stmts)

    def test_scan_roots_for_header_evaluates_only_iter(self):
        tree = ast.parse("for x in items:\n    body()\n")
        (roots,) = [scan_roots(tree.body[0])]
        assert len(roots) == 1
        assert isinstance(roots[0], ast.Name) and roots[0].id == "items"

    def test_scan_roots_with_header_evaluates_context_exprs(self):
        tree = ast.parse("with open(p) as h, lock:\n    body()\n")
        roots = scan_roots(tree.body[0])
        assert len(roots) == 2


# -- the dataflow solver -------------------------------------------------


class TestDataflow:
    def test_flag_lattice_join_and_queries(self):
        lattice = FlagLattice(default="clean")
        a = lattice.write(lattice.initial(["k"]), "k", "written")
        b = lattice.initial(["k"])
        merged = lattice.join([a, b])
        assert merged["k"] == frozenset({"written", "clean"})
        assert lattice.may(merged, "k", "written")
        assert not lattice.definitely(merged, "k", "written")
        assert lattice.definitely(a, "k", "written")

    def test_forward_solver_merges_branches(self):
        cfg = fn_cfg(
            """
            def f(x):
                if x:
                    mark()
                done()
            """
        )
        lattice = FlagLattice(default="no")

        def transfer(block, state):
            node = block.node
            if node is not None and "mark" in ast.dump(node):
                return lattice.write(state, "m", "yes")
            return state

        in_states = solve_forward(
            cfg, lattice.initial(["m"]), transfer, lattice.join
        )
        (done_block,) = [
            b
            for b in cfg.statement_blocks()
            if b.node is not None and "done" in ast.dump(b.node)
        ]
        state = in_states[done_block.block_id]
        assert state["m"] == frozenset({"yes", "no"})

    def test_exception_edges_carry_pre_state(self):
        cfg = fn_cfg(
            """
            def f():
                try:
                    charge()
                except ValueError:
                    handled()
            """
        )
        lattice = FlagLattice(default="0")

        def transfer(block, state):
            node = block.node
            if node is not None and "charge" in ast.dump(node):
                return lattice.write(state, "c", "1")
            return state

        in_states = solve_forward(
            cfg, lattice.initial(["c"]), transfer, lattice.join
        )
        (handler,) = [
            b for b in cfg.blocks.values() if b.label == "except"
        ]
        # the handler sees the state from *before* charge() completed.
        assert in_states[handler.block_id]["c"] == frozenset({"0"})

    def test_unreachable_blocks_stay_bottom(self):
        cfg = fn_cfg(
            """
            def f():
                return 1
                never()
            """
        )
        lattice = FlagLattice(default="x")
        in_states = solve_forward(
            cfg, lattice.initial(["k"]), lambda b, s: s, lattice.join
        )
        reachable = [s for s in in_states.values() if s is not BOTTOM]
        assert reachable  # entry at least

    def test_reaching_definitions_tracks_branch_defs(self):
        cfg = fn_cfg(
            """
            def f(x):
                if x:
                    y = 1
                else:
                    y = 2
                return y
            """
        )
        defs = reaching_definitions(cfg)
        (ret_block,) = [
            b
            for b in cfg.statement_blocks()
            if isinstance(b.node, ast.Return)
        ]
        y_sites = {
            site for name, site in defs[ret_block.block_id] if name == "y"
        }
        assert len(y_sites) == 2

    def test_liveness_sees_loop_reads(self):
        cfg = fn_cfg(
            """
            def f(n, step):
                while n:
                    n -= step
                return n
            """
        )
        live_at_entry = liveness(cfg)[cfg.entry]
        assert {"n", "step"} <= live_at_entry


# -- the call graph ------------------------------------------------------


class TestCallGraph:
    def _summaries(self, text, module="repro.core.fixture"):
        tree = ast.parse(textwrap.dedent(text))
        return function_summaries(tree, module, "fixture.py")

    def test_nested_defs_fold_into_enclosing_function(self):
        summaries = self._summaries(
            """
            def outer():
                def closure():
                    inner_call()
                closure()
            """
        )
        (outer,) = summaries
        assert outer.qualname == "outer"
        callees = {site.callee for site in outer.calls}
        assert {"inner_call", "closure"} <= callees

    def test_name_kind_resolves_within_module(self):
        summaries = self._summaries(
            """
            def helper():
                pass

            def caller():
                helper()
            """
        )
        graph = CallGraph(summaries)
        caller = graph.find("repro.core.fixture", "caller")
        (site,) = caller.calls
        (target,) = graph.resolve(caller, site)
        assert target.qualname == "helper"

    def test_self_kind_resolves_through_ancestors(self):
        base = src(
            """
            class Base:
                def helper(self):
                    pass
            """,
            module="repro.core.base",
            path="base.py",
        )
        sub = src(
            """
            class Sub(Base):
                def caller(self):
                    self.helper()
            """,
            module="repro.core.sub",
            path="sub.py",
        )
        project = ProjectIndex([base, sub], LintConfig())
        graph = project.callgraph
        caller = graph.find("repro.core.sub", "Sub.caller")
        (site,) = caller.calls
        targets = {t.qualname for t in graph.resolve(caller, site)}
        assert "Base.helper" in targets

    def test_reachable_from_maps_back_to_roots(self):
        summaries = self._summaries(
            """
            def a():
                b()

            def b():
                c()

            def c():
                pass

            def island():
                pass
            """
        )
        graph = CallGraph(summaries)
        root = graph.find("repro.core.fixture", "a")
        origin = graph.reachable_from([root])
        assert origin[("repro.core.fixture", "c")] == root.key
        assert ("repro.core.fixture", "island") not in origin

    def test_summaries_round_trip_through_payloads(self):
        (summary,) = self._summaries(
            """
            def f(self):
                self.g()
            """
        )
        from repro.lint.flow.callgraph import FunctionSummary

        clone = FunctionSummary.from_payload(summary.to_payload())
        assert clone == summary


# -- RPL011: durability discipline ---------------------------------------


class TestDurability:
    def test_write_then_publish_without_flush_fires(self):
        fixture = src(
            """
            def publish(path, tmp, data):
                tmp.write_text(data)
                tmp.replace(path)
            """,
            module="repro.state.fixture",
        )
        result = run_rules([fixture], "RPL011")
        assert codes_of(result) == ["RPL011"]
        assert "flush+fsync" in result.violations[0].message
        assert result.violations[0].line == 4  # the tmp.replace line

    def test_flush_without_fsync_fires_with_fsync_message(self):
        fixture = src(
            """
            def publish(path, tmp, data):
                with tmp.open("w") as handle:
                    handle.write(data)
                    handle.flush()
                tmp.replace(path)
            """,
            module="repro.state.fixture",
        )
        result = run_rules([fixture], "RPL011")
        assert codes_of(result) == ["RPL011"]
        assert "os.fsync" in result.violations[0].message

    def test_full_protocol_is_clean(self):
        fixture = src(
            """
            import os

            def publish(path, tmp, data):
                with tmp.open("w") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                tmp.replace(path)
            """,
            module="repro.state.fixture",
        )
        assert codes_of(run_rules([fixture], "RPL011")) == []

    def test_branch_that_skips_fsync_fires(self):
        # path-sensitive: the happy branch syncs, the fast branch does
        # not — a syntactic "fsync appears before replace" check passes
        # this function; only the CFG sees the bad path.
        fixture = src(
            """
            import os

            def publish(path, tmp, data, fast):
                tmp.write_text(data)
                if not fast:
                    with tmp.open("a") as handle:
                        handle.flush()
                        os.fsync(handle.fileno())
                tmp.replace(path)
            """,
            module="repro.state.fixture",
        )
        result = run_rules([fixture], "RPL011")
        assert codes_of(result) == ["RPL011"]

    def test_str_replace_is_not_a_publish(self):
        fixture = src(
            """
            def sanitize(tmp, name):
                tmp.write_text(name)
                return name.replace(" ", "-")
            """,
            module="repro.state.fixture",
        )
        assert codes_of(run_rules([fixture], "RPL011")) == []

    def test_os_replace_two_args_is_a_publish(self):
        fixture = src(
            """
            import os

            def publish(path, tmp, data):
                tmp.write_text(data)
                os.replace(tmp, path)
            """,
            module="repro.state.fixture",
        )
        assert codes_of(run_rules([fixture], "RPL011")) == ["RPL011"]

    def test_out_of_scope_module_is_ignored(self):
        fixture = src(
            """
            def publish(path, tmp, data):
                tmp.write_text(data)
                tmp.replace(path)
            """,
            module="repro.bench.fixture",
        )
        assert codes_of(run_rules([fixture], "RPL011")) == []

    def test_swallowed_mutation_without_rollback_fires(self):
        fixture = src(
            """
            class Store:
                def adopt(self, value):
                    old = self.state
                    try:
                        self.state = value
                        commit(value)
                    except ValueError:
                        log("ignored")
            """,
            module="repro.state.fixture",
        )
        result = run_rules([fixture], "RPL011")
        assert codes_of(result) == ["RPL011"]
        assert "self.state" in result.violations[0].message

    def test_handler_rollback_is_clean(self):
        fixture = src(
            """
            class Store:
                def adopt(self, value):
                    old = self.state
                    try:
                        self.state = value
                        commit(value)
                    except ValueError:
                        self.state = old
            """,
            module="repro.state.fixture",
        )
        assert codes_of(run_rules([fixture], "RPL011")) == []

    def test_reraising_handler_is_clean(self):
        fixture = src(
            """
            class Store:
                def adopt(self, value):
                    try:
                        self.state = value
                        commit(value)
                    except ValueError:
                        log("failed")
                        raise
            """,
            module="repro.state.fixture",
        )
        assert codes_of(run_rules([fixture], "RPL011")) == []


# -- RPL012: lock discipline ---------------------------------------------


LOCKED_CLASS_HEADER = """
    import threading

    class Pool:
        GUARDED_FIELDS = ("_jobs",)

        def __init__(self):
            self._lock = threading.Lock()
            self._jobs = []
"""


class TestLockDiscipline:
    def test_lock_owner_without_guarded_fields_fires(self):
        fixture = src(
            """
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._jobs = []
            """,
            module="repro.obs.fixture",
        )
        result = run_rules([fixture], "RPL012")
        assert codes_of(result) == ["RPL012"]
        assert "GUARDED_FIELDS" in result.violations[0].message

    def test_unguarded_access_fires(self):
        fixture = src(
            LOCKED_CLASS_HEADER
            + """
        def pending(self):
            return len(self._jobs)
            """,
            module="repro.obs.fixture",
        )
        result = run_rules([fixture], "RPL012")
        assert codes_of(result) == ["RPL012"]
        assert "_jobs" in result.violations[0].message

    def test_with_lock_access_is_clean(self):
        fixture = src(
            LOCKED_CLASS_HEADER
            + """
        def pending(self):
            with self._lock:
                return len(self._jobs)
            """,
            module="repro.obs.fixture",
        )
        assert codes_of(run_rules([fixture], "RPL012")) == []

    def test_acquire_release_dataflow_is_clean(self):
        fixture = src(
            LOCKED_CLASS_HEADER
            + """
        def drain(self):
            self._lock.acquire()
            jobs = list(self._jobs)
            self._lock.release()
            return jobs
            """,
            module="repro.obs.fixture",
        )
        assert codes_of(run_rules([fixture], "RPL012")) == []

    def test_access_after_release_fires(self):
        fixture = src(
            LOCKED_CLASS_HEADER
            + """
        def leak(self):
            self._lock.acquire()
            self._lock.release()
            return list(self._jobs)
            """,
            module="repro.obs.fixture",
        )
        assert codes_of(run_rules([fixture], "RPL012")) == ["RPL012"]

    def test_conditionally_held_lock_fires(self):
        # path-sensitive: one branch acquires, the join does not hold
        # the lock *definitely* — only dataflow catches this.
        fixture = src(
            LOCKED_CLASS_HEADER
            + """
        def maybe(self, fast):
            if not fast:
                self._lock.acquire()
            self._jobs.append(1)
            """,
            module="repro.obs.fixture",
        )
        assert codes_of(run_rules([fixture], "RPL012")) == ["RPL012"]

    def test_init_is_exempt(self):
        fixture = src(
            """
            import threading

            class Pool:
                GUARDED_FIELDS = ("_jobs",)

                def __init__(self):
                    self._lock = threading.Lock()
                    self._jobs = []
                    self._jobs.append(0)
            """,
            module="repro.obs.fixture",
        )
        assert codes_of(run_rules([fixture], "RPL012")) == []

    def test_out_of_scope_module_is_ignored(self):
        fixture = src(
            LOCKED_CLASS_HEADER
            + """
        def pending(self):
            return len(self._jobs)
            """,
            module="repro.core.fixture",
        )
        assert codes_of(run_rules([fixture], "RPL012")) == []


# -- RPL013: counter conservation ----------------------------------------


class TestCounterConservation:
    def test_early_return_skipping_charge_fires(self):
        fixture = src(
            """
            def apply(counters, update):
                if update is None:
                    return 0
                handle(update)
                counters.updates_processed += 1
                return 1
            """
        )
        result = run_rules([fixture], "RPL013")
        assert codes_of(result) == ["RPL013"]
        assert "uncharged" in result.violations[0].message

    def test_charge_in_loop_body_fires_double_charge(self):
        fixture = src(
            """
            def apply(counters, moves):
                counters.updates_processed += 1
                for move in moves:
                    counters.time_maintain_s += cost(move)
                return True
            """
        )
        result = run_rules([fixture], "RPL013")
        messages = [v.message for v in result.violations]
        assert any("more than once" in m for m in messages)

    def test_charge_on_every_path_is_clean(self):
        fixture = src(
            """
            def apply(counters, update):
                if update:
                    handle(update)
                counters.updates_processed += 1
                return True
            """
        )
        assert codes_of(run_rules([fixture], "RPL013")) == []

    def test_charge_skipped_only_on_except_edge_fires(self):
        # THE case a syntactic rule cannot catch: lexically, every path
        # "contains" the charge — but the exception edge out of risky()
        # carries the pre-charge state into a handler that completes
        # normally, so a caller can get a result with nothing billed.
        fixture = src(
            """
            def apply(counters, update):
                try:
                    risky(update)
                    counters.updates_processed += 1
                except ValueError:
                    recover(update)
            """
        )
        result = run_rules([fixture], "RPL013")
        assert codes_of(result) == ["RPL013"]
        assert "uncharged" in result.violations[0].message

    def test_charge_in_finally_is_clean(self):
        fixture = src(
            """
            def apply(counters, update):
                try:
                    risky(update)
                finally:
                    counters.updates_processed += 1
            """
        )
        assert codes_of(run_rules([fixture], "RPL013")) == []

    def test_exception_propagating_path_is_exempt(self):
        fixture = src(
            """
            def apply(counters, update):
                if update is None:
                    raise ValueError("empty update")
                handle(update)
                counters.updates_processed += 1
            """
        )
        assert codes_of(run_rules([fixture], "RPL013")) == []

    def test_plain_self_fields_are_out_of_scope(self):
        # MonitorCounters' own methods mutate self.<field> directly;
        # the receiver chain has no `.counters.` so no charge is seen.
        fixture = src(
            """
            class MonitorCounters:
                def restore(self, updates):
                    if updates is None:
                        return
                    self.updates_processed = updates
            """
        )
        assert codes_of(run_rules([fixture], "RPL013")) == []

    def test_out_of_scope_module_is_ignored(self):
        fixture = src(
            """
            def apply(counters, update):
                if update is None:
                    return 0
                counters.updates_processed += 1
            """,
            module="repro.bench.fixture",
        )
        assert codes_of(run_rules([fixture], "RPL013")) == []


# -- RPL014: phase protocol over the call graph --------------------------


PHASE_MONITOR = """
    class CTUPMonitor:
        def apply_update(self, update): ...
        def _apply(self, update): ...
        def refresh(self):
            return self._refresh()
        def _refresh(self):
            return rebuild(self)
        def top_k(self): ...
        def sk(self): ...
        def partial_top_k(self, m): ...
        def process(self, update):
            self.apply_update(update)
            return self.refresh()

    def rebuild(monitor):
        monitor.apply_update(None)
        return 0
"""


class TestPhaseProtocol:
    def test_access_reaching_maintain_fires_at_call_site(self):
        fixture = src(
            PHASE_MONITOR, module="repro.core.monitor", path="monitor.py"
        )
        result = run_rules([fixture], "RPL014")
        assert codes_of(result) == ["RPL014"]
        violation = result.violations[0]
        assert "apply_update" in violation.message
        assert "_refresh" in violation.message
        # flagged inside rebuild(), not at the _refresh entry.
        assert violation.line == 17  # the monitor.apply_update(None) line

    def test_maintain_side_calls_are_clean(self):
        clean = """
            class CTUPMonitor:
                def apply_update(self, update): ...
                def _apply(self, update): ...
                def _refresh(self):
                    return score(self)
                def top_k(self): ...
                def sk(self): ...
                def partial_top_k(self, m): ...
                def process(self, update):
                    self.apply_update(update)
                    return self._refresh()

            def score(monitor):
                return 0
        """
        fixture = src(clean, module="repro.core.monitor", path="monitor.py")
        assert codes_of(run_rules([fixture], "RPL014")) == []

    def test_crossing_in_subclass_helper_fires(self):
        base = src(
            """
            class CTUPMonitor:
                def apply_update(self, update): ...
                def _apply(self, update): ...
                def _refresh(self): ...
                def top_k(self): ...
                def sk(self): ...
                def partial_top_k(self, m): ...
            """,
            module="repro.core.monitor",
            path="monitor.py",
        )
        ext = src(
            """
            class EagerScheme(CTUPMonitor):
                def _refresh(self):
                    return self._drain()

                def _drain(self):
                    self.apply_update(None)
            """,
            module="repro.ext.eager",
            path="eager.py",
        )
        result = run_rules([base, ext], "RPL014")
        assert codes_of(result) == ["RPL014"]
        assert result.violations[0].path == "eager.py"

    def test_walk_stays_inside_monitor_modules(self):
        base = src(
            """
            class CTUPMonitor:
                def apply_update(self, update): ...
                def _apply(self, update): ...
                def _refresh(self):
                    return self.obs.record(self)
                def top_k(self): ...
                def sk(self): ...
                def partial_top_k(self, m): ...
            """,
            module="repro.core.monitor",
            path="monitor.py",
        )
        harness = src(
            """
            class Timeline:
                def record(self, monitor):
                    monitor.apply_update(None)
            """,
            module="repro.bench.timeline",
            path="timeline.py",
        )
        # Timeline.record is name-resolvable from _refresh but lives
        # outside WALK_SCOPES — the harness layer is not access-phase.
        assert codes_of(run_rules([base, harness], "RPL014")) == []

    def test_suppression_at_the_call_site_works(self):
        suppressed = PHASE_MONITOR.replace(
            "        monitor.apply_update(None)",
            "        # reprolint: disable=RPL014 -- fixture documents a"
            " deliberate refresh-time drain\n"
            "        monitor.apply_update(None)",
        )
        fixture = src(
            suppressed, module="repro.core.monitor", path="monitor.py"
        )
        assert codes_of(run_rules([fixture], "RPL014")) == []


# -- rule registration metadata ------------------------------------------


class TestFlowRuleRegistry:
    def test_flow_rules_registered(self):
        for code in ("RPL011", "RPL012", "RPL013", "RPL014", "RPL015"):
            assert code in RULES, code

    def test_only_rpl014_is_project_dependent(self):
        assert RULES["RPL014"].project_dependent
        for code in ("RPL011", "RPL012", "RPL013", "RPL015"):
            assert not RULES[code].project_dependent, code

    def test_rule_signature_embeds_versions(self):
        sig = rule_signature(["RPL011", "RPL013"])
        assert f"RPL011:{RULES['RPL011'].version}" in sig
        assert f"RPL013:{RULES['RPL013'].version}" in sig


# -- SARIF reporter ------------------------------------------------------


class TestSarif:
    def _dirty(self):
        fixture = src("def f(xs=[]):\n    return xs\n", path="pkg/f.py")
        return run_rules([fixture], "RPL006")

    def test_sarif_2_1_0_shape(self):
        payload = json.loads(render_sarif(self._dirty()))
        assert payload["version"] == "2.1.0"
        assert payload["$schema"].endswith("sarif-2.1.0.json")
        (run,) = payload["runs"]
        assert run["columnKind"] == "utf16CodeUnits"
        driver = run["tool"]["driver"]
        assert driver["name"] == "reprolint"
        ids = [entry["id"] for entry in driver["rules"]]
        assert ids == sorted(ids)
        assert set(ids) == set(RULES)

    def test_results_reference_the_rule_table(self):
        payload = json.loads(render_sarif(self._dirty()))
        (run,) = payload["runs"]
        ids = [entry["id"] for entry in run["tool"]["driver"]["rules"]]
        (entry,) = run["results"]
        assert entry["ruleId"] == "RPL006"
        assert ids[entry["ruleIndex"]] == "RPL006"
        assert entry["level"] == "error"
        assert entry["message"]["text"]

    def test_locations_are_one_based(self):
        result = self._dirty()
        payload = json.loads(render_sarif(result))
        (entry,) = payload["runs"][0]["results"]
        location = entry["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "pkg/f.py"
        assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
        region = location["region"]
        assert region["startLine"] == result.violations[0].line >= 1
        assert region["startColumn"] == result.violations[0].col + 1 >= 1

    def test_clean_tree_has_empty_results(self):
        payload = json.loads(render_sarif(run_rules([], "RPL006")))
        assert payload["runs"][0]["results"] == []

    def test_cli_emits_parseable_sarif(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(xs=[]):\n    return xs\n")
        assert lint_main([str(dirty), "--format", "sarif"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        assert payload["runs"][0]["results"][0]["ruleId"] == "RPL006"


# -- the incremental cache -----------------------------------------------


def _make_tree(root):
    pkg = root / "pkg"
    pkg.mkdir()
    (pkg / "dirty.py").write_text("def f(xs=[]):\n    return xs\n")
    (pkg / "clean.py").write_text("X = 1\n")
    return pkg


def _findings(result):
    return [
        (v.code, v.path, v.line, v.col, v.message)
        for v in result.all_findings()
    ]


class TestIncrementalCache:
    def test_cold_and_warm_runs_agree(self, tmp_path):
        pkg = _make_tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        cold = lint_paths([pkg], cache=LintCache(cache_path))
        warm_cache = LintCache(cache_path)
        warm = lint_paths([pkg], cache=warm_cache)
        assert _findings(cold) == _findings(warm)
        assert warm.files_checked == cold.files_checked
        assert warm_cache.hits > 0

    def test_edit_invalidates_only_that_file(self, tmp_path):
        pkg = _make_tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        lint_paths([pkg], cache=LintCache(cache_path))
        (pkg / "dirty.py").write_text("X = 2\n")  # fix the violation
        warm = lint_paths([pkg], cache=LintCache(cache_path))
        assert warm.ok, _findings(warm)

    def test_new_violation_is_found_on_warm_run(self, tmp_path):
        pkg = _make_tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        lint_paths([pkg], cache=LintCache(cache_path))
        (pkg / "clean.py").write_text("def g(ys={}):\n    return ys\n")
        warm = lint_paths([pkg], cache=LintCache(cache_path))
        codes = [v.code for v in warm.violations]
        assert codes.count("RPL006") == 2

    def test_corrupt_cache_is_discarded_silently(self, tmp_path):
        pkg = _make_tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json")
        result = lint_paths([pkg], cache=LintCache(cache_path))
        assert [v.code for v in result.violations] == ["RPL006"]
        # and the run rewrote a valid cache.
        assert json.loads(cache_path.read_text())["cache_version"] == 1

    def test_parse_errors_are_cached_and_replayed(self, tmp_path):
        pkg = _make_tree(tmp_path)
        (pkg / "broken.py").write_text("def broken(:\n")
        cache_path = tmp_path / "cache.json"
        cold = lint_paths([pkg], cache=LintCache(cache_path))
        warm = lint_paths([pkg], cache=LintCache(cache_path))
        assert _findings(cold) == _findings(warm)
        assert any(v.code == "RPLE00" for v in warm.parse_errors)

    def test_warm_run_skips_reparsing_unchanged_files(self, tmp_path):
        pkg = _make_tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        lint_paths([pkg], cache=LintCache(cache_path))
        import repro.lint.engine as engine_mod

        calls = []
        original = engine_mod.summarize_source

        def counting(source):
            calls.append(source.path)
            return original(source)

        engine_mod.summarize_source = counting
        try:
            lint_paths([pkg], cache=LintCache(cache_path))
        finally:
            engine_mod.summarize_source = original
        assert calls == []

    def test_parallel_jobs_match_serial(self, tmp_path):
        pkg = _make_tree(tmp_path)
        for index in range(6):
            (pkg / f"mod{index}.py").write_text(
                f"def f{index}(xs=[]):\n    return xs\n"
            )
        serial = lint_paths([pkg])
        parallel = lint_paths([pkg], jobs=4)
        assert _findings(serial) == _findings(parallel)

    def test_only_restricts_reporting_not_analysis(self, tmp_path):
        pkg = _make_tree(tmp_path)
        result = lint_paths([pkg], only=[pkg / "clean.py"])
        assert result.ok
        assert result.files_checked == 1


# -- ctup lint --changed -------------------------------------------------


def _git(tmp_path, *argv):
    return subprocess.run(
        [
            "git",
            "-c",
            "user.email=dev@example.com",
            "-c",
            "user.name=dev",
            *argv,
        ],
        cwd=tmp_path,
        capture_output=True,
        text=True,
        check=True,
    )


class TestChangedMode:
    @pytest.fixture()
    def repo(self, tmp_path, monkeypatch):
        pkg = _make_tree(tmp_path)
        _git(tmp_path, "init", "-q")
        _git(tmp_path, "add", ".")
        _git(tmp_path, "commit", "-q", "-m", "seed")
        monkeypatch.chdir(tmp_path)
        return pkg

    def test_no_changes_reports_nothing(self, repo, capsys):
        # dirty.py violates, but it is part of the baseline — --changed
        # narrows reporting to the diff, which is empty.
        code = lint_main(["pkg", "--changed", "HEAD", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["violations"] == []
        assert payload["files_checked"] == 0

    def test_modified_file_is_reported(self, repo, capsys):
        (repo / "clean.py").write_text("def g(ys=[]):\n    return ys\n")
        code = lint_main(["pkg", "--changed", "HEAD", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        paths = {v["path"] for v in payload["violations"]}
        assert paths == {"pkg/clean.py"}

    def test_untracked_file_is_reported(self, repo, capsys):
        (repo / "fresh.py").write_text("def h(zs=[]):\n    return zs\n")
        code = lint_main(["pkg", "--changed", "HEAD", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        paths = {v["path"] for v in payload["violations"]}
        assert paths == {"pkg/fresh.py"}

    def test_changed_composes_with_cache(self, repo, capsys):
        (repo / "fresh.py").write_text("def h(zs=[]):\n    return zs\n")
        argv = [
            "pkg",
            "--changed",
            "HEAD",
            "--cache",
            str(repo.parent / "cache.json"),
            "--format",
            "json",
        ]
        assert lint_main(argv) == 1
        first = json.loads(capsys.readouterr().out)
        assert lint_main(argv) == 1
        second = json.loads(capsys.readouterr().out)
        assert first["violations"] == second["violations"]


# -- suppression edge cases ----------------------------------------------


class TestSuppressionEdgeCases:
    def test_disable_file_is_scoped_to_its_own_file(self):
        waived = src(
            "# reprolint: disable-file=RPL006 -- fixture-wide waiver\n"
            "def f(xs=[]):\n    return xs\n",
            path="waived.py",
        )
        other = src(
            "def g(ys=[]):\n    return ys\n",
            path="other.py",
        )
        result = run_rules([waived, other], "RPL006")
        assert [(v.code, v.path) for v in result.violations] == [
            ("RPL006", "other.py")
        ]

    def test_multiple_codes_on_one_line(self):
        fixture = src(
            "def f(xs=[], dict=None):"
            "  # reprolint: disable=RPL006,RPL007 -- fixture exercises both\n"
            "    return xs\n"
        )
        result = run_rules([fixture], "RPL000", "RPL006", "RPL007")
        assert codes_of(result) == []

    def test_one_code_suppressed_the_other_still_fires(self):
        fixture = src(
            "def f(xs=[], dict=None):"
            "  # reprolint: disable=RPL006 -- only the default is waived\n"
            "    return xs\n"
        )
        result = run_rules([fixture], "RPL006", "RPL007")
        assert codes_of(result) == ["RPL007"]

    def test_unknown_code_fires_rpl000_and_does_not_suppress(self):
        fixture = src(
            "def f(xs=[]):  # reprolint: disable=RPL999 -- no such rule\n"
            "    return xs\n"
        )
        result = run_rules([fixture], "RPL000", "RPL006")
        assert sorted(codes_of(result)) == ["RPL000", "RPL006"]

    def test_standalone_comment_suppresses_flow_rule_on_next_line(self):
        fixture = src(
            """
            def publish(path, tmp, data):
                tmp.write_text(data)
                # reprolint: disable=RPL011 -- fixture documents the tradeoff
                tmp.replace(path)
            """,
            module="repro.state.fixture",
        )
        assert codes_of(run_rules([fixture], "RPL011")) == []

    def test_flow_rule_suppression_needs_the_right_line(self):
        fixture = src(
            """
            def publish(path, tmp, data):
                # reprolint: disable=RPL011 -- wrong line: covers the write
                tmp.write_text(data)
                tmp.replace(path)
            """,
            module="repro.state.fixture",
        )
        assert codes_of(run_rules([fixture], "RPL011")) == ["RPL011"]


# -- RPL015: catalog & epoch discipline ----------------------------------


class TestCatalogDiscipline:
    def test_direct_mutation_outside_owners_fires(self):
        fixture = src(
            """
            def grow(monitor, place):
                monitor.store.add_place(place)
            """
        )
        result = run_rules([fixture], "RPL015")
        assert codes_of(result) == ["RPL015"]
        assert "journaled control event" in result.violations[0].message

    def test_all_three_mutators_fire(self):
        fixture = src(
            """
            def churn(store, place):
                store.add_place(place)
                store.remove_place(3)
                store.reweight(3, 7)
            """
        )
        assert codes_of(run_rules([fixture], "RPL015")) == ["RPL015"] * 3

    def test_owning_packages_are_exempt(self):
        for module in ("repro.storage.placestore", "repro.control.apply"):
            fixture = src(
                """
                def grow(store, place):
                    store.add_place(place)
                """,
                module=module,
            )
            assert codes_of(run_rules([fixture], "RPL015")) == []

    def test_self_call_is_exempt(self):
        fixture = src(
            """
            class Wrapper:
                def add_place(self, place): ...

                def grow(self, place):
                    self.add_place(place)
            """
        )
        assert codes_of(run_rules([fixture], "RPL015")) == []

    def test_epoch_write_outside_control_fires(self):
        fixture = src(
            """
            def bump(monitor):
                monitor.epoch += 1
            """,
            module="repro.engine.fixture",
        )
        result = run_rules([fixture], "RPL015")
        assert codes_of(result) == ["RPL015"]
        assert "control plane" in result.violations[0].message

    def test_epoch_write_allowed_in_control_and_monitor_self(self):
        control = src(
            """
            def bump(monitor):
                monitor.epoch += 1
            """,
            module="repro.control.apply",
        )
        monitor = src(
            """
            class CTUPMonitor:
                def restore_state(self, state):
                    self.epoch = int(state.get("epoch", 0))
            """,
            module="repro.core.monitor",
        )
        assert codes_of(run_rules([control, monitor], "RPL015")) == []

    def test_epoch_write_on_foreign_monitor_fires_even_in_core(self):
        fixture = src(
            """
            def sync(self, other):
                other.epoch = self.epoch
            """,
            module="repro.core.monitor",
        )
        assert codes_of(run_rules([fixture], "RPL015")) == ["RPL015"]

    def test_aliased_mutator_call_is_tracked_through_the_cfg(self):
        fixture = src(
            """
            def grow(store, places):
                write = store.add_place
                for place in places:
                    write(place)
            """
        )
        result = run_rules([fixture], "RPL015")
        assert codes_of(result) == ["RPL015"]
        assert "alias" in result.violations[0].message

    def test_cleared_alias_is_not_flagged(self):
        fixture = src(
            """
            def grow(store, log, places):
                write = store.add_place
                write = log.append
                for place in places:
                    write(place)
            """
        )
        result = run_rules([fixture], "RPL015")
        # the rebinding clears the alias before any call.
        assert codes_of(result) == []

    def test_alias_bound_on_one_branch_still_fires(self):
        fixture = src(
            """
            def grow(store, log, place, fast):
                if fast:
                    write = store.add_place
                else:
                    write = log.append
                write(place)
            """
        )
        assert codes_of(run_rules([fixture], "RPL015")) == ["RPL015"]

    def test_reasoned_suppression_works(self):
        fixture = src(
            """
            def grow(monitor, place):
                monitor.store.add_place(place)  # reprolint: disable=RPL015 -- fixture exercises the bare-store path
            """
        )
        assert codes_of(run_rules([fixture], "RPL015")) == []


# -- the self-check ------------------------------------------------------


class TestFlowSelfCheck:
    def test_flow_package_lints_clean_under_its_own_rules(self):
        flow_dir = REPO_ROOT / "src" / "repro" / "lint" / "flow"
        result = lint_paths([flow_dir])
        assert result.ok, _findings(result)
        assert result.files_checked >= 4  # __init__, cfg, dataflow, callgraph

    def test_whole_lint_package_lints_clean(self):
        result = lint_paths([REPO_ROOT / "src" / "repro" / "lint"])
        assert result.ok, _findings(result)


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-v"]))
