"""Markdown report generation for the whole evaluation.

``ctup report`` runs every registered experiment and writes one
self-contained markdown document: the regenerated series as tables, the
expected shape next to each, and the environment it ran in. This is the
mechanised version of EXPERIMENTS.md — regenerate it on any machine to
refresh the measured numbers.
"""

from __future__ import annotations

import platform
import sys
import time
from typing import Sequence

from repro.experiments import all_experiments
from repro.experiments.registry import Experiment, ExperimentResult


def _markdown_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    from repro.bench.reporting import format_value

    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append(
            "| " + " | ".join(format_value(value) for value in row) + " |"
        )
    return "\n".join(lines)


def _render_experiment(
    experiment: Experiment, result: ExperimentResult, seconds: float
) -> str:
    parts = [
        f"## {experiment.paper_ref} — {experiment.title}",
        "",
        f"*Expected shape:* {experiment.expected_shape}.",
        "",
        _markdown_table(result.headers, result.rows),
        "",
    ]
    for note in result.notes:
        parts.append(f"> {note}")
    parts.append("")
    parts.append(f"*Regenerated in {seconds:.1f}s.*")
    parts.append("")
    return "\n".join(parts)


def generate_report(
    scale: float | None = None,
    seed: int = 0,
    experiment_ids: Sequence[str] | None = None,
) -> str:
    """Run experiments and return the full markdown report."""
    experiments = all_experiments()
    if experiment_ids is not None:
        wanted = set(experiment_ids)
        experiments = [
            e for e in experiments if e.experiment_id in wanted
        ]
        missing = wanted - {e.experiment_id for e in experiments}
        if missing:
            raise KeyError(f"unknown experiments: {sorted(missing)}")
    sections = [
        "# CTUP reproduction — measured results",
        "",
        f"Environment: Python {sys.version.split()[0]} on "
        f"{platform.system()} {platform.machine()}; "
        f"workload scale {scale if scale is not None else 'default'}, "
        f"seed {seed}.",
        "",
        "Every run below is validated against the brute-force oracle "
        "before its numbers are reported.",
        "",
    ]
    for experiment in experiments:
        start = time.perf_counter()
        result = experiment.run(scale=scale, seed=seed)
        elapsed = time.perf_counter() - start
        sections.append(_render_experiment(experiment, result, elapsed))
    return "\n".join(sections)
