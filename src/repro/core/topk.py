"""The maintained-place table.

Both monitors keep "a very small fraction of places" in memory together
with their safeties (§II-A): BasicCTUP keeps every place of every
illuminated cell, OptCTUP keeps exactly the places that were within
``SK + Δ`` when their cell was last accessed. This table backs both.

It is columnar (numpy) so the per-update hot path — adjusting the
safety of every maintained place against a unit's old and new protection
disk — is one vectorised pass, and ``SK`` (the k-th smallest safety) is
one ``np.partition``. Rows are removed with swap-to-last so the arrays
stay dense.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

import numpy as np

from repro.geometry import Point
from repro.model import Place, SafetyRecord

if TYPE_CHECKING:
    from repro.grid.partition import GridPartition
    from repro.storage.placestore import PlaceStore

_INITIAL_CAPACITY = 64


def tie_key(safety: float, place_id: int) -> tuple[float, int]:
    """THE ``(safety, id)`` ranking key — the single tie-break comparator.

    Every surface that orders safety records (the maintained table, the
    naïve monitors, the sharded merger, and the ``ext/`` schemes'
    result lists) must sort by this key so equal safeties always break
    by ascending place id; see :func:`topk_rows` for the full contract.
    """
    return (float(safety), int(place_id))


def kth_smallest(safety: np.ndarray, k: int) -> float:
    """The k-th smallest value of ``safety``; ``+inf`` with < k values.

    ``k <= 0`` yields ``-inf``: a degenerate top-0 query has an empty
    result, and ``-inf`` is the SK that makes every maintenance guard
    (``safety < SK`` and friends) vacuously false.
    """
    if k <= 0:
        return -math.inf
    if len(safety) < k:
        return math.inf
    return float(np.partition(safety, k - 1)[k - 1])


def topk_rows(ids: np.ndarray, safety: np.ndarray, k: int) -> np.ndarray:
    """Row indices of the k smallest safeties, ties broken by id.

    Shared by the maintained table and the naïve monitor so every scheme
    reports an identical, deterministic result set.

    **Tie-breaking contract.** The result order is exactly the first
    ``min(k, n)`` rows of the lexicographic ``(safety, id)`` order: equal
    safeties are always ordered by ascending place id, including across
    the SK boundary (the k-th slot). That makes ``top_k()`` and
    ``topk_ids()`` agree for every scheme that feeds its candidates
    through this function, and it is what the sharded merger relies on —
    per-shard prefixes in the same total order merge into the same total
    order. The only remaining cross-scheme ambiguity is *which*
    candidates a scheme tracks when several places tie exactly at SK
    (Definition 4 does not prescribe that; see
    ``CTUPMonitor.top_k``).
    """
    n = len(safety)
    if n == 0 or k <= 0:
        return np.empty(0, dtype=np.int64)
    take = min(k, n)
    if n > take:
        kth = np.partition(safety, take - 1)[take - 1]
        candidates = np.nonzero(safety <= kth)[0]
        order = np.lexsort((ids[candidates], safety[candidates]))
        return candidates[order][:take]
    return np.lexsort((ids, safety))[:take]


class MaintainedPlaces:
    """A dynamic table of (place, safety, owning cell) rows."""

    def __init__(self) -> None:
        self._n = 0
        cap = _INITIAL_CAPACITY
        self._ids = np.empty(cap, dtype=np.int64)
        self._xs = np.empty(cap, dtype=np.float64)
        self._ys = np.empty(cap, dtype=np.float64)
        self._safety = np.empty(cap, dtype=np.float64)
        self._cell = np.empty(cap, dtype=np.int64)
        self._row_of: dict[int, int] = {}
        self._place_at: list[Place | None] = [None] * cap

    def __len__(self) -> int:
        return self._n

    def __contains__(self, place_id: int) -> bool:
        return place_id in self._row_of

    # -- growth ---------------------------------------------------------

    def _ensure_capacity(self, needed: int) -> None:
        cap = len(self._ids)
        if needed <= cap:
            return
        while cap < needed:
            cap *= 2
        self._ids = np.resize(self._ids, cap)
        self._xs = np.resize(self._xs, cap)
        self._ys = np.resize(self._ys, cap)
        self._safety = np.resize(self._safety, cap)
        self._cell = np.resize(self._cell, cap)
        self._place_at.extend([None] * (cap - len(self._place_at)))

    # -- insertion ------------------------------------------------------

    def insert(self, place: Place, safety: float, cell: int) -> None:
        """Add one place; rejects duplicates (a maintenance bug otherwise)."""
        if place.place_id in self._row_of:
            raise ValueError(f"place {place.place_id} already maintained")
        self._ensure_capacity(self._n + 1)
        row = self._n
        self._ids[row] = place.place_id
        self._xs[row] = place.location.x
        self._ys[row] = place.location.y
        self._safety[row] = safety
        self._cell[row] = cell
        self._place_at[row] = place
        self._row_of[place.place_id] = row
        self._n += 1

    def insert_batch(
        self, places: Sequence[Place], safeties: np.ndarray, cell: int
    ) -> None:
        """Add all ``places`` of one cell with their computed safeties."""
        if len(places) != len(safeties):
            raise ValueError("places and safeties length mismatch")
        self._ensure_capacity(self._n + len(places))
        for place, safety in zip(places, safeties):
            self.insert(place, float(safety), cell)

    # -- removal --------------------------------------------------------

    def remove_row(self, row: int) -> tuple[Place, float]:
        """Remove one row (swap-with-last); returns the evicted record."""
        if not (0 <= row < self._n):
            raise IndexError(f"row {row} out of range")
        place = self._place_at[row]
        assert place is not None
        safety = float(self._safety[row])
        last = self._n - 1
        if row != last:
            self._ids[row] = self._ids[last]
            self._xs[row] = self._xs[last]
            self._ys[row] = self._ys[last]
            self._safety[row] = self._safety[last]
            self._cell[row] = self._cell[last]
            moved = self._place_at[last]
            self._place_at[row] = moved
            assert moved is not None
            self._row_of[moved.place_id] = row
        self._place_at[last] = None
        del self._row_of[place.place_id]
        self._n = last
        return place, safety

    def remove_id(self, place_id: int) -> tuple[Place, float]:
        """Remove a place by id."""
        return self.remove_row(self._row_of[place_id])

    def remove_rows(self, rows: Iterable[int]) -> float:
        """Remove several rows; returns the minimum removed safety.

        Returns ``+inf`` when nothing is removed — exactly the value the
        monitors assign as a cell bound when no place was dropped. Small
        batches use swap-removal; large batches compact the whole table
        in one vectorised pass.
        """
        ordered = sorted({int(r) for r in rows})
        if not ordered:
            return math.inf
        index = np.array(ordered, dtype=np.int64)
        if index[0] < 0 or index[-1] >= self._n:
            raise IndexError("row out of range")
        min_removed = float(self._safety[index].min())
        # swap-removal costs O(removed); compaction costs O(table)
        # (it rebuilds the id->row dict). Compact only when a large
        # share of the table goes away.
        if len(ordered) * 8 < self._n:
            for row in reversed(ordered):
                self.remove_row(row)
        else:
            keep = np.ones(self._n, dtype=bool)
            keep[index] = False
            self._compact(keep)
        return min_removed

    def _compact(self, keep: np.ndarray) -> None:
        """Keep only the rows where ``keep`` is True (bulk removal)."""
        n = self._n
        kept = np.nonzero(keep)[0]
        m = len(kept)
        self._ids[:m] = self._ids[kept]
        self._xs[:m] = self._xs[kept]
        self._ys[:m] = self._ys[kept]
        self._safety[:m] = self._safety[kept]
        self._cell[:m] = self._cell[kept]
        kept_places = [self._place_at[int(i)] for i in kept]
        self._place_at[:m] = kept_places
        for row in range(m, n):
            self._place_at[row] = None
        self._row_of = {
            place.place_id: row
            for row, place in enumerate(kept_places)
            if place is not None
        }
        self._n = m

    def remove_cell(self, cell: int) -> float:
        """Drop every place owned by ``cell``; min removed safety."""
        return self.remove_rows(self.rows_of_cell(cell).tolist())

    # -- queries --------------------------------------------------------

    def rows_of_cell(self, cell: int) -> np.ndarray:
        """Row indices of the places owned by ``cell``."""
        return np.nonzero(self._cell[: self._n] == cell)[0]

    def safety_at_rows(self, rows: np.ndarray) -> np.ndarray:
        """Safeties of the given rows (read-only copy)."""
        return self._safety[rows].copy()

    def cells_present(self) -> set[int]:
        """The owning cells of all maintained places."""
        return set(np.unique(self._cell[: self._n]).tolist())

    def safety_of(self, place_id: int) -> float:
        return float(self._safety[self._row_of[place_id]])

    def place_of(self, place_id: int) -> Place:
        place = self._place_at[self._row_of[place_id]]
        assert place is not None
        return place

    def set_safety(self, place_id: int, safety: float) -> None:
        self._safety[self._row_of[place_id]] = safety

    def export_rows(self) -> list[list[float]]:
        """JSON-codable ``[place_id, safety, cell]`` rows in table order.

        Row order matters: re-inserting the rows front to back rebuilds
        the table with identical row placement, so a resumed monitor's
        swap-removals evolve exactly like the snapshotted one's.
        """
        return [
            [int(self._ids[row]), float(self._safety[row]), int(self._cell[row])]
            for row in range(self._n)
        ]

    def safeties_snapshot(self) -> dict[int, float]:
        """id -> safety for every maintained place (testing/diagnostics)."""
        return {
            int(self._ids[row]): float(self._safety[row])
            for row in range(self._n)
        }

    def sk(self, k: int) -> float:
        """The k-th smallest maintained safety; ``+inf`` with < k rows.

        With fewer than ``k`` places maintained, *every* place qualifies
        as top-k, so the threshold is unbounded. ``k <= 0`` yields
        ``-inf`` (see :func:`kth_smallest`).
        """
        if k <= 0:
            return -math.inf
        if self._n < k:
            return math.inf
        return float(np.partition(self._safety[: self._n], k - 1)[k - 1])

    def top_k(self, k: int) -> list[SafetyRecord]:
        """The k least safe maintained places, ties broken by place id."""
        n = self._n
        if n == 0:
            return []
        safety = self._safety[:n]
        cut = topk_rows(self._ids[:n], safety, k)
        out = []
        for row in cut.tolist():
            place = self._place_at[row]
            assert place is not None
            out.append(SafetyRecord(place, float(safety[row])))
        return out

    def min_safety(self) -> float:
        if self._n == 0:
            return math.inf
        return float(self._safety[: self._n].min())

    # -- the hot path ---------------------------------------------------

    def apply_unit_move(self, old: Point, new: Point, radius: float) -> int:
        """Adjust every maintained safety for one unit's move.

        A place gains 1 safety when it enters the new disk without having
        been in the old one, loses 1 in the symmetric case. Returns the
        number of rows scanned (for the cost counters).
        """
        n = self._n
        if n == 0:
            return 0
        xs = self._xs[:n]
        ys = self._ys[:n]
        r2 = radius * radius
        dxo = xs - old.x
        dyo = ys - old.y
        was = dxo * dxo + dyo * dyo <= r2
        dxn = xs - new.x
        dyn = ys - new.y
        now = dxn * dxn + dyn * dyn <= r2
        self._safety[:n] += now.astype(np.float64) - was.astype(np.float64)
        return n

    def apply_unit_moves(
        self,
        old_x: np.ndarray,
        old_y: np.ndarray,
        new_x: np.ndarray,
        new_y: np.ndarray,
        radius: float,
    ) -> int:
        """Adjust every maintained safety for a whole burst of unit moves.

        One ``(rows, moves)`` broadcast replaces ``len(old_x)`` calls to
        :meth:`apply_unit_move`. Exactness: each row's total change is
        the integer sum of its per-move ``now - was`` terms, and adding
        that sum once is bit-identical to accumulating the per-move
        float terms (safeties are integer-valued, far below 2**53).
        Returns the rows scanned *per move* — callers charge their scan
        counters once per move, matching the sequential path.
        """
        n = self._n
        if n == 0 or len(old_x) == 0:
            return n
        xs = self._xs[:n]
        ys = self._ys[:n]
        r2 = radius * radius
        dxo = xs[:, None] - old_x[None, :]
        dyo = ys[:, None] - old_y[None, :]
        was = dxo * dxo + dyo * dyo <= r2
        dxn = xs[:, None] - new_x[None, :]
        dyn = ys[:, None] - new_y[None, :]
        now = dxn * dxn + dyn * dyn <= r2
        self._safety[:n] += (
            now.sum(axis=1, dtype=np.int64) - was.sum(axis=1, dtype=np.int64)
        ).astype(np.float64)
        return n

    def restore_rows(
        self,
        rows: Iterable[Sequence[Any]],
        store: "PlaceStore",
        grid: "GridPartition",
    ) -> None:
        """Rebuild the table from :meth:`export_rows` output.

        Each referenced cell is read once from the store to recover the
        :class:`Place` records, then the rows are re-inserted front to
        back — row placement is identical to the snapshotted table, so a
        resumed monitor's swap-removals evolve exactly like the
        original's. Must be called on an empty table.
        """
        if self._n:
            raise ValueError("restore_rows requires an empty table")
        materialized = [list(row) for row in rows]
        place_of: dict[int, Place] = {}
        for linear in sorted({int(row[2]) for row in materialized}):
            for place in store.read_cell(grid.from_linear(linear)):
                place_of[place.place_id] = place
        for pid, safety, cell in materialized:
            self.insert(place_of[int(pid)], float(safety), int(cell))

    def apply_unit_move_weighted(
        self,
        old: Point,
        new: Point,
        weight_of_distance: Callable[[np.ndarray], np.ndarray],
    ) -> int:
        """Decaying-protection version of :meth:`apply_unit_move`.

        ``weight_of_distance`` maps a numpy distance array to protection
        weights; each maintained safety changes by ``w(d_new) - w(d_old)``.
        """
        n = self._n
        if n == 0:
            return 0
        xs = self._xs[:n]
        ys = self._ys[:n]
        d_old = np.hypot(xs - old.x, ys - old.y)
        d_new = np.hypot(xs - new.x, ys - new.y)
        self._safety[:n] += weight_of_distance(d_new) - weight_of_distance(d_old)
        return n
