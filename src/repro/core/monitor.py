"""The common interface of all CTUP monitors.

A monitor owns its full server-side state: the grid partition, the
simulated lower storage level holding all places, the unit index with
the most recently reported unit positions, and whatever bound/maintained
structures the concrete scheme needs. Driving a monitor is always:

>>> monitor.initialize()          # §III-B / §IV-D, executed once
>>> for update in stream:
...     monitor.process(update)   # §III-C / §IV-E
...     monitor.top_k()           # the continuously monitored answer

Internally every scheme's update handling splits into two phases that
the base class composes (and times, and counts — the bookkeeping lives
here once, not in every scheme):

* the **maintain phase** ``_apply(update)`` — absorb one unit move into
  the cheap state (maintained safeties, cell bounds). Applications of
  several updates commute: bounds stay sound no matter when the access
  phase runs, which is what makes burst processing exact;
* the **access phase** ``_refresh()`` — do whatever storage accesses are
  needed to restore the scheme's result invariant ("no bound below SK"),
  after which ``top_k()`` / ``sk()`` are current.

``process()`` runs both phases per update. The engine layers
(:mod:`repro.core.batch`, :mod:`repro.engine`) instead call the public
``apply_update()`` / ``refresh()`` pair to defer the access phase to the
end of a burst — for *any* scheme, without touching its internals.
"""

from __future__ import annotations

import abc
import time
import warnings
from typing import TYPE_CHECKING, Any, ClassVar, Iterable, Mapping, Sequence

if TYPE_CHECKING:
    from repro.control.events import ControlEvent, EpochReport
    from repro.obs.spec import Observability

from repro.core.config import CTUPConfig
from repro.core.metrics import InitReport, MonitorCounters, UpdateReport
from repro.core.units import UnitIndex, UnitKernelStats
from repro.grid.partition import GridPartition
from repro.model import CoalescedMove, LocationUpdate, Place, SafetyRecord, Unit
from repro.storage.iostats import IoStats
from repro.storage.placestore import PlaceStore

#: version of the per-monitor ``export_state()`` payload (bumped when a
#: scheme's encoded state shape changes incompatibly).
STATE_VERSION = 1


def collect_declared_fields(cls: type, attribute: str) -> tuple[str, ...]:
    """Union of a class-body tuple declaration over the whole MRO.

    Walks ``cls.__mro__`` base-first so a scheme's declaration extends —
    never replaces — its ancestors'. Shared by :class:`CTUPMonitor` and
    the standalone schemes (``repro.ext.extent``) that implement the
    ``Snapshottable`` protocol structurally.
    """
    out: list[str] = []
    for klass in reversed(cls.__mro__):
        for name in klass.__dict__.get(attribute, ()):
            if name not in out:
                out.append(name)
    return tuple(out)


class CTUPMonitor(abc.ABC):
    """Base class: state assembly plus the monitoring contract."""

    #: short scheme name used in benchmark tables.
    name: str = "abstract"

    #: fields whose content survives a checkpoint round-trip. Subclasses
    #: extend (never replace) the declaration; ``state_fields()`` collects
    #: the union over the MRO. Reprolint rule RPL008 enforces that every
    #: field a scheme mutates outside ``__init__`` appears here or in
    #: :attr:`TRANSIENT_FIELDS`.
    STATE_FIELDS: ClassVar[tuple[str, ...]] = ("units", "counters", "epoch")
    #: fields rebuilt (not serialized) on restore. ``config`` / ``grid``
    #: / ``store`` are constructor state: the snapshot *envelope* records
    #: the config, and ``restore_monitor`` rebuilds all three from it —
    #: they only ever change through ``_retune_grid`` (a journaled
    #: control event), so a restored monitor re-derives the same world.
    TRANSIENT_FIELDS: ClassVar[tuple[str, ...]] = (
        "_initialized",
        "obs",
        "config",
        "grid",
        "store",
    )

    def __init__(
        self,
        config: CTUPConfig,
        places: Sequence[Place],
        units: Iterable[Unit],
    ) -> None:
        self.config = config
        self.grid = GridPartition(
            config.space, config.granularity, config.granularity
        )
        self.store = PlaceStore(
            self.grid,
            places,
            page_capacity=config.page_capacity,
            buffer_pages=config.buffer_pages,
        )
        self.units = UnitIndex(units)
        if config.use_unit_grid:
            # bucket the fleet by grid cell: the AP kernels then gather
            # candidates per cell neighbourhood instead of scanning |U|.
            self.units.attach_grid(self.grid)
        if abs(self.units.protection_range - config.protection_range) > 1e-12:
            raise ValueError(
                "config protection range "
                f"{config.protection_range} does not match the units' "
                f"{self.units.protection_range}"
            )
        self.counters = MonitorCounters()
        #: reconfiguration epoch — bumped once per applied control event
        #: (see :mod:`repro.control`). Epoch 0 is the initial world.
        self.epoch = 0
        #: optional observability bundle; attached from outside via
        #: :func:`repro.obs.attach_observability` (never serialized).
        #: The hot path pays one ``is None`` check when detached.
        self.obs: "Observability | None" = None
        self._initialized = False

    # -- scheme hooks (the phase API) -----------------------------------

    @abc.abstractmethod
    def _build_initial_state(self) -> None:
        """Construct the initial monitoring state (§III-B / §IV-D).

        Runs exactly once, inside the timing scope owned by
        ``initialize()``. Must leave ``top_k()`` / ``sk()`` answerable.
        """

    @abc.abstractmethod
    def _apply(self, update: LocationUpdate) -> None:
        """Maintain phase: absorb one unit move into the cheap state.

        Must commute with other ``_apply`` calls — no storage access, no
        reliance on the result invariant holding mid-burst.
        """

    @abc.abstractmethod
    def _refresh(self) -> int:
        """Access phase: restore the result invariant.

        Returns the number of cells accessed. After it returns,
        ``top_k()`` and ``sk()`` reflect every applied update.
        """

    @abc.abstractmethod
    def top_k(self) -> list[SafetyRecord]:
        """The current k least safe places, least safe first.

        Ties are broken by ascending place id among the candidates a
        scheme tracks. Every scheme reports the same SK and the same
        places strictly below it; which of several places *tied at SK*
        fills the last slot may differ between schemes (Definition 4 is
        ambiguous there, and resolving it deterministically would force
        extra cell accesses for no information gain).
        """

    @abc.abstractmethod
    def sk(self) -> float:
        """The safety of the k-th unsafe place (``+inf`` if |P| < k)."""

    def partial_top_k(self, m: int) -> list[SafetyRecord]:
        """The first ``m`` records of the result order (may be < m).

        A partial-result query used by the shard merger: the returned
        records are the lexicographically smallest ``(safety, place_id)``
        pairs the scheme can answer exactly, and every record it *with-
        holds* is either (a) tracked and lex-greater than the last
        returned pair, or (b) untracked, with safety at least ``sk()``
        (the "every place below SK is maintained" invariant). Schemes
        whose candidate structures can answer for any ``m`` override
        this; the default truncates ``top_k()``, which satisfies the
        contract for every monitor.
        """
        return self.top_k()[:m]

    # -- lifecycle (base owns timing and counters) ----------------------

    def initialize(self) -> InitReport:
        """Build the initial monitoring state (executed only once)."""
        self._require_not_initialized()
        start = time.perf_counter()
        self._build_initial_state()
        elapsed = time.perf_counter() - start
        self.counters.time_init_s = elapsed
        self._initialized = True
        if self.obs is not None:
            self.obs.phase(self.name, "initialize", start, elapsed)
        return self._init_report(elapsed)

    def _init_report(self, elapsed: float) -> InitReport:
        """Assemble the ``InitReport``; schemes whose counters do not
        include initialization work override this."""
        return InitReport(
            seconds=elapsed,
            cells_accessed=self.counters.cells_accessed,
            places_loaded=self.counters.places_loaded,
            sk=self.sk(),
            maintained_places=self.maintained_count(),
        )

    def apply_update(self, update: LocationUpdate) -> None:
        """Run the maintain phase for one update (public phase API).

        The result invariant may be stale afterwards — call ``refresh()``
        before reading ``top_k()`` / ``sk()``. Several ``apply_update``
        calls followed by one ``refresh()`` are exactly equivalent to
        processing each update individually, minus the intermediate
        storage accesses.
        """
        self._require_initialized()
        start = time.perf_counter()
        self._apply(update)
        elapsed = time.perf_counter() - start
        self.counters.updates_processed += 1
        self.counters.time_maintain_s += elapsed
        if self.obs is not None:
            self.obs.phase(self.name, "maintain", start, elapsed)

    def apply_burst(self, moves: Sequence[CoalescedMove]) -> None:
        """Run the maintain phase for one coalesced burst (public phase API).

        ``moves`` is the output of :func:`repro.core.batch.coalesce_burst`
        — at most one chain per unit, in first-appearance order. Exactly
        like ``apply_update``, the result invariant may be stale until
        ``refresh()``. Counters cover every *raw* update the burst
        carried; the work actually skipped by coalescing is reported via
        ``counters.coalesced_updates``.
        """
        self._require_initialized()
        start = time.perf_counter()
        skipped = self._apply_burst(moves)
        elapsed = time.perf_counter() - start
        self.counters.updates_processed += sum(m.raw_count for m in moves)
        self.counters.coalesced_updates += skipped
        self.counters.time_maintain_s += elapsed
        if self.obs is not None:
            self.obs.phase(
                self.name, "maintain_burst", start, elapsed, moves=len(moves)
            )

    def _apply_burst(self, moves: Sequence[CoalescedMove]) -> int:
        """Maintain phase for a coalesced burst; returns updates skipped.

        The default replays every raw update through ``_apply`` — exact
        for any scheme, with zero work skipped. Schemes whose maintain
        phase can exploit chain structure (BasicCTUP, OptCTUP) override
        this: maintained-safety adjustments and position tracking
        telescope over a chain, so only the endpoints are scanned, while
        bound/DecHash maintenance folds the per-step Table I/II
        transitions to stay bit-identical (see ``docs/architecture.md``,
        "Burst execution").
        """
        for move in moves:
            for raw in move.raws:
                self._apply(raw)
        return 0

    def refresh(self) -> int:
        """Run the access phase (public phase API); returns cells accessed."""
        self._require_initialized()
        start = time.perf_counter()
        accessed = self._refresh()
        elapsed = time.perf_counter() - start
        self.counters.time_access_s += elapsed
        self.counters.maintained_peak = max(
            self.counters.maintained_peak, self.maintained_count()
        )
        if self.obs is not None:
            self.obs.phase(self.name, "access", start, elapsed, accessed=accessed)
        return accessed

    def process(self, update: LocationUpdate) -> UpdateReport:
        """Absorb one location update, keeping the top-k result current."""
        self._require_initialized()
        maintain_before = self.counters.time_maintain_s
        access_before = self.counters.time_access_s
        self.apply_update(update)
        accessed = self.refresh()
        return UpdateReport(
            unit_id=update.unit_id,
            sk=self.sk(),
            cells_accessed=accessed,
            maintain_seconds=self.counters.time_maintain_s - maintain_before,
            access_seconds=self.counters.time_access_s - access_before,
        )

    # -- checkpointable state (the Snapshottable protocol) ---------------

    def state_fields(self) -> tuple[str, ...]:
        """All checkpointed fields declared along the scheme's MRO."""
        return collect_declared_fields(type(self), "STATE_FIELDS")

    def transient_fields(self) -> tuple[str, ...]:
        """All restore-rebuilt fields declared along the scheme's MRO."""
        return collect_declared_fields(type(self), "TRANSIENT_FIELDS")

    def export_state(self) -> dict[str, Any]:
        """The monitor's full mutable state as a JSON-codable document.

        Captures everything a bit-identical resume needs: tracked unit
        positions, the scheme's own structures, the storage-level cache
        picture and every work counter. The export never performs an
        *accounted* storage access, so checkpointing a live monitor does
        not perturb the run being checkpointed.
        """
        self._require_initialized()
        io = self.store.io_stats
        stats = self.units.stats
        return {
            "state_version": STATE_VERSION,
            "scheme": self.name,
            "units": self.units.export_positions(),
            "unit_stats": {
                "queries": stats.queries,
                "candidate_units": stats.candidate_units,
                "reachable_units": stats.reachable_units,
                "coalesced_updates": stats.coalesced_updates,
            },
            "io": {
                "page_reads": io.page_reads,
                "buffered_reads": io.buffered_reads,
                "page_writes": io.page_writes,
                "array_hits": io.array_hits,
            },
            "store_cache": self.store.export_cache_state(),
            "counters": self.counters.as_dict(),
            "epoch": self.epoch,
            "scheme_state": self._export_scheme_state(),
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Adopt a state document on a freshly constructed monitor.

        The monitor must have been built with the same config, place set
        and fleet, and must not be initialized. Restore order matters:
        structural state first (whose rebuilding may read the store),
        then :meth:`restore_counter_state`, which overwrites every
        counter and cache last so the rebuild's accounting noise is
        erased and the resumed monitor is bit-identical to the
        snapshotted one.
        """
        self._require_not_initialized()
        version = state.get("state_version")
        if version != STATE_VERSION:
            raise ValueError(
                f"unsupported monitor state version {version!r} "
                f"(this build reads version {STATE_VERSION})"
            )
        scheme = state.get("scheme")
        if scheme != self.name:
            raise ValueError(
                f"state document is for scheme {scheme!r}, "
                f"not {self.name!r}"
            )
        self.units.restore_positions(state["units"])
        self._restore_scheme_state(state["scheme_state"])
        self.restore_counter_state(state)
        self.epoch = int(state.get("epoch", 0))
        self._initialized = True

    def restore_counter_state(self, state: Mapping[str, Any]) -> None:
        """Overwrite caches and counters from a state document.

        Also called *again* after a resumed session primes its change
        tracker: the priming read may touch storage (schemes fetch place
        records lazily), and re-pinning the counters afterwards keeps
        the resumed run's accounting identical to an uninterrupted one.
        """
        self.store.restore_cache_state(state["store_cache"])
        self.store.io_stats.restore(IoStats(**state["io"]))
        self.units.stats.restore(UnitKernelStats(**state["unit_stats"]))
        self.counters.restore(MonitorCounters.from_dict(state["counters"]))

    def _export_scheme_state(self) -> dict[str, Any]:
        """Scheme hook: the concrete scheme's own structures, JSON-codable."""
        raise NotImplementedError(
            f"{type(self).__name__} does not export scheme state"
        )

    def _restore_scheme_state(self, fields: Mapping[str, Any]) -> None:
        """Scheme hook: inverse of :meth:`_export_scheme_state`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not restore scheme state"
        )

    # -- reconfiguration (the control plane, repro.control) ---------------

    def apply_control(
        self, event: "ControlEvent", *, mode: str = "incremental"
    ) -> "EpochReport":
        """Apply one control event (see :mod:`repro.control`).

        Returns the :class:`~repro.control.events.EpochReport` receipt.
        ``mode="rebuild"`` forces the documented fallback — rebuild the
        scheme's derived state from scratch over the patched world —
        even when an incremental patch exists; equivalence between the
        two is the control plane's core guarantee.
        """
        # local import: repro.control sits above repro.core in the layering.
        from repro.control.apply import apply_control

        return apply_control(self, event, mode=mode)

    def _control_work_snapshot(self) -> dict[str, Any]:
        """Freeze every work ledger before a control application.

        Control work is billed to the :class:`EpochReport`, not to the
        monitor's counters — reconfiguring must not perturb the run
        being measured. The token is consumed by
        :meth:`_control_work_restore`.
        """
        return {
            "counters": self.counters.snapshot(),
            "io": self.store.io_stats.snapshot(),
            "units": self.units.stats.snapshot(),
        }

    def _control_work_restore(self, token: Mapping[str, Any]) -> None:
        """Re-pin every work ledger to its pre-control values.

        Reads the *current* ``self.store`` — a grid retune swaps the
        store object, and the fresh store's ledger is the one that must
        carry the pre-control totals forward.
        """
        self.counters.restore(token["counters"])
        self.store.io_stats.restore(token["io"])
        self.units.stats.restore(token["units"])

    def _reset_scheme_state(self) -> None:
        """Scheme hook: drop all derived structures so that
        ``_build_initial_state`` can run again (the rebuild fallback).

        Must return every scheme-owned field to its post-``__init__``
        value; the world state (store, units, config) is left alone.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support control rebuilds"
        )

    def _rebuild_in_place(self) -> None:
        """The documented fallback: rebuild derived state from scratch.

        Equivalent to constructing a fresh monitor over the current
        world and initializing it — but in place, preserving identity,
        unit positions, and (via the control wrapper) the work ledgers.
        """
        self._reset_scheme_state()
        self._build_initial_state()

    def _retune_grid(self, granularity: int) -> None:
        """World patch for ``grid_retuned``: swap grid and store.

        Every cell boundary and page assignment moves at once, so the
        caller always follows with :meth:`_rebuild_in_place`.
        """
        places = self.store.peek_all_places()
        self.config = self.config.replace(granularity=granularity)
        self.grid = GridPartition(self.config.space, granularity, granularity)
        self.store = PlaceStore(
            self.grid,
            places,
            page_capacity=self.config.page_capacity,
            buffer_pages=self.config.buffer_pages,
        )
        if self.config.use_unit_grid:
            self.units.attach_grid(self.grid)

    # incremental patch hooks: return True when the scheme absorbed the
    # (already world-patched) event incrementally, False to request the
    # rebuild fallback. The base class declines everything except a k
    # change, which any scheme absorbs by re-establishing its result
    # invariant against the new SK.

    def _control_place_added(self, place: Place, cell: Any) -> bool:
        return False

    def _control_place_removed(self, place: Place, cell: Any) -> bool:
        return False

    def _control_place_reweighted(self, old: Place, new: Place, cell: Any) -> bool:
        return False

    def _control_k_changed(self) -> bool:
        self._refresh()
        return True

    # -- shared helpers --------------------------------------------------

    @property
    def initialized(self) -> bool:
        """Whether ``initialize()`` has completed (or state was restored)."""
        return self._initialized

    def maintained_count(self) -> int:
        """Places currently held with exact safeties (0 if the scheme
        keeps none in memory)."""
        maintained = getattr(self, "maintained", None)
        return len(maintained) if maintained is not None else 0

    def _require_initialized(self) -> None:
        if not self._initialized:
            raise RuntimeError(
                f"{self.name}: initialize() must be called before processing"
            )

    def _require_not_initialized(self) -> None:
        if self._initialized:
            raise RuntimeError(f"{self.name}: initialize() may run only once")

    def topk_ids(self) -> list[int]:
        """Place ids of the current result (convenience for tests)."""
        return [record.place_id for record in self.top_k()]

    def run_stream(
        self,
        updates: Iterable[LocationUpdate],
        collect: bool = False,
    ) -> int | list[UpdateReport]:
        """Process a whole stream.

        .. deprecated:: 1.1
            Drive monitors through :func:`repro.api.open_session` /
            :class:`repro.engine.MonitorSession` instead — the session
            is the one code path with batching, audits and hooks. This
            method now delegates to a plain session and will be removed.

        Returns the number of updates consumed, or the per-update
        :class:`UpdateReport` list when ``collect`` is set.
        """
        warnings.warn(
            "CTUPMonitor.run_stream is deprecated; drive monitors "
            "through repro.api.open_session / repro.engine.MonitorSession",
            DeprecationWarning,
            stacklevel=2,
        )
        self._require_initialized()
        # local import: repro.engine sits above repro.core in the layering.
        from repro.engine.session import MonitorSession

        session = MonitorSession(self, track_changes=False)
        session.start()
        if collect:
            return [session.feed(update) for update in updates]
        return session.run(updates)
