"""Workload generation: places, units, streams."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Rect
from repro.workloads import (
    RandomWalkMobility,
    RequiredProtectionModel,
    clustered_points,
    generate_places,
    generate_units,
    record_stream,
    uniform_points,
)
from repro.workloads.stream import UpdateStream, _reflect


class TestRequiredProtectionModel:
    def test_default_samples_in_range(self):
        model = RequiredProtectionModel()
        rng = random.Random(0)
        values = {model.sample(rng)[0] for _ in range(500)}
        allowed = {rp for rp, _, _ in model.tiers}
        assert values <= allowed
        assert 1 in values  # residences dominate

    def test_constant_model(self):
        model = RequiredProtectionModel.constant(4, label="bank")
        assert model.sample(random.Random(0)) == (4, "bank")

    def test_uniform_model(self):
        model = RequiredProtectionModel.uniform(2, 4)
        values = {model.sample(random.Random(i))[0] for i in range(50)}
        assert values <= {2, 3, 4}

    def test_uniform_bad_range(self):
        with pytest.raises(ValueError):
            RequiredProtectionModel.uniform(4, 2)

    def test_empty_tiers_rejected(self):
        with pytest.raises(ValueError):
            RequiredProtectionModel(tiers=())

    def test_negative_rp_rejected(self):
        with pytest.raises(ValueError):
            RequiredProtectionModel(tiers=((-1, 1.0, "x"),))


class TestPlaceGeneration:
    def test_count_and_ids(self):
        places = generate_places(100, seed=1)
        assert len(places) == 100
        assert [p.place_id for p in places] == list(range(100))

    def test_deterministic(self):
        assert generate_places(50, seed=7) == generate_places(50, seed=7)

    def test_different_seeds_differ(self):
        assert generate_places(50, seed=1) != generate_places(50, seed=2)

    def test_all_inside_space(self):
        space = Rect(0.0, 0.0, 2.0, 1.0)
        for p in generate_places(200, seed=3, space=space):
            assert space.contains_point(p.location)

    def test_clustered_placement(self):
        places = generate_places(300, seed=4, placement="clustered")
        assert len(places) == 300
        space = Rect(0.0, 0.0, 1.0, 1.0)
        assert all(space.contains_point(p.location) for p in places)

    def test_unknown_placement(self):
        with pytest.raises(ValueError):
            generate_places(10, placement="spiral")

    def test_id_offset(self):
        places = generate_places(5, seed=0, id_offset=100)
        assert [p.place_id for p in places] == [100, 101, 102, 103, 104]

    def test_negative_count(self):
        with pytest.raises(ValueError):
            generate_places(-1)

    def test_kinds_follow_model(self):
        model = RequiredProtectionModel.constant(6, label="bank")
        places = generate_places(10, seed=0, protection_model=model)
        assert all(p.kind == "bank" for p in places)
        assert all(p.required_protection == 6 for p in places)


class TestExtentPlaces:
    def test_generates_extent_records(self):
        from repro.workloads.places import generate_extent_places

        places = generate_extent_places(50, seed=3, max_half_extent=0.02)
        assert len(places) == 50
        space = Rect(0.0, 0.0, 1.0, 1.0)
        for place in places:
            assert space.contains_rect(place.extent)
            assert place.extent.width <= 0.04 + 1e-12
            assert place.required_protection >= 0

    def test_deterministic(self):
        from repro.workloads.places import generate_extent_places

        a = generate_extent_places(20, seed=5)
        b = generate_extent_places(20, seed=5)
        assert a == b

    def test_zero_extent_allowed(self):
        from repro.workloads.places import generate_extent_places

        places = generate_extent_places(10, seed=1, max_half_extent=0.0)
        assert all(p.extent.area == 0.0 for p in places)

    def test_invalid_args(self):
        from repro.workloads.places import generate_extent_places

        with pytest.raises(ValueError):
            generate_extent_places(-1)
        with pytest.raises(ValueError):
            generate_extent_places(5, max_half_extent=-0.1)

    def test_monitorable(self, small_config, small_units):
        from repro.ext import ExtentCTUP
        from repro.workloads.places import generate_extent_places

        places = generate_extent_places(300, seed=9)
        monitor = ExtentCTUP(small_config, places, small_units)
        monitor.initialize()
        assert len(monitor.top_k()) == small_config.k


class TestPointClouds:
    def test_uniform_points_in_space(self):
        space = Rect(-1.0, -1.0, 1.0, 1.0)
        pts = uniform_points(100, random.Random(0), space)
        assert all(space.contains_point(p) for p in pts)

    def test_clustered_requires_clusters(self):
        with pytest.raises(ValueError):
            clustered_points(10, random.Random(0), Rect(0, 0, 1, 1), clusters=0)


class TestUnitGeneration:
    def test_count_and_range(self):
        units = generate_units(20, 0.15, seed=1)
        assert len(units) == 20
        assert all(u.protection_range == 0.15 for u in units)

    def test_zero_units_rejected(self):
        with pytest.raises(ValueError):
            generate_units(0, 0.1)

    def test_deterministic(self):
        a = generate_units(10, 0.1, seed=5)
        b = generate_units(10, 0.1, seed=5)
        assert [u.location for u in a] == [u.location for u in b]


class TestReflect:
    @given(st.floats(-10, 10, allow_nan=False))
    def test_reflect_stays_in_bounds(self, value):
        reflected = _reflect(value, 0.0, 1.0)
        assert 0.0 <= reflected <= 1.0

    def test_reflect_identity_inside(self):
        assert _reflect(0.4, 0.0, 1.0) == pytest.approx(0.4)

    def test_reflect_bounces(self):
        assert _reflect(1.2, 0.0, 1.0) == pytest.approx(0.8)
        assert _reflect(-0.3, 0.0, 1.0) == pytest.approx(0.3)

    def test_reflect_empty_interval(self):
        with pytest.raises(ValueError):
            _reflect(0.5, 1.0, 1.0)


class TestRandomWalk:
    def test_updates_consistent_chain(self, small_units):
        mobility = RandomWalkMobility(small_units, step=0.05, seed=3)
        last = {u.unit_id: u.location for u in small_units}
        for update in mobility.updates(200):
            assert update.old_location == last[update.unit_id]
            last[update.unit_id] = update.new_location

    def test_updates_stay_in_space(self, small_units):
        mobility = RandomWalkMobility(small_units, step=0.3, seed=3)
        space = Rect(0.0, 0.0, 1.0, 1.0)
        for update in mobility.updates(300):
            assert space.contains_point(update.new_location)

    def test_bad_step_rejected(self, small_units):
        with pytest.raises(ValueError):
            RandomWalkMobility(small_units, step=0.0)


class TestUpdateStream:
    def test_record_and_replay(self, small_units):
        mobility = RandomWalkMobility(small_units, step=0.02, seed=9)
        stream = record_stream(mobility, 50)
        assert len(stream) == 50
        assert list(stream) == list(stream.updates)

    def test_prefix(self, small_units):
        stream = record_stream(
            RandomWalkMobility(small_units, step=0.02, seed=9), 50
        )
        assert len(stream.prefix(10)) == 10
        assert stream.prefix(10)[9] == stream[9]

    def test_jsonl_roundtrip(self, small_units):
        stream = record_stream(
            RandomWalkMobility(small_units, step=0.02, seed=9), 25
        )
        text = stream.to_jsonl()
        back = UpdateStream.from_jsonl(text)
        assert back == stream

    def test_from_jsonl_skips_blank_lines(self):
        stream = UpdateStream.from_jsonl("\n\n")
        assert len(stream) == 0

    def test_indexing(self, small_units):
        stream = record_stream(
            RandomWalkMobility(small_units, step=0.02, seed=9), 5
        )
        assert stream[0].timestamp <= stream[4].timestamp
