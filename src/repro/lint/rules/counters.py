"""RPL002 — counter discipline (paper §II-A I/O accounting).

The work and I/O counters are the measured quantities of the
reproduction; their meaning depends on *who* is allowed to bump them.
``IoStats`` belongs to the storage layer (a page read that is counted
anywhere else is a fabricated measurement), the timing/stream fields of
``MonitorCounters`` belong to the ``CTUPMonitor`` lifecycle methods,
``UnitKernelStats`` to the unit index, ``MergeStats`` to the merger —
and nothing outside ``repro.storage`` may reach into ``PlaceStore``'s
page internals, because that is exactly how a read bypasses the
``IoStats`` charge.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ProjectIndex, SourceFile
from repro.lint.registry import Violation, rule

#: counter field -> (owning module prefixes, owner description).
_FIELD_OWNERS: dict[str, tuple[tuple[str, ...], str]] = {}


def _own(fields: tuple[str, ...], owners: tuple[str, ...], label: str) -> None:
    for field in fields:
        _FIELD_OWNERS[field] = (owners, label)


_own(
    ("page_reads", "buffered_reads", "page_writes", "array_hits"),
    ("repro.storage",),
    "IoStats (owned by repro.storage)",
)
_own(
    (
        "time_maintain_s",
        "time_access_s",
        "time_init_s",
        "updates_processed",
        "maintained_peak",
    ),
    ("repro.core.monitor", "repro.core.metrics"),
    "MonitorCounters timing/stream fields (owned by the CTUPMonitor "
    "lifecycle in repro.core.monitor)",
)
_own(
    ("candidate_units", "reachable_units"),
    ("repro.core.units",),
    "UnitKernelStats (owned by repro.core.units)",
)
#: shared by UnitKernelStats (chain applies in repro.core.units) and
#: MonitorCounters (burst accounting in CTUPMonitor.apply_burst) — both
#: count raw updates skipped by exact move coalescing.
_own(
    ("coalesced_updates",),
    ("repro.core.monitor", "repro.core.metrics", "repro.core.units"),
    "coalescing counters (owned by CTUPMonitor.apply_burst and the "
    "UnitIndex chain applies)",
)
_own(
    ("shards_queried", "refills", "records_pulled"),
    ("repro.shard.merge",),
    "MergeStats (owned by repro.shard.merge)",
)
#: per-scheme work counters: any monitor implementation may bump them.
_own(
    (
        "cells_accessed",
        "places_loaded",
        "lb_decrements",
        "lb_increments",
        "doo_suppressed",
        "dechash_inserts",
        "dechash_removes",
        "cells_darkened",
        "distance_rows",
        "maintained_scans",
    ),
    ("repro.core", "repro.ext", "repro.shard"),
    "MonitorCounters work fields (owned by the monitor implementations)",
)

#: PlaceStore internals whose use outside the storage layer bypasses
#: the IoStats charging path.
_STORE_INTERNALS = frozenset(
    {"_pages", "_buffer", "_array_cache", "_cell_pages"}
)
_STORAGE_OWNERS = ("repro.storage",)


@rule(
    "RPL002",
    "counter-discipline",
    "IoStats / MonitorCounters / UnitKernelStats fields are mutated "
    "only by their owning modules; no PlaceStore page access bypasses "
    "IoStats charging",
)
def check(source: SourceFile, project: ProjectIndex) -> Iterator[Violation]:
    if not source.in_packages("repro"):
        return
    for node in ast.walk(source.tree):
        if isinstance(node, ast.AugAssign):
            yield from _check_target(source, node.target)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                yield from _check_target(source, target)
        elif isinstance(node, ast.Attribute):
            yield from _check_internal_access(source, node)


def _check_target(source: SourceFile, target: ast.expr) -> Iterator[Violation]:
    if isinstance(target, ast.Tuple):
        for element in target.elts:
            yield from _check_target(source, element)
        return
    if not isinstance(target, ast.Attribute):
        return
    receiver = target.value
    if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
        # ``self.updates_processed`` is the enclosing class's own
        # attribute; the owned counter *objects* are always reached
        # through a field or variable (``self.counters.x``, ``stats.x``).
        return
    owned = _FIELD_OWNERS.get(target.attr)
    if owned is None:
        return
    owners, label = owned
    if source.in_packages(*owners):
        return
    yield Violation(
        code="RPL002",
        message=(
            f"direct mutation of counter field '{target.attr}' outside "
            f"its owning module — {label}; go through the owner's API "
            "so the accounting stays trustworthy"
        ),
        path=source.path,
        line=target.lineno,
        col=target.col_offset,
    )


def _check_internal_access(
    source: SourceFile, node: ast.Attribute
) -> Iterator[Violation]:
    if node.attr not in _STORE_INTERNALS:
        return
    if source.in_packages(*_STORAGE_OWNERS):
        return
    receiver = node.value
    if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
        return
    yield Violation(
        code="RPL002",
        message=(
            f"access to storage internal '{node.attr}' outside "
            "repro.storage — page reads that bypass PlaceStore's public "
            "surface are not charged to IoStats (paper §II-A accounting)"
        ),
        path=source.path,
        line=node.lineno,
        col=node.col_offset,
    )
