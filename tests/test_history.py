"""Time-travel queries over the result history."""

import pytest

from repro.core import ChangeTracker, OptCTUP
from repro.core.history import TopKHistory


@pytest.fixture
def recorded(small_config, small_places, small_units, small_stream):
    tracker = ChangeTracker(OptCTUP(small_config, small_places, small_units))
    tracker.initialize()
    history = TopKHistory(tracker)
    history.start(timestamp=0.0)
    snapshots = {}
    for update in small_stream:
        tracker.process(update)
        snapshots[update.timestamp] = set(tracker.monitor.topk_ids())
    return history, snapshots, small_stream


class TestLifecycle:
    def test_start_required_before_queries(
        self, small_config, small_places, small_units
    ):
        tracker = ChangeTracker(
            OptCTUP(small_config, small_places, small_units)
        )
        tracker.initialize()
        history = TopKHistory(tracker)
        with pytest.raises(RuntimeError):
            history.result_at(1.0)
        with pytest.raises(RuntimeError):
            history.exposures(1)

    def test_recording_before_start_rejected(
        self, small_config, small_places, small_units, small_stream
    ):
        tracker = ChangeTracker(
            OptCTUP(small_config, small_places, small_units)
        )
        tracker.initialize()
        TopKHistory(tracker)  # subscribed but never started
        with pytest.raises(RuntimeError):
            for update in small_stream:
                tracker.process(update)

    def test_query_before_history_begins(self, recorded):
        history, _, _ = recorded
        with pytest.raises(ValueError):
            history.result_at(-5.0)


class TestReconstruction:
    def test_membership_matches_live_snapshots(self, recorded):
        history, snapshots, stream = recorded
        for timestamp, ids in list(snapshots.items())[::13]:
            assert set(history.result_at(timestamp)) == ids, timestamp

    def test_final_state_matches_monitor(self, recorded):
        history, _, stream = recorded
        last = stream[len(stream) - 1].timestamp
        final = set(history.result_at(last))
        assert final == set(history._tracker.monitor.topk_ids())

    def test_was_topk(self, recorded):
        history, snapshots, stream = recorded
        mid = stream[len(stream) // 2].timestamp
        ids = snapshots[mid]
        some_member = next(iter(ids))
        assert history.was_topk(some_member, mid)

    def test_changes_are_sparse(self, recorded):
        history, _, stream = recorded
        assert history.change_count < len(stream)


class TestExposures:
    def test_exposures_cover_membership(self, recorded):
        history, snapshots, stream = recorded
        # pick a place that was a member at some point mid-stream.
        mid = stream[len(stream) // 2].timestamp
        place_id = next(iter(snapshots[mid]))
        exposures = history.exposures(place_id)
        assert exposures
        assert any(
            e.entered_at <= mid and (e.left_at is None or e.left_at >= mid)
            for e in exposures
        )

    def test_total_exposure_positive_for_members(self, recorded):
        history, snapshots, stream = recorded
        last = stream[len(stream) - 1].timestamp
        place_id = next(iter(snapshots[last]))
        assert history.total_exposure(place_id, now=last) > 0

    def test_never_member_has_no_exposure(self, recorded, small_places):
        history, snapshots, stream = recorded
        ever = set().union(*snapshots.values())
        outsider = next(
            p.place_id for p in small_places if p.place_id not in ever
        )
        assert history.exposures(outsider) == []
        assert history.total_exposure(outsider, now=1e9) == 0.0

    def test_open_interval_duration_uses_now(self):
        from repro.core.history import Exposure

        exposure = Exposure(place_id=1, entered_at=10.0, left_at=None)
        assert exposure.duration(now=25.0) == 15.0
