"""An STR bulk-loaded R-tree over places.

Sort-Tile-Recursive packing (Leutenegger et al.) builds a static,
well-filled R-tree in two sorts — ideal for the CTUP setting where the
place set never changes during monitoring. Each node carries, besides
its MBR, the maximum required protection of its subtree; the snapshot
top-k algorithm uses it to lower-bound safeties per subtree.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.geometry import Point, Rect
from repro.geometry.distance import point_rect_distance
from repro.model import Place

DEFAULT_FANOUT = 16


@dataclass
class RTreeNode:
    """One R-tree node (leaf holds places, internal holds children)."""

    mbr: Rect
    #: maximum required protection in this subtree — the aggregate that
    #: turns the tree into a safety-bounding index.
    max_required: int
    places: tuple[Place, ...] = ()
    children: tuple["RTreeNode", ...] = ()
    #: number of places in the subtree.
    count: int = 0

    @property
    def is_leaf(self) -> bool:
        return not self.children


def _mbr_of_points(points: Sequence[Point]) -> Rect:
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    return Rect(min(xs), min(ys), max(xs), max(ys))


def _mbr_union(rects: Sequence[Rect]) -> Rect:
    return Rect(
        min(r.xmin for r in rects),
        min(r.ymin for r in rects),
        max(r.xmax for r in rects),
        max(r.ymax for r in rects),
    )


class RTree:
    """A static R-tree over a place set, STR bulk-loaded."""

    def __init__(
        self, places: Sequence[Place], fanout: int = DEFAULT_FANOUT
    ) -> None:
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        places = list(places)
        if not places:
            raise ValueError("cannot index an empty place set")
        self.fanout = fanout
        self._size = len(places)
        self.root = self._bulk_load(places)

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Levels from root to leaf (a lone leaf has height 1)."""
        height = 1
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    # -- construction ----------------------------------------------------

    def _bulk_load(self, places: list[Place]) -> RTreeNode:
        leaves = self._pack_leaves(places)
        level = leaves
        while len(level) > 1:
            level = self._pack_internal(level)
        return level[0]

    def _pack_leaves(self, places: list[Place]) -> list[RTreeNode]:
        """Sort-Tile-Recursive packing of the leaf level."""
        n = len(places)
        leaf_count = math.ceil(n / self.fanout)
        slices = math.ceil(math.sqrt(leaf_count))
        by_x = sorted(places, key=lambda p: (p.location.x, p.location.y))
        slice_size = slices * self.fanout
        leaves = []
        for start in range(0, n, slice_size):
            strip = sorted(
                by_x[start : start + slice_size],
                key=lambda p: (p.location.y, p.location.x),
            )
            for leaf_start in range(0, len(strip), self.fanout):
                group = strip[leaf_start : leaf_start + self.fanout]
                leaves.append(
                    RTreeNode(
                        mbr=_mbr_of_points([p.location for p in group]),
                        max_required=max(p.required_protection for p in group),
                        places=tuple(group),
                        count=len(group),
                    )
                )
        return leaves

    def _pack_internal(self, nodes: list[RTreeNode]) -> list[RTreeNode]:
        """Pack one level of internal nodes over ``nodes`` (STR again)."""
        n = len(nodes)
        parent_count = math.ceil(n / self.fanout)
        slices = math.ceil(math.sqrt(parent_count))
        by_x = sorted(nodes, key=lambda nd: nd.mbr.center().x)
        slice_size = slices * self.fanout
        parents = []
        for start in range(0, n, slice_size):
            strip = sorted(
                by_x[start : start + slice_size],
                key=lambda nd: nd.mbr.center().y,
            )
            for group_start in range(0, len(strip), self.fanout):
                group = strip[group_start : group_start + self.fanout]
                parents.append(
                    RTreeNode(
                        mbr=_mbr_union([child.mbr for child in group]),
                        max_required=max(c.max_required for c in group),
                        children=tuple(group),
                        count=sum(c.count for c in group),
                    )
                )
        return parents

    # -- queries ------------------------------------------------------------

    def range_query(self, window: Rect) -> list[Place]:
        """All places inside the (closed) query window."""
        result: list[Place] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.mbr.intersects(window):
                continue
            if node.is_leaf:
                result.extend(
                    p for p in node.places if window.contains_point(p.location)
                )
            else:
                stack.extend(node.children)
        return result

    def circle_query(self, center: Point, radius: float) -> list[Place]:
        """All places within ``radius`` of ``center`` (closed disk).

        This is exactly "which places does a unit at ``center`` protect".
        """
        r2 = radius * radius
        result: list[Place] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if point_rect_distance(center, node.mbr) > radius:
                continue
            if node.is_leaf:
                result.extend(
                    p
                    for p in node.places
                    if center.squared_distance_to(p.location) <= r2
                )
            else:
                stack.extend(node.children)
        return result

    def nearest(self, query: Point, k: int = 1) -> list[Place]:
        """The k places nearest to ``query`` (best-first search)."""
        if k <= 0:
            raise ValueError("k must be positive")
        counter = 0
        heap: list[tuple[float, int, object]] = [(0.0, counter, self.root)]
        result: list[Place] = []
        while heap and len(result) < k:
            distance, _, item = heapq.heappop(heap)
            if isinstance(item, Place):
                result.append(item)
                continue
            node = item
            if node.is_leaf:
                for place in node.places:
                    counter += 1
                    heapq.heappush(
                        heap,
                        (query.distance_to(place.location), counter, place),
                    )
            else:
                for child in node.children:
                    counter += 1
                    heapq.heappush(
                        heap,
                        (point_rect_distance(query, child.mbr), counter, child),
                    )
        return result

    def iter_places(self) -> Iterator[Place]:
        """Every indexed place (arbitrary order)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.places
            else:
                stack.extend(node.children)

    def iter_nodes(self) -> Iterator[RTreeNode]:
        """Every node, root first (diagnostics and invariants testing)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)
