"""Ablation experiments (DESIGN.md §6).

These are not paper figures; they probe the design choices the paper
leaves implicit: the buffer pool of the two-level store, the strength of
a purely-incremental full-table baseline, and the sensitivity of the
schemes to road-network topology and place placement.
"""

from __future__ import annotations

from repro.bench.harness import run_monitor
from repro.bench.workload import build_workload
from repro.core.incremental import IncrementalNaiveCTUP
from repro.experiments import defaults
from repro.experiments.figures import _scaled
from repro.experiments.registry import Experiment, ExperimentResult, register


def run_ablation_buffer(scale: float | None = None, seed: int = 0) -> ExperimentResult:
    """OptCTUP I/O with an LRU buffer pool of varying size."""
    n_places, _, sweep_updates = _scaled(scale)
    workload = build_workload(
        n_units=defaults.N_UNITS,
        n_places=n_places,
        protection_range=defaults.PROTECTION_RANGE,
        stream_length=sweep_updates,
        seed=seed,
    )
    rows = []
    for buffer_pages in (0, 16, 64, 256):
        result = run_monitor(
            "opt",
            defaults.default_config(buffer_pages=buffer_pages),
            workload,
        )
        rows.append(
            [
                buffer_pages,
                result.io.page_reads,
                result.io.buffered_reads,
                result.avg_update_ms,
            ]
        )
    return ExperimentResult(
        experiment_id="ablation_buffer",
        title="OptCTUP physical I/O vs buffer-pool size",
        headers=["buffer pages", "physical reads", "buffered reads", "avg update ms"],
        rows=rows,
        notes=[
            "expected: physical reads fall as the pool absorbs repeated "
            "cell accesses; wall time is memory-resident either way"
        ],
    )


def run_ablation_incremental(
    scale: float | None = None, seed: int = 0
) -> ExperimentResult:
    """Grid bounds versus a purely-incremental full-table baseline."""
    n_places, comparison, _ = _scaled(scale)
    workload = build_workload(
        n_units=defaults.N_UNITS,
        n_places=n_places,
        protection_range=defaults.PROTECTION_RANGE,
        stream_length=comparison,
        seed=seed,
    )
    config = defaults.default_config()
    results = {
        "naive": run_monitor("naive", config, workload),
        "incremental": run_monitor(
            "incremental", config, workload, factory=IncrementalNaiveCTUP
        ),
        "opt": run_monitor("opt", config, workload),
    }
    rows = [
        [
            name,
            r.avg_update_ms,
            r.counters.distance_rows / max(r.n_updates, 1),
            r.counters.maintained_scans / max(r.n_updates, 1),
        ]
        for name, r in results.items()
    ]
    return ExperimentResult(
        experiment_id="ablation_incremental",
        title="Incrementality alone vs grid bounds",
        headers=[
            "algorithm",
            "avg update ms",
            "distance rows/upd",
            "places scanned/upd",
        ],
        rows=rows,
        notes=[
            "incremental maintains all |P| safeties; opt touches only the "
            "maintained fraction — the machine-independent counters show "
            "the asymptotic gap even where numpy hides it in wall time"
        ],
    )


def run_ablation_network(
    scale: float | None = None, seed: int = 0
) -> ExperimentResult:
    """Sensitivity to road-network topology."""
    n_places, _, sweep_updates = _scaled(scale)
    config = defaults.default_config()
    rows = []
    for network in ("grid", "radial", "random"):
        workload = build_workload(
            n_units=defaults.N_UNITS,
            n_places=n_places,
            protection_range=defaults.PROTECTION_RANGE,
            stream_length=sweep_updates,
            seed=seed,
            network=network,
        )
        basic = run_monitor("basic", config, workload)
        opt = run_monitor("opt", config, workload)
        rows.append(
            [
                network,
                basic.avg_update_ms,
                opt.avg_update_ms,
                basic.avg_update_ms / opt.avg_update_ms
                if opt.avg_update_ms > 0
                else float("nan"),
            ]
        )
    return ExperimentResult(
        experiment_id="ablation_network",
        title="Update cost across road-network topologies",
        headers=["network", "basic ms/upd", "opt ms/upd", "basic/opt"],
        rows=rows,
        notes=["expected: opt wins on every topology"],
    )


def run_ablation_placement(
    scale: float | None = None, seed: int = 0
) -> ExperimentResult:
    """Sensitivity to place placement (uniform vs clustered)."""
    n_places, _, sweep_updates = _scaled(scale)
    config = defaults.default_config()
    rows = []
    for placement in ("uniform", "clustered"):
        workload = build_workload(
            n_units=defaults.N_UNITS,
            n_places=n_places,
            protection_range=defaults.PROTECTION_RANGE,
            stream_length=sweep_updates,
            seed=seed,
            placement=placement,
        )
        basic = run_monitor("basic", config, workload)
        opt = run_monitor("opt", config, workload)
        rows.append(
            [
                placement,
                basic.avg_update_ms,
                opt.avg_update_ms,
                basic.counters.maintained_peak,
                opt.counters.maintained_peak,
            ]
        )
    return ExperimentResult(
        experiment_id="ablation_placement",
        title="Update cost for uniform vs clustered places",
        headers=[
            "placement",
            "basic ms/upd",
            "opt ms/upd",
            "basic maintained peak",
            "opt maintained peak",
        ],
        rows=rows,
        notes=["expected: opt maintains far fewer places in both regimes"],
    )


def run_ablation_snapshot(
    scale: float | None = None, seed: int = 0
) -> ExperimentResult:
    """Cold-start snapshot top-k: full scan vs R-tree best-first."""
    import time

    from repro.core.units import UnitIndex
    from repro.index import RTree, snapshot_top_k_unsafe
    from repro.validate import Oracle

    n_places, _, _ = _scaled(scale)
    workload = build_workload(
        n_units=defaults.N_UNITS,
        n_places=n_places,
        protection_range=defaults.PROTECTION_RANGE,
        stream_length=0,
        seed=seed,
    )
    units = UnitIndex(workload.units)
    oracle = Oracle(workload.places, workload.units)
    rows = []
    for k in (5, 15, 50):
        start = time.perf_counter()
        tree = RTree(workload.places)
        build_seconds = time.perf_counter() - start
        start = time.perf_counter()
        answer = snapshot_top_k_unsafe(tree, units, k)
        query_seconds = time.perf_counter() - start
        verdict = oracle.validate(answer.records, k)
        if not verdict.ok:
            raise AssertionError(verdict.problems[:3])
        rows.append(
            [
                k,
                query_seconds * 1e3,
                answer.places_evaluated,
                n_places,
                answer.nodes_pruned,
                build_seconds * 1e3,
            ]
        )
    return ExperimentResult(
        experiment_id="ablation_snapshot",
        title="Snapshot top-k: R-tree best-first vs full scan",
        headers=[
            "k",
            "query ms",
            "places evaluated",
            "full-scan places",
            "nodes pruned",
            "tree build ms",
        ],
        rows=rows,
        notes=[
            "the best-first search touches a fraction of the places a "
            "cold full scan would; the bulk-load cost amortises over "
            "repeated snapshots"
        ],
    )


def run_ablation_batch(
    scale: float | None = None, seed: int = 0
) -> ExperimentResult:
    """Burst processing: access-loop deferral across batch sizes."""
    from repro.core import OptCTUP
    from repro.engine.session import MonitorSession
    from repro.validate import Oracle

    n_places, _, sweep_updates = _scaled(scale)
    workload = build_workload(
        n_units=defaults.N_UNITS,
        n_places=n_places,
        protection_range=defaults.PROTECTION_RANGE,
        stream_length=sweep_updates,
        seed=seed,
    )
    config = defaults.default_config()
    oracle = Oracle(workload.places, workload.units)
    for update in workload.stream:
        oracle.apply(update)
    rows = []
    for batch_size in (1, 4, 16, 64):
        monitor = OptCTUP(config, workload.places, workload.units)
        monitor.initialize()
        init_accesses = monitor.counters.cells_accessed
        # change tracking off: the measured quantity is cells accessed.
        session = MonitorSession(
            monitor, batch_size=batch_size, track_changes=False
        )
        session.run(workload.stream)
        verdict = oracle.validate(monitor.top_k(), config.k)
        if not verdict.ok:
            raise AssertionError(verdict.problems[:3])
        rows.append(
            [
                batch_size,
                monitor.counters.cells_accessed - init_accesses,
                monitor.counters.total_update_time_s()
                / len(workload.stream)
                * 1e3,
                session.batcher.batches_processed,
            ]
        )
    return ExperimentResult(
        experiment_id="ablation_batch",
        title="Burst processing: cell accesses vs batch size",
        headers=["batch size", "cells accessed", "avg ms/update", "batches"],
        rows=rows,
        notes=[
            "deferring the access loop to the end of each burst skips "
            "cells whose bound dips below SK and recovers within the "
            "burst; the final answer is identical (oracle-checked)"
        ],
    )


def run_ablation_decay(
    scale: float | None = None, seed: int = 0
) -> ExperimentResult:
    """Decaying protection (§VII): cost of the generalised monitor."""
    from repro.core import OptCTUP
    from repro.engine.session import MonitorSession
    from repro.ext import DecayCTUP, linear_decay, step_decay

    n_places, _, sweep_updates = _scaled(scale)
    workload = build_workload(
        n_units=defaults.N_UNITS,
        n_places=n_places,
        protection_range=defaults.PROTECTION_RANGE,
        stream_length=sweep_updates,
        seed=seed,
    )
    config = defaults.default_config()
    rows = []
    variants = [
        ("opt (integer)", lambda: OptCTUP(config, workload.places, workload.units)),
        (
            "decay step",
            lambda: DecayCTUP(
                config,
                workload.places,
                workload.units,
                decay=step_decay(config.protection_range),
            ),
        ),
        (
            "decay linear",
            lambda: DecayCTUP(
                config,
                workload.places,
                workload.units,
                decay=linear_decay(config.protection_range),
            ),
        ),
    ]
    for name, factory in variants:
        monitor = factory()
        monitor.initialize()
        base = monitor.counters.snapshot()
        MonitorSession(monitor, track_changes=False).run(workload.stream)
        diff = monitor.counters.snapshot() - base
        rows.append(
            [
                name,
                diff.total_update_time_s() / len(workload.stream) * 1e3,
                diff.cells_accessed / len(workload.stream),
                monitor.counters.maintained_peak,
                monitor.sk(),
            ]
        )
    return ExperimentResult(
        experiment_id="ablation_decay",
        title="Decaying protection vs the integer core model",
        headers=["variant", "avg update ms", "cells/upd", "maintained peak", "final SK"],
        rows=rows,
        notes=[
            "the step profile reproduces the integer model through the "
            "generalised (no-DOO, loss-bounded) machinery; the linear "
            "profile yields fractional safeties and a different SK"
        ],
    )


register(
    Experiment(
        "ablation_decay",
        "Decaying protection vs integer protection",
        "DESIGN.md §7",
        "ablation",
        "generalised monitor stays near the core model's cost",
        run_ablation_decay,
    )
)
register(
    Experiment(
        "ablation_snapshot",
        "Snapshot top-k via R-tree best-first",
        "DESIGN.md §6",
        "ablation",
        "best-first evaluates far fewer places than a full scan",
        run_ablation_snapshot,
    )
)
register(
    Experiment(
        "ablation_batch",
        "Burst processing vs per-update accesses",
        "DESIGN.md §6",
        "ablation",
        "cell accesses fall as batch size grows; answers stay exact",
        run_ablation_batch,
    )
)
register(
    Experiment(
        "ablation_buffer",
        "Buffer-pool size vs physical I/O",
        "DESIGN.md §6",
        "ablation",
        "physical reads fall with pool size",
        run_ablation_buffer,
    )
)
register(
    Experiment(
        "ablation_incremental",
        "Incrementality alone vs grid bounds",
        "DESIGN.md §6",
        "ablation",
        "opt does asymptotically less work than the incremental baseline",
        run_ablation_incremental,
    )
)
register(
    Experiment(
        "ablation_network",
        "Road-network topology sensitivity",
        "DESIGN.md §6",
        "ablation",
        "opt wins on every topology",
        run_ablation_network,
    )
)
register(
    Experiment(
        "ablation_placement",
        "Place-placement sensitivity",
        "DESIGN.md §6",
        "ablation",
        "opt maintains far fewer places in both regimes",
        run_ablation_placement,
    )
)
