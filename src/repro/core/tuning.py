"""Choosing the system parameters (§VI's "insights", operationalised).

The paper's evaluation exposes two free knobs and how they trade off:

* **Partition granularity** (Fig. 6): cells much larger than the
  protection disk blur the N/P/F classification (everything is P, bounds
  decay constantly); cells much smaller multiply bookkeeping and leave
  cells nearly empty. :func:`suggest_granularity` encodes the sweet spot
  — cell width about the protection range, capped so cells keep a
  useful number of places.

* **Δ** (Fig. 9): more slack maintains more places but accesses fewer
  cells. The right value depends on the workload, so
  :func:`choose_delta` measures it: replay a stream prefix at candidate
  values and pick the cheapest under a chosen cost metric (wall time, or
  the machine-independent touched-places count).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.config import CTUPConfig
from repro.geometry import Rect

if TYPE_CHECKING:  # repro.bench sits above repro.core; import lazily.
    from repro.bench.harness import RunResult
    from repro.bench.workload import Workload


def suggest_granularity(
    n_places: int,
    protection_range: float,
    space: Rect = Rect(0.0, 0.0, 1.0, 1.0),
    min_places_per_cell: int = 20,
) -> int:
    """A granularity that keeps cells disk-sized and usefully populated.

    Two ceilings apply: cell width should not shrink below the
    protection range (finer cells add bookkeeping without sharpening the
    per-update candidate set), and the grid should not spread the place
    set below ``min_places_per_cell`` per occupied cell on average
    (near-empty cells make bounds meaningless).
    """
    if n_places <= 0:
        raise ValueError("n_places must be positive")
    if protection_range <= 0:
        raise ValueError("protection range must be positive")
    extent = min(space.width, space.height)
    by_range = max(1, round(extent / protection_range))
    by_population = max(
        1, math.isqrt(max(1, n_places // min_places_per_cell))
    )
    return max(2, min(by_range, by_population))


@dataclass(frozen=True)
class DeltaChoice:
    """The outcome of an empirical Δ calibration."""

    delta: int
    results: dict[int, RunResult]
    metric: str

    def cost_of(self, delta: int) -> float:
        return _metric_value(self.results[delta], self.metric)


def _metric_value(result: RunResult, metric: str) -> float:
    if metric == "wall":
        return result.avg_update_ms
    if metric == "work":
        # machine-independent: places touched per update, combining the
        # maintain scans (rises with delta) and cell loads (falls).
        counters = result.update_counters
        updates = max(result.n_updates, 1)
        return (counters.maintained_scans + counters.places_loaded) / updates
    raise ValueError(f"unknown metric {metric!r}; use 'wall' or 'work'")


def choose_delta(
    workload: Workload,
    config: CTUPConfig,
    candidates: Sequence[int] = (0, 2, 4, 6, 8, 10),
    updates: int | None = None,
    metric: str = "work",
) -> DeltaChoice:
    """Calibrate Δ empirically on (a prefix of) a recorded stream.

    Runs OptCTUP once per candidate and returns the cheapest, with all
    measurements attached so callers can inspect the trade-off curve.
    ``metric='work'`` (default) optimises touched places per update —
    stable across machines; ``metric='wall'`` optimises measured time.
    """
    if not candidates:
        raise ValueError("no candidate deltas")
    from repro.bench.harness import run_monitor

    results: dict[int, RunResult] = {}
    for delta in candidates:
        results[delta] = run_monitor(
            "opt",
            config.replace(delta=delta),
            workload,
            updates=updates,
            validate=False,
        )
    best = min(
        results, key=lambda delta: (_metric_value(results[delta], metric), delta)
    )
    return DeltaChoice(delta=best, results=results, metric=metric)
