"""Reporters: human text, machine JSON, and SARIF 2.1.0.

The JSON schema is part of the contract (CI and tests parse it):

.. code-block:: json

    {
      "version": 1,
      "ok": false,
      "files_checked": 12,
      "violations": [
        {"code": "RPL002", "message": "...", "path": "...",
         "line": 10, "col": 4}
      ]
    }
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult
from repro.lint.registry import RULES

JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    """One ``path:line:col: CODE message`` line per finding."""
    findings = result.all_findings()
    lines = [
        f"{v.path}:{v.line}:{v.col}: {v.code} {v.message}" for v in findings
    ]
    by_code: dict[str, int] = {}
    for violation in findings:
        by_code[violation.code] = by_code.get(violation.code, 0) + 1
    if findings:
        breakdown = ", ".join(
            f"{code} x{count}" for code, count in sorted(by_code.items())
        )
        lines.append(
            f"{len(findings)} violation(s) in {result.files_checked} "
            f"file(s) ({breakdown})"
        )
    else:
        lines.append(f"{result.files_checked} file(s) clean")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    findings = result.all_findings()
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "ok": result.ok,
        "files_checked": result.files_checked,
        "violations": [
            {
                "code": v.code,
                "message": v.message,
                "path": v.path,
                "line": v.line,
                "col": v.col,
            }
            for v in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


#: the SARIF format version this renderer targets. GitHub code
#: scanning ingests this shape directly (upload-sarif action).
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 for code-scanning annotation uploads.

    One run, one driver; every registered rule appears in the rule
    table (stable index order by code) and every finding references its
    rule by id + index. Lines/columns are 1-based per the SARIF spec —
    our internal column is 0-based, hence the +1.
    """
    codes = sorted(RULES)
    rule_index = {code: position for position, code in enumerate(codes)}
    driver_rules: list[dict[str, object]] = [
        {
            "id": code,
            "name": RULES[code].name,
            "shortDescription": {"text": RULES[code].summary},
            "defaultConfiguration": {"level": "error"},
        }
        for code in codes
    ]
    results: list[dict[str, object]] = []
    for violation in result.all_findings():
        entry: dict[str, object] = {
            "ruleId": violation.code,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path.replace("\\", "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(1, violation.line),
                            "startColumn": violation.col + 1,
                        },
                    }
                }
            ],
        }
        if violation.code in rule_index:
            entry["ruleIndex"] = rule_index[violation.code]
        results.append(entry)
    payload = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": driver_rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rules() -> str:
    """The registered rule table (``--list-rules``)."""
    lines = []
    for code in sorted(RULES):
        registered = RULES[code]
        lines.append(f"{code}  {registered.name}: {registered.summary}")
    return "\n".join(lines)
