"""I/O accounting for the simulated disk level."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class IoStats:
    """Counters for simulated page traffic.

    ``page_reads`` counts physical reads that missed every cache;
    ``buffered_reads`` counts reads satisfied by a buffer pool;
    ``array_hits`` counts page equivalents served from the columnar
    (SoA) snapshot cache instead of the page level — re-evaluations of
    an already-projected cell are memory traffic, not I/O;
    ``page_writes`` counts physical writes (only the initial load writes
    pages — the set of places is static during monitoring).
    """

    page_reads: int = 0
    buffered_reads: int = 0
    page_writes: int = 0
    array_hits: int = 0

    def reset(self) -> None:
        """Zero all counters (called by the bench harness between phases)."""
        self.page_reads = 0
        self.buffered_reads = 0
        self.page_writes = 0
        self.array_hits = 0

    def snapshot(self) -> "IoStats":
        """An independent copy of the current counters."""
        return IoStats(
            self.page_reads, self.buffered_reads, self.page_writes, self.array_hits
        )

    def restore(self, values: "IoStats") -> None:
        """Overwrite every counter with ``values`` (checkpoint resume)."""
        self.page_reads = values.page_reads
        self.buffered_reads = values.buffered_reads
        self.page_writes = values.page_writes
        self.array_hits = values.array_hits

    def __sub__(self, other: "IoStats") -> "IoStats":
        return IoStats(
            self.page_reads - other.page_reads,
            self.buffered_reads - other.buffered_reads,
            self.page_writes - other.page_writes,
            self.array_hits - other.array_hits,
        )

    def __add__(self, other: "IoStats") -> "IoStats":
        """Element-wise sum (aggregation across shard stores)."""
        return IoStats(
            self.page_reads + other.page_reads,
            self.buffered_reads + other.buffered_reads,
            self.page_writes + other.page_writes,
            self.array_hits + other.array_hits,
        )
