"""Unit tests for axis-aligned rectangles."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Rect

unit = st.floats(0.0, 1.0, allow_nan=False)


def make_rect(x1, y1, x2, y2) -> Rect:
    return Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))


class TestConstruction:
    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Rect(1.0, 0.0, 0.0, 1.0)

    def test_zero_area_allowed(self):
        r = Rect(0.5, 0.5, 0.5, 0.5)
        assert r.area == 0.0

    def test_from_points_orders_coordinates(self):
        r = Rect.from_points(Point(0.9, 0.1), Point(0.1, 0.9))
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == (0.1, 0.1, 0.9, 0.9)

    def test_dimensions(self):
        r = Rect(0.0, 0.0, 2.0, 3.0)
        assert r.width == 2.0
        assert r.height == 3.0
        assert r.area == 6.0

    def test_center(self):
        assert Rect(0.0, 0.0, 2.0, 4.0).center() == Point(1.0, 2.0)

    def test_corners_order(self):
        corners = Rect(0.0, 0.0, 1.0, 1.0).corners()
        assert corners == (
            Point(0.0, 0.0),
            Point(1.0, 0.0),
            Point(1.0, 1.0),
            Point(0.0, 1.0),
        )


class TestContainment:
    def test_contains_interior_point(self):
        assert Rect(0.0, 0.0, 1.0, 1.0).contains_point(Point(0.5, 0.5))

    def test_boundary_is_closed(self):
        r = Rect(0.0, 0.0, 1.0, 1.0)
        assert r.contains_point(Point(0.0, 0.0))
        assert r.contains_point(Point(1.0, 1.0))
        assert r.contains_point(Point(0.5, 1.0))

    def test_outside_point(self):
        assert not Rect(0.0, 0.0, 1.0, 1.0).contains_point(Point(1.1, 0.5))

    def test_contains_rect_self(self):
        r = Rect(0.0, 0.0, 1.0, 1.0)
        assert r.contains_rect(r)

    def test_contains_smaller_rect(self):
        assert Rect(0.0, 0.0, 1.0, 1.0).contains_rect(Rect(0.2, 0.2, 0.8, 0.8))

    def test_does_not_contain_overlapping(self):
        assert not Rect(0.0, 0.0, 1.0, 1.0).contains_rect(
            Rect(0.5, 0.5, 1.5, 1.5)
        )


class TestIntersection:
    def test_overlapping(self):
        assert Rect(0.0, 0.0, 1.0, 1.0).intersects(Rect(0.5, 0.5, 2.0, 2.0))

    def test_touching_edges_intersect(self):
        assert Rect(0.0, 0.0, 1.0, 1.0).intersects(Rect(1.0, 0.0, 2.0, 1.0))

    def test_touching_corner_intersects(self):
        assert Rect(0.0, 0.0, 1.0, 1.0).intersects(Rect(1.0, 1.0, 2.0, 2.0))

    def test_disjoint(self):
        assert not Rect(0.0, 0.0, 1.0, 1.0).intersects(Rect(1.1, 0.0, 2.0, 1.0))

    @given(unit, unit, unit, unit, unit, unit, unit, unit)
    def test_intersection_symmetric(self, a, b, c, d, e, f, g, h):
        r1 = make_rect(a, b, c, d)
        r2 = make_rect(e, f, g, h)
        assert r1.intersects(r2) == r2.intersects(r1)


class TestOperations:
    def test_inflated_grows_every_side(self):
        r = Rect(0.3, 0.3, 0.7, 0.7).inflated(0.1)
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == pytest.approx(
            (0.2, 0.2, 0.8, 0.8)
        )

    def test_inflated_negative_shrinks(self):
        r = Rect(0.0, 0.0, 1.0, 1.0).inflated(-0.25)
        assert (r.xmin, r.xmax) == (0.25, 0.75)

    def test_inflated_inverting_raises(self):
        with pytest.raises(ValueError):
            Rect(0.0, 0.0, 0.2, 0.2).inflated(-0.2)

    def test_clamp_inside_point_unchanged(self):
        r = Rect(0.0, 0.0, 1.0, 1.0)
        assert r.clamp_point(Point(0.4, 0.6)) == Point(0.4, 0.6)

    def test_clamp_outside_point(self):
        r = Rect(0.0, 0.0, 1.0, 1.0)
        assert r.clamp_point(Point(2.0, -1.0)) == Point(1.0, 0.0)

    @given(unit, unit)
    def test_clamped_point_is_contained(self, x, y):
        r = Rect(0.25, 0.25, 0.75, 0.75)
        assert r.contains_point(r.clamp_point(Point(x * 3 - 1, y * 3 - 1)))
