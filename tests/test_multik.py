"""Multiple concurrent top-k queries over one shared monitor."""

import pytest

from repro.core.multik import MultiQueryCTUP
from repro.core import OptCTUP


@pytest.fixture
def multi(small_config, small_places, small_units):
    m = MultiQueryCTUP(small_config, small_places, small_units)
    m.register("dispatch", 3)
    m.register("dashboard", 8)
    m.initialize()
    return m


class TestRegistry:
    def test_shared_k_is_max(self, multi):
        assert multi.shared_k == 8
        assert multi.queries == {"dispatch": 3, "dashboard": 8}

    def test_register_before_init_required(
        self, small_config, small_places, small_units
    ):
        m = MultiQueryCTUP(small_config, small_places, small_units)
        with pytest.raises(RuntimeError):
            m.initialize()

    def test_invalid_k(self, multi):
        with pytest.raises(ValueError):
            multi.register("bad", 0)

    def test_unregister(self, multi):
        multi.unregister("dispatch")
        assert "dispatch" not in multi.queries
        with pytest.raises(KeyError):
            multi.top_k("dispatch")

    def test_unregister_unknown(self, multi):
        with pytest.raises(KeyError):
            multi.unregister("ghost")

    def test_double_initialize(self, multi):
        with pytest.raises(RuntimeError):
            multi.initialize()

    def test_process_before_init(self, small_config, small_places, small_units, small_stream):
        m = MultiQueryCTUP(small_config, small_places, small_units)
        m.register("q", 2)
        with pytest.raises(RuntimeError):
            m.process(small_stream[0])


class TestAnswers:
    def test_prefix_relationship(self, multi):
        small = multi.top_k("dispatch")
        large = multi.top_k("dashboard")
        assert small == large[:3]
        assert len(small) == 3
        assert len(large) == 8

    def test_answers_match_dedicated_monitors(
        self, multi, small_config, small_places, small_units, small_stream, small_oracle
    ):
        dedicated = OptCTUP(
            small_config.replace(k=3), small_places, small_units
        )
        dedicated.initialize()
        for update in small_stream.prefix(80):
            small_oracle.apply(update)
            multi.process(update)
            dedicated.process(update)
            verdict = small_oracle.validate(multi.top_k("dispatch"), 3)
            assert verdict.ok, verdict.problems
            assert multi.sk("dispatch") == dedicated.sk()

    def test_sk_per_query(self, multi):
        assert multi.sk("dispatch") <= multi.sk("dashboard")


class TestRebuild:
    def test_growing_k_rebuilds(self, multi, small_oracle, small_stream):
        for update in small_stream.prefix(20):
            small_oracle.apply(update)
            multi.process(update)
        assert multi.rebuilds == 0
        multi.register("analyst", 20)
        assert multi.rebuilds == 1
        assert multi.shared_k == 20
        verdict = small_oracle.validate(multi.top_k("analyst"), 20)
        assert verdict.ok, verdict.problems

    def test_rebuild_preserves_unit_positions(
        self, multi, small_stream, small_oracle
    ):
        for update in small_stream.prefix(30):
            small_oracle.apply(update)
            multi.process(update)
        multi.register("wide", 15)
        # the rebuilt monitor answers from the *current* positions.
        verdict = small_oracle.validate(multi.top_k("wide"), 15)
        assert verdict.ok, verdict.problems
        # and keeps processing the stream consistently afterwards.
        for update in small_stream.updates[30:60]:
            small_oracle.apply(update)
            multi.process(update)
        verdict = small_oracle.validate(multi.top_k("wide"), 15)
        assert verdict.ok, verdict.problems

    def test_shrinking_does_not_rebuild(self, multi):
        multi.register("tiny", 1)
        assert multi.rebuilds == 0
        assert multi.shared_k == 8
        assert len(multi.top_k("tiny")) == 1
