"""Brinkhoff-style moving objects on a road network.

Each object starts at a network node, draws a random destination, routes
to it along the fastest path, and advances every simulation tick at the
speed of the edge it is on. When it has moved at least
``report_distance`` from its last *reported* position it sends a
location update — the distance-threshold reporting policy of §II-A
("e.g. one meter away from the location reported previously").
Arriving objects immediately draw a new destination, so the fleet keeps
patrolling forever.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.geometry import Point
from repro.model import LocationUpdate, Unit
from repro.roadnet.network import RoadNetwork


@dataclass
class RoadObject:
    """One moving object and its route state."""

    unit_id: int
    node: object  # node the object last passed
    path: list  # remaining nodes to visit (path[0] == next node)
    offset: float  # distance already covered on the current edge
    position: Point
    reported: Point  # last position sent to the server

    def current_edge(self) -> tuple | None:
        if not self.path:
            return None
        return (self.node, self.path[0])


class NetworkMobility:
    """The network-based mobility model (implements ``Mobility``).

    Parameters
    ----------
    network:
        the road map objects move on.
    count:
        fleet size (|U| of Table III).
    speed:
        base distance covered per tick on a class-0 road.
    report_distance:
        minimum displacement between two reports of the same object.
    seed:
        drives initial placement, destination choice and everything else.
    """

    def __init__(
        self,
        network: RoadNetwork,
        count: int,
        speed: float = 0.01,
        report_distance: float = 0.005,
        seed: int = 0,
    ) -> None:
        if count <= 0:
            raise ValueError("need at least one moving object")
        if speed <= 0:
            raise ValueError("speed must be positive")
        if report_distance < 0:
            raise ValueError("report distance cannot be negative")
        self.network = network
        self._speed = speed
        self._report_distance = report_distance
        self._rng = random.Random(seed)
        self._time = 0.0
        self.objects: list[RoadObject] = []
        for unit_id in range(count):
            node = network.random_node(self._rng)
            position = network.node_point(node)
            obj = RoadObject(
                unit_id=unit_id,
                node=node,
                path=[],
                offset=0.0,
                position=position,
                reported=position,
            )
            self._assign_destination(obj)
            self.objects.append(obj)

    # -- fleet construction ------------------------------------------------

    def initial_units(self, protection_range: float) -> list[Unit]:
        """The fleet as :class:`Unit` records at their starting positions."""
        return [
            Unit(
                unit_id=obj.unit_id,
                location=obj.reported,
                protection_range=protection_range,
            )
            for obj in self.objects
        ]

    # -- simulation ----------------------------------------------------------

    def updates(self, count: int) -> Iterator[LocationUpdate]:
        """Yield the next ``count`` location updates (ticking as needed)."""
        produced = 0
        while produced < count:
            for update in self._tick():
                yield update
                produced += 1
                if produced >= count:
                    return

    def _tick(self) -> list[LocationUpdate]:
        """Advance every object by one time unit; collect reports."""
        self._time += 1.0
        reports = []
        for obj in self.objects:
            self._advance(obj, self._speed)
            if (
                obj.position.distance_to(obj.reported)
                >= self._report_distance
            ):
                update = LocationUpdate(
                    unit_id=obj.unit_id,
                    old_location=obj.reported,
                    new_location=obj.position,
                    timestamp=self._time,
                )
                obj.reported = obj.position
                reports.append(update)
        return reports

    def _advance(self, obj: RoadObject, base_distance: float) -> None:
        """Move one object along its route by a tick's worth of travel."""
        budget = base_distance
        while budget > 0:
            edge = obj.current_edge()
            if edge is None:
                self._assign_destination(obj)
                edge = obj.current_edge()
                if edge is None:  # isolated single-node network
                    return
            a, b = edge
            length = self.network.edge_length(a, b)
            speed_factor = self.network.edge_speed(a, b)
            remaining = length - obj.offset
            step = budget * speed_factor
            if step < remaining or length == 0:
                obj.offset += step
                obj.position = self._interpolate(a, b, obj.offset, length)
                return
            # consume the rest of this edge and carry on from node b.
            budget -= remaining / speed_factor
            obj.node = b
            obj.path.pop(0)
            obj.offset = 0.0
            obj.position = self.network.node_point(b)

    def _interpolate(self, a, b, offset: float, length: float) -> Point:
        pa = self.network.node_point(a)
        pb = self.network.node_point(b)
        if length <= 0:
            return pb
        t = min(offset / length, 1.0)
        return Point(pa.x + (pb.x - pa.x) * t, pa.y + (pb.y - pa.y) * t)

    def _assign_destination(self, obj: RoadObject) -> None:
        """Draw a fresh destination and route to it."""
        for _ in range(8):
            destination = self.network.random_node(self._rng)
            if destination != obj.node:
                break
        else:
            return
        path = self.network.shortest_path(obj.node, destination)
        obj.path = path[1:]
        obj.offset = 0.0
