"""The control-event vocabulary and its journal codec.

Every live reconfiguration is one of six event kinds. Events are plain
frozen dataclasses so they can be journaled (see :func:`encode_event`),
compared in tests, and replayed deterministically during recovery.

The codec is JSON-dict shaped to match the update journal's record
style: ``{"kind": ..., ...payload}``. A :class:`~repro.model.Place` is
encoded field-by-field (``{"id", "x", "y", "required", "kind"}``) so a
journal line never depends on pickling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Union

from repro.model import Place, Point


@dataclass(frozen=True, slots=True)
class PlaceAdded:
    """A new place enters the catalog."""

    place: Place


@dataclass(frozen=True, slots=True)
class PlaceRemoved:
    """A place leaves the catalog."""

    place_id: int


@dataclass(frozen=True, slots=True)
class PlaceReweighted:
    """A place's required protection changes (location and id stay)."""

    place_id: int
    required_protection: int


@dataclass(frozen=True, slots=True)
class KChanged:
    """The answer size changes; ``k = 0`` suspends reporting."""

    k: int


@dataclass(frozen=True, slots=True)
class GridRetuned:
    """The grid granularity changes (always a rebuild — every cell
    boundary, page assignment, and bound moves at once)."""

    granularity: int


@dataclass(frozen=True, slots=True)
class ShardPlanChanged:
    """The shard count (and optionally the placement strategy) changes.

    Only meaningful on a :class:`~repro.shard.monitor.ShardedMonitor`;
    plain monitors reject it.
    """

    shards: int
    strategy: str = "striped"


ControlEvent = Union[
    PlaceAdded,
    PlaceRemoved,
    PlaceReweighted,
    KChanged,
    GridRetuned,
    ShardPlanChanged,
]


@dataclass(frozen=True, slots=True)
class EpochReport:
    """The receipt of one control application.

    ``rebuilt`` says whether the scheme fell back to a from-scratch
    rebuild of its derived state; the cost triple (``cells_accessed``,
    ``places_loaded``, ``page_reads``) is the work the application
    itself performed — measured around the ledger-neutral wrapper, so
    it is visible here even though the monitor's own counters do not
    move.
    """

    epoch: int
    kind: str
    rebuilt: bool
    seconds: float
    cells_accessed: int
    places_loaded: int
    page_reads: int
    sk: float


def _encode_place(place: Place) -> dict[str, Any]:
    return {
        "id": place.place_id,
        "x": place.location.x,
        "y": place.location.y,
        "required": place.required_protection,
        "kind": place.kind,
    }


def _decode_place(payload: Mapping[str, Any]) -> Place:
    return Place(
        place_id=int(payload["id"]),
        location=Point(float(payload["x"]), float(payload["y"])),
        required_protection=int(payload["required"]),
        kind=str(payload.get("kind", "place")),
    )


def encode_event(event: ControlEvent) -> dict[str, Any]:
    """The JSON-safe journal payload of ``event``."""
    if isinstance(event, PlaceAdded):
        return {"kind": "place_added", "place": _encode_place(event.place)}
    if isinstance(event, PlaceRemoved):
        return {"kind": "place_removed", "place_id": event.place_id}
    if isinstance(event, PlaceReweighted):
        return {
            "kind": "place_reweighted",
            "place_id": event.place_id,
            "required": event.required_protection,
        }
    if isinstance(event, KChanged):
        return {"kind": "k_changed", "k": event.k}
    if isinstance(event, GridRetuned):
        return {"kind": "grid_retuned", "granularity": event.granularity}
    if isinstance(event, ShardPlanChanged):
        return {
            "kind": "shard_plan_changed",
            "shards": event.shards,
            "strategy": event.strategy,
        }
    raise TypeError(f"not a control event: {event!r}")


def decode_event(payload: Mapping[str, Any]) -> ControlEvent:
    """Inverse of :func:`encode_event`."""
    kind = payload.get("kind")
    if kind == "place_added":
        return PlaceAdded(_decode_place(payload["place"]))
    if kind == "place_removed":
        return PlaceRemoved(int(payload["place_id"]))
    if kind == "place_reweighted":
        return PlaceReweighted(
            int(payload["place_id"]), int(payload["required"])
        )
    if kind == "k_changed":
        return KChanged(int(payload["k"]))
    if kind == "grid_retuned":
        return GridRetuned(int(payload["granularity"]))
    if kind == "shard_plan_changed":
        return ShardPlanChanged(
            int(payload["shards"]), str(payload.get("strategy", "striped"))
        )
    raise ValueError(f"unknown control event kind: {kind!r}")


def event_kind(event: ControlEvent) -> str:
    """The journal ``kind`` tag of ``event`` (for reports and metrics)."""
    return encode_event(event)["kind"]
