"""Fig. 6 — update cost varying the partitioning granularity.

Paper shape: OptCTUP stays below BasicCTUP for every granularity.
"""

from conftest import column

from repro.experiments import get_experiment


def test_fig6_vary_granularity(benchmark, record_result):
    result = benchmark.pedantic(
        get_experiment("fig6").run, rounds=1, iterations=1
    )
    record_result(result)
    assert column(result, "granularity") == [5, 10, 15, 20, 25]
    basic = column(result, "basic ms/upd")
    opt = column(result, "opt ms/upd")
    for g, b, o in zip(column(result, "granularity"), basic, opt):
        assert o < b, f"opt should beat basic at granularity={g}"
    # finer grids mean more (cheaper) cells for basic to flash through:
    # its illumination count grows with granularity.
    basic_cells = column(result, "basic cells/upd")
    assert basic_cells[-1] > basic_cells[0]
