"""The naïve baseline (§VI): recompute everything on every update.

On each location update the safety of *all* places is recomputed and the
top-k re-extracted. The recomputation walks the grid cell by cell and —
like the proposed schemes — only compares each cell's places against the
units whose protection region can reach the cell; that keeps the
comparison fair (all three schemes share one safety kernel) while the
naïve scheme still does O(|P|) work and a full storage scan per update.

Under the phase API the maintain phase is just the unit move and the
whole recomputation is the access phase — so burst processing (defer
``refresh()`` to the end of a batch) collapses N full scans into one.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.core.config import CTUPConfig
from repro.core.metrics import InitReport
from repro.core.monitor import CTUPMonitor
from repro.core.topk import kth_smallest, topk_rows
from repro.geometry import Rect
from repro.model import LocationUpdate, Place, SafetyRecord, Unit


class NaiveCTUP(CTUPMonitor):
    """Full recomputation per update."""

    name = "naive"

    STATE_FIELDS = ("_ids", "_safety")
    TRANSIENT_FIELDS = ("_plan",)

    def __init__(
        self,
        config: CTUPConfig,
        places: Sequence[Place],
        units: Iterable[Unit],
    ) -> None:
        super().__init__(config, places, units)
        self._ids = np.empty(0, dtype=np.int64)
        self._safety = np.empty(0, dtype=np.float64)
        #: per-cell recomputation plan: (cell id, rect, row range).
        self._plan: list[tuple[object, Rect, int, int]] = []

    def _build_initial_state(self) -> None:
        ids = []
        row = 0
        for cell in self.store.occupied_cells():
            arrays = self.store.cell_arrays(cell)
            ids.append(arrays.ids)
            self._plan.append(
                (cell, self.grid.cell_rect(cell), row, row + len(arrays))
            )
            row += len(arrays)
            self.counters.places_loaded += len(arrays)
        if ids:
            self._ids = np.concatenate(ids)
        self._safety = np.empty(len(self._ids), dtype=np.float64)
        self._recompute()

    def _init_report(self, elapsed: float) -> InitReport:
        # the naïve counters charge the initial scan as a plain
        # recomputation, not as cell accesses; report the true figures.
        return InitReport(
            seconds=elapsed,
            cells_accessed=len(self._plan),
            places_loaded=len(self._ids),
            sk=self.sk(),
        )

    def _recompute(self) -> None:
        for cell, rect, lo, hi in self._plan:
            arrays = self.store.cell_arrays(cell)
            ap, compared = self.units.ap_counts_near(arrays.xs, arrays.ys, rect)
            self._safety[lo:hi] = ap - arrays.required
            self.counters.distance_rows += (hi - lo) * compared
        self.counters.places_loaded += len(self._ids)

    def _apply(self, update: LocationUpdate) -> None:
        self.units.apply(update)

    def _refresh(self) -> int:
        self._recompute()
        self.counters.cells_accessed += len(self._plan)
        return len(self._plan)

    def _reset_scheme_state(self) -> None:
        # _build_initial_state appends to the plan — it must start empty.
        self._ids = np.empty(0, dtype=np.int64)
        self._safety = np.empty(0, dtype=np.float64)
        self._plan = []

    def top_k(self) -> list[SafetyRecord]:
        return self.partial_top_k(self.config.k)

    def partial_top_k(self, m: int) -> list[SafetyRecord]:
        # all safeties are in memory: any prefix length is answerable.
        rows = topk_rows(self._ids, self._safety, m)
        return [
            SafetyRecord(self._place_at(row), float(self._safety[row]))
            for row in rows.tolist()
        ]

    def _place_at(self, row: int) -> Place:
        """Fetch the :class:`Place` record behind a result row.

        The naïve scheme keeps no place objects in memory (it only needs
        them when the result is actually read), so this re-reads the
        owning cell from the lower storage level.
        """
        for cell, _rect, lo, hi in self._plan:
            if lo <= row < hi:
                return self.store.read_cell(cell)[row - lo]
        raise IndexError(f"row {row} not in any cell")

    def sk(self) -> float:
        if self.config.k <= 0:
            return -math.inf
        if len(self._safety) == 0:
            return math.inf
        return kth_smallest(self._safety, self.config.k)

    # -- checkpointing ----------------------------------------------------

    def _export_scheme_state(self) -> dict[str, Any]:
        return {
            "ids": [int(i) for i in self._ids],
            "safety": [float(s) for s in self._safety],
        }

    def _restore_scheme_state(self, fields: Mapping[str, Any]) -> None:
        # the recomputation plan is derived from the (static) store
        # layout; rebuild it and verify the row order matches the export.
        ids: list[np.ndarray] = []
        row = 0
        self._plan = []
        for cell in self.store.occupied_cells():
            arrays = self.store.cell_arrays(cell)
            ids.append(arrays.ids)
            self._plan.append(
                (cell, self.grid.cell_rect(cell), row, row + len(arrays))
            )
            row += len(arrays)
        self._ids = (
            np.concatenate(ids) if ids else np.empty(0, dtype=np.int64)
        )
        if self._ids.tolist() != [int(i) for i in fields["ids"]]:
            raise ValueError(
                "restored place rows do not match the stored place set"
            )
        safety = np.asarray(fields["safety"], dtype=np.float64)
        if len(safety) != len(self._ids):
            raise ValueError("safety table length mismatch")
        self._safety = safety
