"""Post-incident analysis with the result history.

After a shift, the duty commander wants to know which places spent the
longest time among the top-k unsafe — and whether a specific place was
exposed at the moment an incident was called in. :class:`TopKHistory`
answers both from the recorded change log, without re-running anything.

Run:  python examples/exposure_report.py
"""

from collections import defaultdict

from repro import CTUPConfig, OptCTUP
from repro.bench.reporting import format_table
from repro.core import ChangeTracker, TopKHistory
from repro.roadnet import NetworkMobility, grid_network
from repro.workloads import generate_places, record_stream


def main() -> None:
    config = CTUPConfig(k=10, delta=4, protection_range=0.1, granularity=10)
    places = generate_places(6_000, seed=29)
    mobility = NetworkMobility(
        grid_network(seed=12), count=70, speed=0.005, report_distance=0.005,
        seed=31,
    )
    units = mobility.initial_units(config.protection_range)
    stream = record_stream(mobility, 2_500)

    tracker = ChangeTracker(OptCTUP(config, places, units))
    tracker.initialize()
    history = TopKHistory(tracker)
    history.start(timestamp=0.0)
    for update in stream:
        tracker.process(update)
    shift_end = stream[len(stream) - 1].timestamp
    print(
        f"shift complete: {len(stream)} updates, "
        f"{history.change_count} top-{config.k} changes recorded\n"
    )

    # total exposure per place that was ever top-k.
    ever_exposed: set[int] = set(tracker.monitor.topk_ids())
    exposures = defaultdict(float)
    for pid in list(ever_exposed):
        exposures[pid] = history.total_exposure(pid, now=shift_end)
    # places that entered at some point during the shift:
    for change in history._changes:
        for record in change.entered:
            if record.place_id not in exposures:
                exposures[record.place_id] = history.total_exposure(
                    record.place_id, now=shift_end
                )

    place_by_id = {p.place_id: p for p in places}
    worst = sorted(exposures.items(), key=lambda kv: -kv[1])[:8]
    print(
        format_table(
            ["place", "kind", "exposed (time units)", "% of shift"],
            [
                [
                    pid,
                    place_by_id[pid].kind,
                    seconds,
                    100 * seconds / shift_end,
                ]
                for pid, seconds in worst
            ],
            title="longest-exposed places this shift",
        )
    )

    # was the worst offender exposed mid-shift?
    suspect, _ = worst[0]
    incident_time = shift_end / 2
    verdict = history.was_topk(suspect, incident_time)
    print(
        f"\nincident at t={incident_time:.0f}: place #{suspect} "
        f"({place_by_id[suspect].kind}) was "
        f"{'EXPOSED' if verdict else 'covered'} at that moment"
    )
    intervals = history.exposures(suspect)
    print(f"its exposure intervals: {len(intervals)}")
    for exposure in intervals[:5]:
        end = "ongoing" if exposure.left_at is None else f"{exposure.left_at:.0f}"
        print(f"  t={exposure.entered_at:.0f} .. {end}")


if __name__ == "__main__":
    main()
