"""ObservabilityHooks: session-level metrics riding the hook bus.

The bridge (:mod:`repro.obs.bridge`) mirrors the monitor's *ledgers*;
this adapter records the *stream* — events the ledgers cannot see, like
batch sizes, top-k movement and the current SK — as true registry
counters/histograms, updated live as the session runs.  It is appended
automatically by :class:`~repro.engine.session.MonitorSession` when an
Observability bundle is attached.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.engine.hooks import MonitorHooks

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.events import TopKChange
    from repro.core.metrics import UpdateReport
    from repro.model import LocationUpdate
    from repro.obs.spec import Observability

__all__ = ["ObservabilityHooks"]

#: Batch-size buckets: powers of two up to the largest burst a session
#: realistically coalesces.
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0)


class ObservabilityHooks(MonitorHooks):
    """Bridges session events onto an Observability bundle."""

    def __init__(self, obs: "Observability") -> None:
        self.obs = obs
        registry = obs.registry
        self._updates = registry.counter(
            "ctup_session_updates_total",
            "Location updates fed into the session.",
        )
        self._batches = registry.counter(
            "ctup_session_batches_total",
            "Bursts flushed through the monitor (batch mode).",
        )
        self._changes = registry.counter(
            "ctup_session_topk_changes_total",
            "Times the top-k result (or SK) moved.",
        )
        self._refreshes = registry.counter(
            "ctup_session_refreshes_total",
            "Access phases run by the session.",
        )
        self._cells = registry.counter(
            "ctup_session_cells_accessed_total",
            "Cells touched by session access phases.",
        )
        self._batch_size = registry.histogram(
            "ctup_session_batch_size",
            "Flushed burst sizes, in raw updates.",
            buckets=_BATCH_BUCKETS,
        )
        self._sk = registry.gauge(
            "ctup_session_sk",
            "Current SK (the k-th smallest safety; +Inf below k places).",
        )

    def on_update_start(self, update: "LocationUpdate") -> None:
        self._updates.inc()

    def on_update_end(self, update: "LocationUpdate", report: "UpdateReport") -> None:
        self._sk.set(report.sk)

    def on_batch_flush(
        self, updates: Sequence["LocationUpdate"], report: "UpdateReport"
    ) -> None:
        self._batches.inc()
        self._batch_size.observe(float(len(updates)))

    def on_topk_change(self, change: "TopKChange") -> None:
        self._changes.inc()

    def on_refresh(self, accessed: int) -> None:
        self._refreshes.inc()
        self._cells.inc(float(accessed))
