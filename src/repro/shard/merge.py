"""Exact global top-k from per-shard partial results.

Each shard monitor answers top-k over *its* places only; the global
answer is the k lexicographically smallest ``(safety, place_id)`` pairs
across all shards. Pulling the full k records from every shard is
correct but wasteful — a shard whose local safeties are high can never
place a record in the global result. :class:`GlobalTopK` instead pulls a
small prefix from each shard and re-queries a shard only when its
**floor** — a proven exclusive lower bound on every record it has not
yet reported — could still beat the tentative global k-th pair.

The floor comes from the monitor contract (see
``CTUPMonitor.partial_top_k``): a shard's unreported records are either
records it tracks exactly, all lexicographically greater than the last
reported pair, or places it does not track, whose safeties are at least
the shard's local SK (the schemes' "every place below SK is maintained"
invariant). ``min(last_pair, (local_sk, -inf))`` therefore bounds both
kinds, and a shard whose floor is not below the current global k-th pair
can be left alone — the refill rule of the merge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.topk import tie_key
from repro.model import SafetyRecord

if TYPE_CHECKING:
    from repro.core.monitor import CTUPMonitor

#: stand-in for "any possible place id is larger": makes ``(sk, _FLOOR_ID)``
#: an *exclusive* bound below every real ``(safety >= sk, id)`` pair.
_FLOOR_ID = -(2**62)


def _pair(record: SafetyRecord) -> tuple[float, int]:
    return tie_key(record.safety, record.place_id)


@dataclass(slots=True)
class MergeStats:
    """Work counters of the merger (deterministic, hence guardable)."""

    merges: int = 0
    #: per-shard partial queries issued (initial pulls + refills).
    shards_queried: int = 0
    #: shards re-queried because their floor beat the global k-th.
    refills: int = 0
    #: records received across all partial queries.
    records_pulled: int = 0

    def restore(self, values: "MergeStats") -> None:
        """Overwrite every counter with ``values`` (checkpoint resume)."""
        self.merges = values.merges
        self.shards_queried = values.shards_queried
        self.refills = values.refills
        self.records_pulled = values.records_pulled


class GlobalTopK:
    """Merges per-shard partial top-k lists into the exact global top-k."""

    def __init__(self, k: int, initial_request: int | None = None) -> None:
        if k < 0:
            raise ValueError(f"k cannot be negative, got {k}")
        self.k = k
        #: records requested from each shard on the first pull; defaults
        #: to ``ceil(k / S) + 1`` (the expected share plus slack).
        self.initial_request = initial_request
        self.stats = MergeStats()

    def merge(self, monitors: Sequence) -> list[SafetyRecord]:
        """The global top-k over ``monitors`` (one per shard), sorted by
        ``(safety, place_id)``; shorter only when the shards together
        hold fewer than k places."""
        if not monitors:
            raise ValueError("cannot merge zero shards")
        k = self.k
        if k == 0:
            # top-0 is empty by definition; still bill the merge so the
            # work ledger sees every merger invocation.
            self.stats.merges += 1
            return []
        first = self.initial_request or (-(-k // len(monitors)) + 1)
        requested = [min(k, first)] * len(monitors)
        pulled: list[list[SafetyRecord]] = [[] for _ in monitors]
        floors: list[tuple[float, int] | None] = [None] * len(monitors)
        can_refill = [False] * len(monitors)
        for s, monitor in enumerate(monitors):
            self._pull(monitor, s, requested[s], pulled, floors, can_refill)
        self.stats.merges += 1
        while True:
            merged = sorted(
                (record for records in pulled for record in records),
                key=_pair,
            )
            if len(merged) >= k:
                kth = _pair(merged[k - 1])
                needy = [
                    s
                    for s in range(len(monitors))
                    if can_refill[s]
                    and floors[s] is not None
                    and floors[s] < kth
                ]
            else:
                # fewer than k records so far: anything withheld counts.
                needy = [s for s in range(len(monitors)) if can_refill[s]]
            if not needy:
                return merged[:k]
            self.stats.refills += len(needy)
            for s in needy:
                requested[s] = min(k, requested[s] * 2)
                self._pull(
                    monitors[s], s, requested[s], pulled, floors, can_refill
                )

    def _pull(
        self,
        monitor: "CTUPMonitor",
        s: int,
        request: int,
        pulled: list[list[SafetyRecord]],
        floors: list[tuple[float, int] | None],
        can_refill: list[bool],
    ) -> None:
        """Query one shard and update its floor / refill eligibility."""
        records = monitor.partial_top_k(request)
        self.stats.shards_queried += 1
        self.stats.records_pulled += len(records)
        pulled[s] = records
        n = len(records)
        if n >= monitor.store.place_count:
            # the shard reported every place it owns: nothing withheld.
            floors[s] = None
            can_refill[s] = False
        elif n < request:
            # the shard handed over everything it can answer exactly;
            # the rest is untracked, hence at least its local SK.
            floors[s] = (monitor.sk(), _FLOOR_ID)
            can_refill[s] = False
        else:
            # a full prefix: withheld tracked records are lex-greater
            # than the last reported pair, untracked ones >= local SK.
            floors[s] = min(_pair(records[-1]), (monitor.sk(), _FLOOR_ID))
            # a shard never contributes more than k records to a
            # k-result, so the request caps at k.
            can_refill[s] = request < self.k
