"""Benchmark-regression guard for the update hot path.

``benchmarks/bench_hotpath.py`` measures the pinned-seed hot-path
workload and writes a canonical JSON document; this module compares such
a document against the committed baseline (``BENCH_hotpath.json`` at the
repository root) and classifies every difference:

* **structural** — the two documents do not describe the same
  experiment: different schema version, scheme set, profiles or workload
  parameters. These make any numeric comparison meaningless and are the
  only findings that fail :meth:`GuardReport.ok` — CI must hard-fail on
  them, because they mean the baseline was silently invalidated.
* **regression / improvement** — a metric moved beyond its tolerance.
  Deterministic work counters (units compared, cells accessed, distance
  rows, page I/O) are machine-independent and get a tight tolerance;
  wall-clock metrics are noisy on shared runners and get a loose one.
  Either way these are advisory: the guard reports, humans decide.

The split mirrors how the numbers behave: counters only change when the
algorithm changes, wall time changes when the weather does.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: metrics that are deterministic given (code, workload): compared tightly.
COUNTER_METRICS = (
    "candidate_units",
    "reachable_units",
    "cells_accessed",
    "distance_rows",
    "page_reads",
    "array_hits",
    "final_sk",
)

#: wall-clock metrics: noisy, never more than a warning.
WALL_METRICS = (
    "wall_seconds",
    "maintain_seconds",
    "access_seconds",
)

#: default relative tolerances per metric class.
COUNTER_TOLERANCE = 0.02
WALL_TOLERANCE = 0.60

SCHEMA_VERSION = 1
BENCH_NAME = "hotpath"


@dataclass(frozen=True)
class GuardFinding:
    """One classified difference between baseline and current run."""

    kind: str  # "structural" | "regression" | "improvement"
    path: str  # e.g. "default/opt/indexed/candidate_units"
    message: str
    #: wall-clock findings are advisory even under a strict policy.
    wall: bool = False

    def __str__(self) -> str:
        return f"[{self.kind}] {self.path}: {self.message}"


@dataclass
class GuardReport:
    """Everything the guard found, ready for CI or a human."""

    findings: list[GuardFinding] = field(default_factory=list)

    @property
    def structural(self) -> list[GuardFinding]:
        return [f for f in self.findings if f.kind == "structural"]

    @property
    def regressions(self) -> list[GuardFinding]:
        return [f for f in self.findings if f.kind == "regression"]

    @property
    def improvements(self) -> list[GuardFinding]:
        return [f for f in self.findings if f.kind == "improvement"]

    def ok(self, strict: bool = False) -> bool:
        """No structural mismatch; under ``strict`` also no counter drift.

        Wall-clock regressions never fail the guard — runners are too
        noisy for that to be signal.
        """
        if self.structural:
            return False
        if strict:
            return not any(f for f in self.regressions if not f.wall)
        return True

    def render(self) -> str:
        if not self.findings:
            return "bench guard: baseline and current run match."
        lines = [
            f"bench guard: {len(self.structural)} structural, "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s)"
        ]
        lines.extend(str(f) for f in self.findings)
        return "\n".join(lines)


def load_baseline(path: str | Path) -> dict[str, Any]:
    """Read a bench document; raises ``FileNotFoundError``/``ValueError``."""
    text = Path(path).read_text()
    doc = json.loads(text)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: bench document must be a JSON object")
    return doc


def write_baseline(path: str | Path, doc: dict[str, Any]) -> None:
    """Write a bench document canonically (sorted keys, trailing newline)."""
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _relative_change(base: float, current: float) -> float:
    if base == current:
        return 0.0
    if base == 0:
        return math.inf
    return (current - base) / abs(base)


def _compare_metrics(
    base: dict[str, Any],
    current: dict[str, Any],
    path: str,
    findings: list[GuardFinding],
    counter_tolerance: float,
    wall_tolerance: float,
    counter_metrics: tuple[str, ...] = COUNTER_METRICS,
    wall_metrics: tuple[str, ...] = WALL_METRICS,
) -> None:
    for metric, tolerance, is_wall in [
        *((m, counter_tolerance, False) for m in counter_metrics),
        *((m, wall_tolerance, True) for m in wall_metrics),
    ]:
        if metric not in base and metric not in current:
            continue
        if metric not in base or metric not in current:
            findings.append(
                GuardFinding(
                    "structural",
                    f"{path}/{metric}",
                    "metric present on only one side",
                )
            )
            continue
        b, c = float(base[metric]), float(current[metric])
        change = _relative_change(b, c)
        if abs(change) <= tolerance:
            continue
        kind = "regression" if change > 0 else "improvement"
        findings.append(
            GuardFinding(
                kind,
                f"{path}/{metric}",
                f"{b:g} -> {c:g} ({change:+.1%}, tolerance {tolerance:.0%})",
                wall=is_wall,
            )
        )


def compare(
    baseline: dict[str, Any],
    current: dict[str, Any],
    counter_tolerance: float = COUNTER_TOLERANCE,
    wall_tolerance: float = WALL_TOLERANCE,
    *,
    bench: str = BENCH_NAME,
    counter_metrics: tuple[str, ...] = COUNTER_METRICS,
    wall_metrics: tuple[str, ...] = WALL_METRICS,
) -> GuardReport:
    """Classify every difference between two bench documents.

    The defaults guard the hot-path bench; other benchmarks pass their
    own ``bench`` name and metric tuples (metrics absent from both
    documents are ignored, so one guard serves every document shape that
    follows the profiles/schemes/modes layout).
    """
    findings: list[GuardFinding] = []

    for key, expected in (("bench", bench), ("version", SCHEMA_VERSION)):
        for name, doc in (("baseline", baseline), ("current", current)):
            if doc.get(key) != expected:
                findings.append(
                    GuardFinding(
                        "structural",
                        key,
                        f"{name} has {key}={doc.get(key)!r}, expected {expected!r}",
                    )
                )
    if any(f.kind == "structural" for f in findings):
        return GuardReport(findings)

    base_profiles = baseline.get("profiles", {})
    cur_profiles = current.get("profiles", {})
    # only profiles the *current* run measured are compared (a smoke run
    # must not be failed for skipping the default profile), but every
    # measured profile must exist in the baseline.
    for profile, cur_prof in cur_profiles.items():
        base_prof = base_profiles.get(profile)
        if base_prof is None:
            findings.append(
                GuardFinding(
                    "structural", profile, "profile missing from baseline"
                )
            )
            continue
        if base_prof.get("workload") != cur_prof.get("workload"):
            findings.append(
                GuardFinding(
                    "structural",
                    f"{profile}/workload",
                    f"workload parameters differ: baseline "
                    f"{base_prof.get('workload')} vs current "
                    f"{cur_prof.get('workload')}",
                )
            )
            continue
        base_schemes = base_prof.get("schemes", {})
        cur_schemes = cur_prof.get("schemes", {})
        if set(base_schemes) != set(cur_schemes):
            findings.append(
                GuardFinding(
                    "structural",
                    f"{profile}/schemes",
                    f"scheme sets differ: baseline {sorted(base_schemes)} "
                    f"vs current {sorted(cur_schemes)}",
                )
            )
            continue
        for scheme in sorted(cur_schemes):
            base_modes = base_schemes[scheme]
            cur_modes = cur_schemes[scheme]
            if set(base_modes) != set(cur_modes):
                findings.append(
                    GuardFinding(
                        "structural",
                        f"{profile}/{scheme}",
                        f"mode sets differ: baseline {sorted(base_modes)} "
                        f"vs current {sorted(cur_modes)}",
                    )
                )
                continue
            for mode in sorted(cur_modes):
                _compare_metrics(
                    base_modes[mode],
                    cur_modes[mode],
                    f"{profile}/{scheme}/{mode}",
                    findings,
                    counter_tolerance,
                    wall_tolerance,
                    counter_metrics,
                    wall_metrics,
                )
    return GuardReport(findings)
