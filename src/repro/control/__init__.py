"""Epoch-based reconfiguration (the control plane).

The data plane — location updates flowing through a monitor — assumes a
fixed world: a fixed place catalog, a fixed ``k``, a fixed grid, a fixed
shard plan. This package is the *only* sanctioned way to change any of
those while a monitor is live. Each change is a **control event**
applied at a batch boundary; applying one bumps the monitor's ``epoch``
counter, and every snapshot and journal record names the epoch it
belongs to, so recovery can replay a mixed stream of updates and
reconfigurations in order.

Layout:

``events``
    The event vocabulary (:class:`PlaceAdded` … :class:`ShardPlanChanged`),
    the JSON codec used by the journal, and :class:`EpochReport` — the
    receipt every application returns.
``catalog``
    :class:`PlaceCatalog` — the mutable façade over
    :class:`~repro.storage.placestore.PlaceStore`. Direct ``add_place`` /
    ``remove_place`` / ``reweight`` calls on a store outside
    ``repro.storage`` / ``repro.control`` are a lint violation (RPL015).
``apply``
    :func:`apply_control` — patches the world (store / config / grid),
    asks the scheme to patch its derived state incrementally, falls back
    to a documented rebuild-in-place when the scheme declines, and bumps
    the epoch. Ledger-neutral: a control application never changes the
    monitor's work counters.
``replay``
    :func:`fold_places` — folds journaled place events into a place
    list so recovery can rebuild a monitor whose catalog was mutated
    before the snapshot being restored.
"""

from repro.control.apply import apply_control
from repro.control.catalog import PlaceCatalog
from repro.control.events import (
    ControlEvent,
    EpochReport,
    GridRetuned,
    KChanged,
    PlaceAdded,
    PlaceRemoved,
    PlaceReweighted,
    ShardPlanChanged,
    decode_event,
    encode_event,
    event_kind,
)
from repro.control.replay import fold_places

__all__ = [
    "ControlEvent",
    "EpochReport",
    "GridRetuned",
    "KChanged",
    "PlaceAdded",
    "PlaceCatalog",
    "PlaceRemoved",
    "PlaceReweighted",
    "ShardPlanChanged",
    "apply_control",
    "decode_event",
    "encode_event",
    "event_kind",
    "fold_places",
]
