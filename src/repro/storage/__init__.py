"""The paper's two-level storage model (§II-A), simulated.

The lower level holds *all* places, grouped by grid cell into fixed-size
pages; it stands in for the disk. The higher level (the monitors) holds
the units, the per-cell bounds and a small fraction of places. Loading a
cell's places goes through :class:`PlaceStore`, which counts page reads
so the benchmarks can report machine-independent I/O costs alongside
wall-clock time. An optional LRU :class:`BufferPool` models a page
cache for the buffer-pool ablation.
"""

from repro.storage.iostats import IoStats
from repro.storage.pagestore import Page, PageStore
from repro.storage.buffer import BufferPool
from repro.storage.placestore import PlaceStore

__all__ = ["IoStats", "Page", "PageStore", "BufferPool", "PlaceStore"]
