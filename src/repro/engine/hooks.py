"""The monitoring-engine hook protocol.

Production concerns — metrics export, alert fan-out, per-update
timelines, replication shipping — should not require editing a monitor
or re-implementing the driving loop. A :class:`MonitorHooks` object
plugs into a :class:`~repro.engine.session.MonitorSession` and is called
at well-defined points of the update pipeline:

* ``on_update_start(update)`` — an update entered the session (before
  any work; in batch mode, before it is buffered);
* ``on_refresh(accessed)`` — an access phase ran (once per processed
  update in single mode, once per flushed burst in batch mode);
* ``on_update_end(update, report)`` — the update's work is complete and
  the result reflects it; in batch mode this fires once per update of
  the flushed burst, with the burst's shared report;
* ``on_batch_flush(updates, report)`` — a burst was flushed (batch mode
  only), after its ``on_update_end`` calls;
* ``on_topk_change(change)`` — the result moved (after ``on_update_end``
  / ``on_batch_flush``);
* ``on_control(event, report)`` — a reconfiguration event was applied
  (see :mod:`repro.control`); fires after the epoch bump, with the
  :class:`~repro.control.events.EpochReport` receipt.

All methods are no-ops by default; subclasses override what they need.
Hooks run synchronously on the ingest path — keep them cheap, or hand
off to a queue.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.events import TopKChange
from repro.core.metrics import UpdateReport
from repro.model import LocationUpdate


class MonitorHooks:
    """Base class for engine instrumentation (no-op defaults)."""

    def on_update_start(self, update: LocationUpdate) -> None:
        """An update entered the session, before any work."""

    def on_update_end(self, update: LocationUpdate, report: UpdateReport) -> None:
        """The update's work is complete; the result reflects it."""

    def on_batch_flush(
        self, updates: Sequence[LocationUpdate], report: UpdateReport
    ) -> None:
        """A burst was flushed through the monitor (batch mode only)."""

    def on_topk_change(self, change: TopKChange) -> None:
        """The top-k result (or SK) moved."""

    def on_refresh(self, accessed: int) -> None:
        """An access phase completed, touching ``accessed`` cells."""

    def on_control(self, event: object, report: object) -> None:
        """A control event was applied; ``report`` is the epoch receipt.

        Typed loosely (``object``) so this layer does not import
        :mod:`repro.control`, which sits above it.
        """


class HookList(MonitorHooks):
    """Fans every event out to an ordered list of hooks.

    Accepts either a sequence of hooks or one bare :class:`MonitorHooks`
    (the common single-hook case needs no wrapping tuple).
    """

    def __init__(self, hooks: MonitorHooks | Sequence[MonitorHooks] = ()) -> None:
        if isinstance(hooks, MonitorHooks):
            hooks = (hooks,)
        self.hooks: list[MonitorHooks] = list(hooks)

    def add(self, hook: MonitorHooks) -> None:
        """Append a hook (events fire in registration order)."""
        self.hooks.append(hook)

    def on_update_start(self, update):
        for hook in self.hooks:
            hook.on_update_start(update)

    def on_update_end(self, update, report):
        for hook in self.hooks:
            hook.on_update_end(update, report)

    def on_batch_flush(self, updates, report):
        for hook in self.hooks:
            hook.on_batch_flush(updates, report)

    def on_topk_change(self, change):
        for hook in self.hooks:
            hook.on_topk_change(change)

    def on_refresh(self, accessed):
        for hook in self.hooks:
            hook.on_refresh(accessed)

    def on_control(self, event, report):
        for hook in self.hooks:
            hook.on_control(event, report)
