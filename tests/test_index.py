"""The R-tree and the snapshot top-k algorithm."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.units import UnitIndex
from repro.geometry import Point, Rect
from repro.index import RTree, snapshot_top_k_unsafe
from repro.model import Place, Unit
from repro.validate import Oracle
from repro.workloads import generate_places, generate_units


@pytest.fixture(scope="module")
def places():
    return generate_places(800, seed=50)


@pytest.fixture(scope="module")
def tree(places):
    return RTree(places, fanout=8)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RTree([])

    def test_rejects_tiny_fanout(self, places):
        with pytest.raises(ValueError):
            RTree(places, fanout=1)

    def test_size(self, tree, places):
        assert len(tree) == len(places)

    def test_single_place(self):
        tree = RTree([Place(0, Point(0.5, 0.5), 3)])
        assert tree.height == 1
        assert tree.root.max_required == 3

    def test_all_places_reachable(self, tree, places):
        assert {p.place_id for p in tree.iter_places()} == {
            p.place_id for p in places
        }

    def test_height_logarithmic(self, tree, places):
        import math

        expected_max = math.ceil(math.log(len(places), 2)) + 1
        assert 1 <= tree.height <= expected_max


class TestStructuralInvariants:
    def test_mbrs_contain_children(self, tree):
        for node in tree.iter_nodes():
            if node.is_leaf:
                for place in node.places:
                    assert node.mbr.contains_point(place.location)
            else:
                for child in node.children:
                    assert node.mbr.contains_rect(child.mbr)

    def test_max_required_aggregates(self, tree):
        for node in tree.iter_nodes():
            if node.is_leaf:
                expected = max(p.required_protection for p in node.places)
            else:
                expected = max(c.max_required for c in node.children)
            assert node.max_required == expected

    def test_counts_aggregate(self, tree, places):
        assert tree.root.count == len(places)
        for node in tree.iter_nodes():
            if not node.is_leaf:
                assert node.count == sum(c.count for c in node.children)

    def test_fanout_respected(self, tree):
        for node in tree.iter_nodes():
            if node.is_leaf:
                assert 1 <= len(node.places) <= tree.fanout
            else:
                assert 1 <= len(node.children) <= tree.fanout


class TestRangeQuery:
    def test_matches_linear_scan(self, tree, places):
        window = Rect(0.2, 0.3, 0.55, 0.7)
        expected = {
            p.place_id for p in places if window.contains_point(p.location)
        }
        got = {p.place_id for p in tree.range_query(window)}
        assert got == expected

    def test_empty_window(self, tree):
        assert tree.range_query(Rect(2.0, 2.0, 3.0, 3.0)) == []

    def test_full_window(self, tree, places):
        assert len(tree.range_query(Rect(0, 0, 1, 1))) == len(places)

    @settings(max_examples=40)
    @given(
        st.floats(0, 1), st.floats(0, 1), st.floats(0, 0.5), st.floats(0, 0.5)
    )
    def test_range_query_property(self, tree, places, x, y, w, h):
        window = Rect(x, y, min(x + w, 1.0) + 1e-12, min(y + h, 1.0) + 1e-12)
        got = {p.place_id for p in tree.range_query(window)}
        expected = {
            p.place_id for p in places if window.contains_point(p.location)
        }
        assert got == expected


class TestCircleQuery:
    def test_matches_linear_scan(self, tree, places):
        center, radius = Point(0.4, 0.6), 0.15
        expected = {
            p.place_id
            for p in places
            if center.squared_distance_to(p.location) <= radius * radius
        }
        got = {p.place_id for p in tree.circle_query(center, radius)}
        assert got == expected

    def test_zero_radius(self, tree, places):
        target = places[17]
        got = tree.circle_query(target.location, 0.0)
        assert target.place_id in {p.place_id for p in got}


class TestNearest:
    def test_nearest_one(self, tree, places):
        query = Point(0.31, 0.62)
        got = tree.nearest(query, 1)[0]
        best = min(places, key=lambda p: query.distance_to(p.location))
        assert query.distance_to(got.location) == pytest.approx(
            query.distance_to(best.location)
        )

    def test_nearest_k_sorted(self, tree):
        query = Point(0.5, 0.5)
        got = tree.nearest(query, 10)
        distances = [query.distance_to(p.location) for p in got]
        assert distances == sorted(distances)
        assert len(got) == 10

    def test_nearest_matches_linear_scan(self, tree, places):
        query = Point(0.8, 0.2)
        got = [p.place_id for p in tree.nearest(query, 5)]
        expected = [
            p.place_id
            for p in sorted(
                places, key=lambda p: (query.distance_to(p.location), p.place_id)
            )[:5]
        ]
        # equal-distance orderings may differ; compare distances.
        gd = [query.distance_to(p.location) for p in tree.nearest(query, 5)]
        ed = sorted(query.distance_to(p.location) for p in places)[:5]
        assert gd == pytest.approx(ed)

    def test_nearest_k_larger_than_size(self, places):
        tree = RTree(places[:3])
        assert len(tree.nearest(Point(0.5, 0.5), 10)) == 3

    def test_nearest_invalid_k(self, tree):
        with pytest.raises(ValueError):
            tree.nearest(Point(0.5, 0.5), 0)


class TestSnapshotTopK:
    @pytest.fixture(scope="class")
    def units(self):
        return generate_units(40, 0.1, seed=51)

    def test_matches_oracle(self, tree, places, units):
        index = UnitIndex(units)
        oracle = Oracle(places, units)
        answer = snapshot_top_k_unsafe(tree, index, k=10)
        verdict = oracle.validate(answer.records, 10)
        assert verdict.ok, verdict.problems
        assert answer.sk == oracle.sk(10)

    def test_prunes_most_of_the_tree(self, tree, places, units):
        index = UnitIndex(units)
        answer = snapshot_top_k_unsafe(tree, index, k=5)
        assert answer.places_evaluated < len(places)
        assert answer.nodes_pruned > 0

    def test_k_covers_everything(self, places, units):
        tree = RTree(places[:20])
        index = UnitIndex(units)
        answer = snapshot_top_k_unsafe(tree, index, k=50)
        assert len(answer.records) == 20
        assert answer.sk == float("inf") or len(answer.records) == 20

    def test_invalid_k(self, tree, units):
        with pytest.raises(ValueError):
            snapshot_top_k_unsafe(tree, UnitIndex(units), 0)

    def test_records_sorted(self, tree, units):
        answer = snapshot_top_k_unsafe(tree, UnitIndex(units), 10)
        keys = [(r.safety, r.place_id) for r in answer.records]
        assert keys == sorted(keys)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), k=st.integers(1, 12))
    def test_snapshot_property(self, seed, k):
        rng = random.Random(seed)
        places = generate_places(rng.randint(30, 300), seed=seed)
        units = [
            Unit(i, Point(rng.random(), rng.random()), 0.12)
            for i in range(rng.randint(2, 25))
        ]
        tree = RTree(places, fanout=rng.choice([2, 4, 8, 16]))
        answer = snapshot_top_k_unsafe(tree, UnitIndex(units), k)
        oracle = Oracle(places, units)
        verdict = oracle.validate(answer.records, k)
        assert verdict.ok, verdict.problems
