"""Fig. 4 — per-update cost of the three schemes.

Paper shape: OptCTUP clearly outperforms both; BasicCTUP beats Naïve
but stays well behind OptCTUP. Wall-clock and machine-independent
counters (distance evaluations per update) must both rank
opt < basic < naive.
"""

from conftest import column

from repro.experiments import get_experiment


def test_fig4_update_cost(benchmark, record_result):
    result = benchmark.pedantic(
        get_experiment("fig4").run, rounds=1, iterations=1
    )
    record_result(result)
    algos = column(result, "algorithm")
    ms = dict(zip(algos, column(result, "avg update ms")))
    work = dict(zip(algos, column(result, "dist evals/upd")))
    maintained = dict(zip(algos, column(result, "maintained peak")))

    # wall-clock ordering: opt < basic < naive.
    assert ms["opt"] < ms["basic"] < ms["naive"]
    # the naive gap is large (the paper's headline claim).
    assert ms["naive"] > 3 * ms["opt"]

    # machine-independent work tells the same story more starkly.
    assert work["opt"] < work["basic"] < work["naive"]
    assert work["basic"] > 3 * work["opt"]
    assert work["naive"] > 20 * work["basic"]

    # drawback 2: opt maintains far fewer places than basic.
    assert maintained["opt"] * 5 < maintained["basic"]
