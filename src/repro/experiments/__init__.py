"""The per-figure experiment registry.

Every table and figure of the paper's evaluation (§VI) has an entry
here, keyed by experiment id (``fig3`` ... ``fig9``, ``table3``), plus
the ablations called out in DESIGN.md. Each entry knows how to build its
workload, run the algorithms it compares, and render the series the
paper plots. Both the ``benchmarks/`` suite and the CLI resolve
experiments through :func:`get_experiment`.
"""

from repro.experiments.defaults import TABLE3_DEFAULTS, default_config
from repro.experiments.registry import (
    Experiment,
    ExperimentResult,
    all_experiments,
    get_experiment,
)

__all__ = [
    "TABLE3_DEFAULTS",
    "default_config",
    "Experiment",
    "ExperimentResult",
    "all_experiments",
    "get_experiment",
]
