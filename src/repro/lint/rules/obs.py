"""RPL010 — observability stays at kernel pass boundaries.

The burst kernels prove their "near-zero overhead when disabled" budget
by checking ``monitor.obs`` **once** per pass and delegating to the
uninstrumented private kernel. A ``repro.obs`` import at runtime, or a
span/metric call inside a per-element loop, quietly converts the O(1)
boundary cost into O(moves) — every test keeps passing while the hot
path regresses. This rule polices :mod:`repro.core.kernels`:

* runtime ``import repro.obs`` / ``from repro.obs import ...`` is
  flagged (``if TYPE_CHECKING:`` blocks are exempt — annotations are
  free);
* observability calls (``.span``/``.record``/``.phase``/``.observe``/
  ``.inc``/``.dec``/``.set``/``.set_to``/``.labels`` on an
  ``obs``/``tracer``/``registry`` chain) inside a ``for``/``while``
  body are flagged — instrument around the loop, not in it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ProjectIndex, SourceFile
from repro.lint.registry import Violation, rule

SCOPES = ("repro.core.kernels",)

_OBS_METHODS = frozenset(
    {
        "span",
        "record",
        "phase",
        "observe",
        "inc",
        "dec",
        "set",
        "set_to",
        "labels",
    }
)
_OBS_ROOTS = frozenset({"obs", "tracer", "registry"})


@rule(
    "RPL010",
    "obs-pass-boundary",
    "no runtime repro.obs imports and no span/metric calls inside loop "
    "bodies in repro.core.kernels — observability wraps whole passes, "
    "never per-element work",
)
def check(source: SourceFile, project: ProjectIndex) -> Iterator[Violation]:
    if not source.in_packages(*SCOPES):
        return
    for node in _walk_runtime(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _is_obs_module(alias.name):
                    yield _import_violation(source, node, alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.module is not None and _is_obs_module(node.module):
                yield _import_violation(source, node, node.module)
        elif isinstance(node, (ast.For, ast.While)):
            for inner in ast.walk(node):
                if inner is node:
                    continue
                if isinstance(inner, ast.Call) and _is_obs_call(inner):
                    yield Violation(
                        code="RPL010",
                        message=(
                            "observability call "
                            f"({_call_name(inner)}) inside a loop body in "
                            "the kernels module — emit the span/metric "
                            "once around the whole pass, not per element"
                        ),
                        path=source.path,
                        line=inner.lineno,
                        col=inner.col_offset,
                    )


def _walk_runtime(tree: ast.Module) -> Iterator[ast.AST]:
    """Walk the module, skipping ``if TYPE_CHECKING:`` subtrees."""
    stack: list[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.If) and _is_type_checking(node.test):
            stack.extend(node.orelse)
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_type_checking(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _is_obs_module(name: str) -> bool:
    return name == "repro.obs" or name.startswith("repro.obs.")


def _import_violation(
    source: SourceFile, node: ast.stmt, module: str
) -> Violation:
    return Violation(
        code="RPL010",
        message=(
            f"runtime import of {module} in the kernels module — "
            "kernels receive an already-built Observability handle; "
            "keep repro.obs imports under `if TYPE_CHECKING:`"
        ),
        path=source.path,
        line=node.lineno,
        col=node.col_offset,
    )


def _is_obs_call(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in _OBS_METHODS:
        return False
    return _chain_mentions_obs(func.value)


def _chain_mentions_obs(expr: ast.expr) -> bool:
    while isinstance(expr, ast.Attribute):
        if expr.attr in _OBS_ROOTS:
            return True
        expr = expr.value
    if isinstance(expr, ast.Call):
        # e.g. registry.counter(...).labels(...).inc() — unwrap the call
        return _chain_mentions_obs(expr.func)
    return isinstance(expr, ast.Name) and expr.id in _OBS_ROOTS


def _call_name(call: ast.Call) -> str:
    assert isinstance(call.func, ast.Attribute)
    return f".{call.func.attr}(...)"
