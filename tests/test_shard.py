"""Sharded execution: plan/router/merge units plus equivalence suites.

The equivalence tests are the heart of the sharding correctness story:
for every scheme and every shard count the sharded monitor must report
the *same* top-k list as the unsharded monitor (the ``(safety, id)``
tie-break makes the answer unique), and with one shard the whole
execution — including the shard monitor's work counters — must be
bit-identical to running the plain scheme.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BasicCTUP, CTUPConfig, NaiveCTUP, OptCTUP
from repro.core.audit import audit_monitor
from repro.core.incremental import IncrementalNaiveCTUP
from repro.engine.session import MonitorSession
from repro.geometry import Point, Rect
from repro.grid.partition import GridPartition
from repro.model import Place, SafetyRecord
from repro.shard import (
    GlobalTopK,
    ShardPlan,
    ShardRouter,
    ShardedMonitor,
    plan_for,
)
from repro.shard.plan import plan_for as plan_for_direct
from repro.validate import Oracle
from repro.workloads import (
    RandomWalkMobility,
    generate_places,
    generate_units,
    record_stream,
)

SCHEMES = [NaiveCTUP, BasicCTUP, OptCTUP, IncrementalNaiveCTUP]
SHARD_COUNTS = [1, 2, 4, 7]


def _grid(n: int = 8) -> GridPartition:
    return GridPartition(Rect(0.0, 0.0, 1.0, 1.0), n, n)


def _result_pairs(monitor) -> list[tuple[int, float]]:
    return [(r.place_id, r.safety) for r in monitor.top_k()]


def _work_fields(counters) -> dict:
    """The deterministic (non-wall-clock) counter fields."""
    return {
        f.name: getattr(counters, f.name)
        for f in dataclasses.fields(counters)
        if not f.name.startswith("time_")
    }


def _replay(monitor, stream):
    monitor.initialize()
    for update in stream:
        monitor.process(update)
    return monitor


def _assert_same_answer(sharded, plain) -> None:
    """The equivalence the schemes guarantee: identical SK, identical
    safety sequence, and an identical strictly-below-SK set.

    The reported *ids* of places tied exactly at SK may differ between
    executions (paper Definition 4: any tied place is a valid k-th), so
    full list identity is only asserted for the full-recompute schemes
    — see ``test_topk_identical_for_full_recompute_schemes``.
    """
    assert sharded.sk() == plain.sk()
    s_pairs, p_pairs = _result_pairs(sharded), _result_pairs(plain)
    assert [s for _, s in s_pairs] == [s for _, s in p_pairs]
    sk = plain.sk()
    assert sorted(p for p in s_pairs if p[1] < sk) == sorted(
        p for p in p_pairs if p[1] < sk
    )


# -- the shard plan ---------------------------------------------------------


class TestShardPlan:
    def test_striped_covers_every_cell(self):
        grid = _grid()
        plan = ShardPlan.striped(grid, 4)
        assert plan.n_shards == 4
        assert sum(plan.cell_counts()) == grid.cell_count
        assert all(count > 0 for count in plan.cell_counts())

    def test_interleaved_and_hashed_cover_every_cell(self):
        grid = _grid()
        for plan in (
            ShardPlan.interleaved(grid, 3),
            ShardPlan.hashed(grid, 3, seed=5),
        ):
            assert plan.n_shards == 3
            assert sum(plan.cell_counts()) == grid.cell_count

    def test_build_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            ShardPlan.build(_grid(), 2, strategy="roulette")

    def test_rejects_nonpositive_and_oversized_shard_counts(self):
        grid = _grid(2)  # 4 cells
        with pytest.raises(ValueError):
            ShardPlan.striped(grid, 0)
        with pytest.raises(ValueError):
            ShardPlan.striped(grid, 5)

    def test_from_mapping_roundtrip_and_padding(self):
        grid = _grid(2)
        mapping = {
            (i, j): (i * 2 + j) % 2 for i in range(2) for j in range(2)
        }
        plan = ShardPlan.from_mapping(grid, mapping, n_shards=3)
        assert plan.n_shards == 3  # padded with one empty shard
        assert plan.cell_counts() == [2, 2, 0]
        for cell, shard in mapping.items():
            assert plan.shard_of_cell(cell) == shard

    def test_from_mapping_rejects_missing_cells(self):
        grid = _grid(2)
        with pytest.raises(ValueError, match="unassigned"):
            ShardPlan.from_mapping(grid, {(0, 0): 0})

    def test_from_mapping_rejects_too_small_n_shards(self):
        grid = _grid(2)
        mapping = {(i, j): i for i in range(2) for j in range(2)}
        with pytest.raises(ValueError, match="shard id"):
            ShardPlan.from_mapping(grid, mapping, n_shards=1)

    def test_shards_in_block_empty_block(self):
        plan = ShardPlan.striped(_grid(), 4)
        assert plan.shards_in_block((3, 2, 0, 1)) == frozenset()

    def test_split_places_partitions_and_keeps_order(self):
        grid = _grid(4)
        plan = ShardPlan.striped(grid, 2)
        places = generate_places(50, seed=3)
        split = plan.split_places(places)
        assert sum(len(part) for part in split) == len(places)
        for shard, part in enumerate(split):
            for place in part:
                assert plan.shard_of_place(place) == shard
        flat_ids = sorted(p.place_id for part in split for p in part)
        assert flat_ids == sorted(p.place_id for p in places)

    def test_plan_for_coercions(self):
        grid = _grid(2)
        plan = ShardPlan.striped(grid, 2)
        assert plan_for(grid, plan) is plan
        assert plan_for(grid, 2).n_shards == 2
        by_sequence = plan_for(grid, [0, 0, 1, 1])
        assert by_sequence.n_shards == 2

    def test_plan_for_rejects_wrong_length_sequence(self):
        with pytest.raises(ValueError, match="entries"):
            plan_for(_grid(2), [0, 1])

    def test_plan_for_rejects_foreign_grid_plan(self):
        plan = ShardPlan.striped(_grid(4), 2)
        with pytest.raises(ValueError, match="different grid"):
            plan_for(_grid(8), plan)

    def test_plan_for_reexported(self):
        assert plan_for is plan_for_direct


# -- the router -------------------------------------------------------------


class TestShardRouter:
    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            ShardRouter(ShardPlan.striped(_grid(), 2), -0.1)

    def test_route_is_sorted_and_counts_fanout(self):
        plan = ShardPlan.striped(_grid(), 4)
        router = ShardRouter(plan, 0.1)
        targets = router.route(Point(0.05, 0.5), Point(0.95, 0.5))
        assert list(targets) == sorted(targets)
        # a move across the whole space touches both edge shards.
        assert 0 in targets and 3 in targets
        assert router.updates_routed == 1
        assert router.fanout_total == len(targets)

    def test_small_move_stays_local(self):
        plan = ShardPlan.striped(_grid(), 4)
        router = ShardRouter(plan, 0.05)
        targets = router.route(Point(0.06, 0.5), Point(0.07, 0.5))
        assert targets == (0,)

    def test_route_covers_owning_shards_of_disk_cells(self):
        grid = _grid()
        plan = ShardPlan.hashed(grid, 5, seed=1)
        router = ShardRouter(plan, 0.1)
        old, new = Point(0.31, 0.42), Point(0.55, 0.61)
        targets = set(router.route(old, new))
        # every cell whose centre lies in either disk belongs to a
        # routed shard (conservative block routing must cover them).
        for i in range(grid.nx):
            for j in range(grid.ny):
                centre = grid.cell_rect((i, j)).center()
                if (
                    centre.distance_to(old) <= 0.1
                    or centre.distance_to(new) <= 0.1
                ):
                    assert plan.shard_of_cell((i, j)) in targets


# -- the merger -------------------------------------------------------------


def _record(pid: int, safety: float) -> SafetyRecord:
    return SafetyRecord(Place(pid, Point(0.5, 0.5), 1), safety)


class _FakeShard:
    """A minimal monitor satisfying the partial_top_k contract: it
    tracks every place it owns exactly."""

    class _Store:
        def __init__(self, n):
            self.place_count = n

    def __init__(self, records, k):
        self._records = sorted(records, key=lambda r: (r.safety, r.place_id))
        self._k = k
        self.store = self._Store(len(self._records))
        self.queries: list[int] = []

    def partial_top_k(self, m):
        self.queries.append(m)
        return self._records[:m]

    def sk(self):
        if len(self._records) < self._k:
            return math.inf
        return self._records[self._k - 1].safety


class TestGlobalTopK:
    def test_rejects_bad_k_and_zero_shards(self):
        with pytest.raises(ValueError):
            GlobalTopK(-1)  # k == 0 is legal (KChanged(0) suspends)
        with pytest.raises(ValueError):
            GlobalTopK(3).merge([])

    def test_single_shard_passthrough(self):
        shard = _FakeShard([_record(i, float(i)) for i in range(10)], k=4)
        merged = GlobalTopK(4).merge([shard])
        assert [(r.place_id, r.safety) for r in merged] == [
            (0, 0.0),
            (1, 1.0),
            (2, 2.0),
            (3, 3.0),
        ]

    def test_merge_matches_brute_force(self):
        rng = np.random.default_rng(4)
        k = 6
        shards = []
        everything = []
        for s in range(4):
            records = [
                _record(100 * s + i, float(rng.integers(-5, 5)))
                for i in range(int(rng.integers(0, 12)))
            ]
            everything.extend(records)
            shards.append(_FakeShard(records, k))
        merged = GlobalTopK(k).merge(shards)
        expected = sorted(everything, key=lambda r: (r.safety, r.place_id))
        assert [(r.place_id, r.safety) for r in merged] == [
            (r.place_id, r.safety) for r in expected[:k]
        ]

    def test_fewer_places_than_k_returns_everything(self):
        shards = [
            _FakeShard([_record(1, -2.0)], k=5),
            _FakeShard([_record(2, 3.0)], k=5),
        ]
        merged = GlobalTopK(5).merge(shards)
        assert [r.place_id for r in merged] == [1, 2]

    def test_refill_pulls_only_from_needy_shards(self):
        # shard A holds the whole answer; shard B's floor is far above
        # the global k-th, so it must never be re-queried.
        a = _FakeShard([_record(i, float(i)) for i in range(10)], k=3)
        b = _FakeShard([_record(100 + i, 50.0 + i) for i in range(10)], k=3)
        merger = GlobalTopK(3, initial_request=2)
        merged = merger.merge([a, b])
        assert [r.place_id for r in merged] == [0, 1, 2]
        assert merger.stats.refills > 0
        assert len(b.queries) == 1  # the initial pull only

    def test_requests_never_exceed_k(self):
        shard = _FakeShard([_record(i, 0.0) for i in range(40)], k=8)
        GlobalTopK(8, initial_request=1).merge([shard])
        assert max(shard.queries) <= 8

    def test_stats_accumulate(self):
        shard = _FakeShard([_record(i, float(i)) for i in range(5)], k=2)
        merger = GlobalTopK(2)
        merger.merge([shard])
        merger.merge([shard])
        assert merger.stats.merges == 2
        assert merger.stats.shards_queried >= 2
        assert merger.stats.records_pulled >= 4


# -- end-to-end equivalence -------------------------------------------------


@pytest.fixture(params=SCHEMES, ids=lambda cls: cls.name)
def scheme(request):
    return request.param


class TestShardEquivalence:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_topk_identical_to_unsharded(
        self,
        scheme,
        n_shards,
        small_config,
        small_places,
        small_units,
        small_stream,
        small_oracle,
    ):
        plain = _replay(
            scheme(small_config, small_places, small_units), small_stream
        )
        sharded = _replay(
            ShardedMonitor(
                small_config,
                small_places,
                small_units,
                shards=n_shards,
                scheme=scheme,
            ),
            small_stream,
        )
        _assert_same_answer(sharded, plain)
        if scheme in (NaiveCTUP, IncrementalNaiveCTUP):
            # full recompute tie-breaks over *all* places, so the list
            # is unique and must match exactly, ties included.
            assert _result_pairs(sharded) == _result_pairs(plain)
        for update in small_stream:
            small_oracle.apply(update)
        verdict = small_oracle.validate(
            sharded.top_k(), small_config.k
        )
        assert verdict.ok, verdict.problems

    def test_single_shard_is_bit_identical_work(
        self, scheme, small_config, small_places, small_units, small_stream
    ):
        plain = _replay(
            scheme(small_config, small_places, small_units), small_stream
        )
        sharded = _replay(
            ShardedMonitor(
                small_config,
                small_places,
                small_units,
                shards=1,
                scheme=scheme,
            ),
            small_stream,
        )
        assert _result_pairs(sharded) == _result_pairs(plain)
        # with one shard every update is a full delivery, so the inner
        # monitor performs exactly the unsharded work.
        assert sharded.sync_deliveries == 0
        assert sharded.full_deliveries == len(small_stream)
        assert _work_fields(sharded.merged_counters()) == _work_fields(
            plain.counters
        )

    def test_intermediate_results_track_unsharded(
        self, small_config, small_places, small_units, small_stream
    ):
        plain = OptCTUP(small_config, small_places, small_units)
        sharded = ShardedMonitor(
            small_config, small_places, small_units, shards=4, scheme=OptCTUP
        )
        plain.initialize()
        sharded.initialize()
        for i, update in enumerate(small_stream.prefix(40)):
            plain.process(update)
            sharded.process(update)
            if i % 10 == 0:
                _assert_same_answer(sharded, plain)

    @pytest.mark.parametrize("strategy", ShardPlan.STRATEGIES)
    def test_all_strategies_agree(
        self, strategy, small_config, small_places, small_units, small_stream
    ):
        plain = _replay(
            OptCTUP(small_config, small_places, small_units), small_stream
        )
        sharded = _replay(
            ShardedMonitor(
                small_config,
                small_places,
                small_units,
                shards=3,
                scheme=OptCTUP,
                strategy=strategy,
            ),
            small_stream,
        )
        _assert_same_answer(sharded, plain)

    def test_parallel_drain_matches_serial(
        self, small_config, small_places, small_units, small_stream
    ):
        serial = _replay(
            ShardedMonitor(
                small_config, small_places, small_units, shards=4
            ),
            small_stream,
        )
        with ShardedMonitor(
            small_config,
            small_places,
            small_units,
            shards=4,
            parallelism=4,
        ) as parallel:
            _replay(parallel, small_stream)
            assert _result_pairs(parallel) == _result_pairs(serial)
            assert _work_fields(parallel.merged_counters()) == _work_fields(
                serial.merged_counters()
            )
            assert parallel.full_deliveries == serial.full_deliveries
            assert parallel.sync_deliveries == serial.sync_deliveries

    def test_audit_passes_on_sharded_state(
        self, small_config, small_places, small_units, small_stream
    ):
        sharded = _replay(
            ShardedMonitor(
                small_config, small_places, small_units, shards=3
            ),
            small_stream.prefix(60),
        )
        assert audit_monitor(sharded) == []

    def test_session_drives_sharded_monitor(
        self, small_config, small_places, small_units, small_stream
    ):
        plain = _replay(
            OptCTUP(small_config, small_places, small_units), small_stream
        )
        sharded = ShardedMonitor(
            small_config, small_places, small_units, shards=4
        )
        session = MonitorSession(sharded, batch_size=16)
        session.start()
        assert session.run(small_stream) == len(small_stream)
        _assert_same_answer(sharded, plain)

    def test_init_report_aggregates_shards(
        self, small_config, small_places, small_units, small_oracle
    ):
        sharded = ShardedMonitor(
            small_config, small_places, small_units, shards=4
        )
        report = sharded.initialize()
        # every place is loaded at least once (schemes may re-read cells).
        assert report.places_loaded >= len(small_places)
        assert report.sk == small_oracle.sk(small_config.k)
        assert report.maintained_places == sharded.maintained_count()

    def test_sync_deliveries_outnumber_full_on_local_moves(
        self, small_config, small_places, small_units, small_stream
    ):
        sharded = _replay(
            ShardedMonitor(
                small_config, small_places, small_units, shards=7
            ),
            small_stream,
        )
        total = sharded.full_deliveries + sharded.sync_deliveries
        assert total == len(small_stream) * 7
        # random-walk moves are local: most shards only need the sync.
        assert sharded.sync_deliveries > sharded.full_deliveries

    def test_unknown_scheme_rejected(
        self, small_config, small_places, small_units
    ):
        with pytest.raises(ValueError, match="unknown scheme"):
            ShardedMonitor(
                small_config,
                small_places,
                small_units,
                shards=2,
                scheme="quantum",
            )


# -- property: any cell assignment yields the same answer -------------------


_PROP_CONFIG = CTUPConfig(k=4, delta=2, protection_range=0.1, granularity=5)
_PROP_PLACES = generate_places(250, seed=21)
_PROP_UNITS = generate_units(12, _PROP_CONFIG.protection_range, seed=22)
_PROP_STREAM = record_stream(
    RandomWalkMobility(
        generate_units(12, _PROP_CONFIG.protection_range, seed=22),
        step=0.04,
        seed=23,
    ),
    40,
)
_PROP_BASELINE = _replay(
    OptCTUP(_PROP_CONFIG, _PROP_PLACES, _PROP_UNITS), _PROP_STREAM
)


@settings(max_examples=12, deadline=None)
@given(
    assignment=st.lists(
        st.integers(0, 2), min_size=25, max_size=25
    )
)
def test_any_shard_assignment_is_exact(assignment):
    """Whatever the cell -> shard map, the answer equals the baseline."""
    sharded = _replay(
        ShardedMonitor(
            _PROP_CONFIG,
            _PROP_PLACES,
            _PROP_UNITS,
            shards=assignment,
            scheme=OptCTUP,
        ),
        _PROP_STREAM,
    )
    _assert_same_answer(sharded, _PROP_BASELINE)
