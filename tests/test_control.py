"""The control plane: epochs, catalog mutations, live retuning, resharding.

The tentpole guarantee under test is *equivalence to rebuild*: applying
any sequence of control events incrementally must leave a monitor whose
SK and top-k are identical to a fresh monitor constructed over the
post-event world — for every registered scheme, unsharded and sharded —
and must leave every work ledger untouched (control work bills to the
:class:`~repro.control.events.EpochReport`, never to the data plane's
counters). On top of that sit the durability rules: control events are
journaled in order with the data updates, crash recovery replays them
across epoch boundaries, and ``close()`` leaves a recoverable tail.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import (
    SCHEMES,
    ControlSpec,
    DurabilitySpec,
    ShardSpec,
    make_monitor,
    open_session,
)
from repro.control import (
    EpochReport,
    GridRetuned,
    KChanged,
    PlaceAdded,
    PlaceCatalog,
    PlaceRemoved,
    PlaceReweighted,
    ShardPlanChanged,
    decode_event,
    encode_event,
    event_kind,
    fold_places,
)
from repro.core import CTUPConfig
from repro.engine.session import MonitorSession
from repro.geometry import Point, Rect
from repro.grid.partition import GridPartition
from repro.model import LocationUpdate, Place
from repro.state.journal import UpdateJournal
from repro.state.recovery import CheckpointPolicy, RecoveryManager
from repro.storage.placestore import PlaceStore
from repro.workloads import (
    RandomWalkMobility,
    generate_places,
    generate_units,
    record_stream,
)
from repro.workloads.control import (
    ControlPlan,
    generate_control_plan,
    interleave,
)

ALL_EVENTS = [
    PlaceAdded(Place(77, Point(0.5, 0.5), 3, kind="school")),
    PlaceRemoved(77),
    PlaceReweighted(4, 9),
    KChanged(7),
    GridRetuned(6),
    ShardPlanChanged(3, "striped"),
]


def build(scheme, config, places, units, shards=0):
    monitor = make_monitor(
        scheme,
        places=places,
        units=units,
        config=config,
        shard=ShardSpec(shards=shards) if shards else None,
    )
    monitor.initialize()
    return monitor


def answer(monitor):
    # The contractual answer (core.monitor.top_k docstring): SK, every row
    # strictly below SK, and the safety multiset.  Which of several places
    # *tied at SK* fills the last slot may differ between two monitors.
    sk = monitor.sk()
    rows = [(r.place_id, r.safety) for r in monitor.top_k()]
    return (
        sk,
        sorted(t for t in rows if t[1] < sk),
        sorted(s for _, s in rows),
    )


def run_mixed(monitor, items, mode):
    for item in items:
        if isinstance(item, LocationUpdate):
            monitor.process(item)
        else:
            monitor.apply_control(item, mode=mode)


def final_settings(config, plan, shards):
    """The (config, shards) in force after every event of ``plan``."""
    k, granularity = config.k, config.granularity
    for _, event in plan:
        if isinstance(event, KChanged):
            k = event.k
        elif isinstance(event, GridRetuned):
            granularity = event.granularity
        elif isinstance(event, ShardPlanChanged):
            shards = event.shards
    return config.replace(k=k, granularity=granularity), shards


# -- the catalog --------------------------------------------------------


class TestPlaceCatalog:
    def setup_method(self):
        self.grid = GridPartition(Rect(0.0, 0.0, 1.0, 1.0), 4, 4)
        self.places = [
            Place(1, Point(0.1, 0.1), 2),
            Place(2, Point(0.12, 0.1), 1),
            Place(3, Point(0.9, 0.9), 4),
        ]
        self.store = PlaceStore(self.grid, self.places)

    def test_add_place(self):
        catalog = PlaceCatalog(self.store)
        cell = catalog.add_place(Place(9, Point(0.6, 0.6), 3))
        assert cell == self.grid.cell_of(Point(0.6, 0.6))
        assert self.store.has_place(9)
        assert 9 in catalog and len(catalog) == 4
        assert catalog.mutations == 1

    def test_add_duplicate_id_rejected(self):
        catalog = PlaceCatalog(self.store)
        with pytest.raises(ValueError):
            catalog.add_place(Place(2, Point(0.3, 0.3), 0))

    def test_add_requires_place(self):
        with pytest.raises(TypeError):
            PlaceCatalog(self.store).add_place("not-a-place")

    def test_remove_place_returns_record(self):
        catalog = PlaceCatalog(self.store)
        removed = catalog.remove_place(2)
        assert removed.place_id == 2
        assert not self.store.has_place(2)
        with pytest.raises(KeyError):
            catalog.remove_place(2)

    def test_remove_last_place_empties_cell(self):
        catalog = PlaceCatalog(self.store)
        cell = self.store.cell_of_place(3)
        catalog.remove_place(3)
        assert self.store.read_cell(cell) == []
        assert self.store.cell_place_count(cell) == 0

    def test_reweight_returns_old_record(self):
        catalog = PlaceCatalog(self.store)
        old = catalog.reweight(1, 7)
        assert old.required_protection == 2
        assert self.store.peek_place(1).required_protection == 7
        with pytest.raises(ValueError):
            catalog.reweight(1, -1)

    def test_mutations_invalidate_fingerprint(self):
        before = self.store.fingerprint
        PlaceCatalog(self.store).add_place(Place(9, Point(0.4, 0.4), 1))
        assert self.store.fingerprint != before


# -- the event vocabulary ----------------------------------------------


class TestEventCodec:
    @pytest.mark.parametrize("event", ALL_EVENTS, ids=event_kind)
    def test_round_trip(self, event):
        assert decode_event(encode_event(event)) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            decode_event({"kind": "martians_landed"})

    def test_fold_places(self):
        places = [Place(1, Point(0.1, 0.1), 2), Place(2, Point(0.2, 0.2), 1)]
        folded = fold_places(
            places,
            [
                PlaceAdded(Place(3, Point(0.3, 0.3), 5)),
                PlaceRemoved(1),
                PlaceReweighted(2, 8),
                KChanged(4),  # non-place events fold to nothing
            ],
        )
        assert [(p.place_id, p.required_protection) for p in folded] == [
            (2, 8),
            (3, 5),
        ]

    def test_fold_rejects_invalid_sequences(self):
        places = [Place(1, Point(0.1, 0.1), 2)]
        with pytest.raises(ValueError):
            fold_places(places, [PlaceAdded(Place(1, Point(0.5, 0.5), 0))])
        with pytest.raises(ValueError):
            fold_places(places, [PlaceRemoved(99)])
        with pytest.raises(ValueError):
            fold_places(places, [PlaceReweighted(99, 1)])


# -- incremental vs rebuild vs fresh equivalence ------------------------


class TestEquivalence:
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    @pytest.mark.parametrize("shards", [0, 1, 4])
    def test_event_mix_matches_fresh_monitor(self, scheme, shards):
        config = CTUPConfig(k=5, granularity=8, protection_range=0.12)
        places = generate_places(250, seed=11)
        units = generate_units(12, config.protection_range, seed=12)
        stream = record_stream(
            RandomWalkMobility(units, step=0.04, seed=13), 48
        )
        plan = generate_control_plan(
            places,
            stream_length=len(stream),
            n_events=6,
            seed=14,
            k_range=(0, 12),
            granularity_range=(3, 12),
            shard_counts=(2, 6) if shards else (),
        )
        items = list(interleave(stream, plan))

        incremental = build(scheme, config, places, units, shards)
        run_mixed(incremental, items, "incremental")
        rebuilt = build(scheme, config, places, units, shards)
        run_mixed(rebuilt, items, "rebuild")
        final_config, final_shards = final_settings(config, plan, shards)
        fresh = build(
            scheme, final_config, plan.final_places(places), units,
            final_shards,
        )
        for update in stream:
            fresh.process(update)

        want = answer(fresh)
        assert answer(incremental) == want
        assert answer(rebuilt) == want
        assert incremental.epoch == rebuilt.epoch == len(plan)

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(1, 8),
        scheme=st.sampled_from(sorted(SCHEMES)),
        shards=st.sampled_from([0, 1, 4]),
        n_events=st.integers(1, 5),
    )
    def test_random_interleavings(self, seed, k, scheme, shards, n_events):
        config = CTUPConfig(k=k, granularity=6, protection_range=0.12)
        places = generate_places(120, seed=seed)
        units = generate_units(8, config.protection_range, seed=seed + 1)
        stream = record_stream(
            RandomWalkMobility(units, step=0.05, seed=seed + 2), 30
        )
        plan = generate_control_plan(
            places,
            stream_length=len(stream),
            n_events=n_events,
            seed=seed + 3,
            k_range=(0, 10),
            granularity_range=(2, 10),
            shard_counts=(2, 3) if shards else (),
        )
        items = list(interleave(stream, plan))

        incremental = build(scheme, config, places, units, shards)
        run_mixed(incremental, items, "incremental")
        final_config, final_shards = final_settings(config, plan, shards)
        fresh = build(
            scheme, final_config, plan.final_places(places), units,
            final_shards,
        )
        for update in stream:
            fresh.process(update)
        assert answer(incremental) == answer(fresh)

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    @pytest.mark.parametrize("shards", [0, 4])
    def test_control_is_ledger_neutral(self, scheme, shards):
        config = CTUPConfig(k=5, granularity=8, protection_range=0.12)
        places = generate_places(200, seed=21)
        units = generate_units(10, config.protection_range, seed=22)
        monitor = build(scheme, config, places, units, shards)
        for update in record_stream(
            RandomWalkMobility(units, step=0.04, seed=23), 20
        ):
            monitor.process(update)
        if shards:
            counters = monitor.merged_counters()
            io = monitor.merged_io()
        else:
            counters = monitor.counters.snapshot()
            io = monitor.store.io_stats.snapshot()
        events = [
            PlaceAdded(Place(9001, Point(0.42, 0.42), 3)),
            PlaceReweighted(9001, 6),
            KChanged(8),
            GridRetuned(5),
            PlaceRemoved(9001),
        ]
        for event in events:
            report = monitor.apply_control(event)
            assert isinstance(report, EpochReport)
            if shards:
                assert monitor.merged_counters() == counters
                assert monitor.merged_io() == io
            else:
                assert monitor.counters == counters
                assert monitor.store.io_stats == io
        assert monitor.epoch == len(events)

    def test_epoch_report_receipt(self):
        config = CTUPConfig(k=4, granularity=6, protection_range=0.12)
        places = generate_places(150, seed=31)
        units = generate_units(8, config.protection_range, seed=32)
        monitor = build("basic", config, places, units)
        report = monitor.apply_control(
            PlaceAdded(Place(9001, Point(0.3, 0.3), 2))
        )
        assert report.epoch == 1
        assert report.kind == "place_added"
        assert report.rebuilt is False
        assert report.seconds >= 0.0
        assert report.sk == monitor.sk()
        forced = monitor.apply_control(PlaceRemoved(9001), mode="rebuild")
        assert forced.rebuilt is True
        assert forced.epoch == 2

    def test_grid_retune_always_rebuilds(self):
        config = CTUPConfig(k=4, granularity=6, protection_range=0.12)
        places = generate_places(150, seed=33)
        units = generate_units(8, config.protection_range, seed=34)
        monitor = build("opt", config, places, units)
        report = monitor.apply_control(GridRetuned(9))
        assert report.rebuilt is True
        assert monitor.grid.nx == 9
        assert monitor.config.granularity == 9

    def test_reshard_on_plain_monitor_rejected(self):
        config = CTUPConfig(k=4, granularity=6, protection_range=0.12)
        places = generate_places(100, seed=35)
        units = generate_units(6, config.protection_range, seed=36)
        monitor = build("opt", config, places, units)
        with pytest.raises(ValueError):
            monitor.apply_control(ShardPlanChanged(4))

    def test_invalid_mode_rejected(self):
        config = CTUPConfig(k=4, granularity=6, protection_range=0.12)
        places = generate_places(50, seed=37)
        units = generate_units(4, config.protection_range, seed=38)
        monitor = build("basic", config, places, units)
        with pytest.raises(ValueError):
            monitor.apply_control(KChanged(3), mode="yolo")


# -- online resharding --------------------------------------------------


class TestResharding:
    @pytest.mark.parametrize("scheme", ["basic", "opt"])
    def test_migration_is_online(self, scheme):
        """basic/opt migrate per-cell state without a rebuild."""
        config = CTUPConfig(k=5, granularity=8, protection_range=0.12)
        places = generate_places(300, seed=41)
        units = generate_units(10, config.protection_range, seed=42)
        monitor = build(scheme, config, places, units, shards=2)
        for update in record_stream(
            RandomWalkMobility(units, step=0.04, seed=43), 25
        ):
            monitor.process(update)
        before = answer(monitor)
        report = monitor.apply_control(ShardPlanChanged(5))
        assert report.rebuilt is False
        assert monitor.plan.n_shards == 5
        assert answer(monitor) == before
        fresh = build(scheme, config, places, units, shards=5)
        for update in record_stream(
            RandomWalkMobility(units, step=0.04, seed=43), 25
        ):
            fresh.process(update)
        assert answer(monitor) == answer(fresh)

    @pytest.mark.parametrize("scheme", ["naive", "incremental"])
    def test_migration_falls_back_to_rebuild(self, scheme):
        config = CTUPConfig(k=5, granularity=8, protection_range=0.12)
        places = generate_places(200, seed=44)
        units = generate_units(8, config.protection_range, seed=45)
        monitor = build(scheme, config, places, units, shards=2)
        before = answer(monitor)
        report = monitor.apply_control(ShardPlanChanged(4))
        assert report.rebuilt is True
        assert monitor.plan.n_shards == 4
        assert answer(monitor) == before


# -- sessions: journaling, replay, recovery -----------------------------


def _mixed_session_items(config, places, units, n_updates=40, seed=51):
    stream = record_stream(
        RandomWalkMobility(units, step=0.04, seed=seed), n_updates
    )
    plan = ControlPlan(
        (
            (8, PlaceAdded(Place(9001, Point(0.35, 0.65), 4, kind="pop-up"))),
            (16, KChanged(config.k + 3)),
            (24, PlaceReweighted(places[5].place_id, 7)),
            (32, PlaceRemoved(places[9].place_id)),
        )
    )
    return list(interleave(stream, plan)), plan


class TestSessionControl:
    def test_events_are_journaled_and_replayed(self, tmp_path):
        config = CTUPConfig(k=5, granularity=8, protection_range=0.12)
        places = generate_places(200, seed=52)
        units = generate_units(10, config.protection_range, seed=53)
        items, plan = _mixed_session_items(config, places, units)
        session = open_session(
            "opt",
            places=places,
            units=units,
            config=config,
            durability=str(tmp_path / "ckpt"),
        )
        from repro.workloads.control import drive

        drive(session, items)
        want = answer(session.monitor)
        want_epoch = session.monitor.epoch
        assert want_epoch == len(plan)
        journal = session.journal
        controls = [r for r in journal.records() if r.is_control]
        assert [dict(r.control)["kind"] for r in controls] == [
            event_kind(event) for _, event in plan
        ]
        # crash (no close); recover and compare.
        del session
        resumed = open_session(
            "opt",
            places=places,
            units=units,
            config=config,
            durability=DurabilitySpec(
                checkpoint_dir=str(tmp_path / "ckpt"), resume=True
            ),
        )
        assert answer(resumed.monitor) == want
        assert resumed.monitor.epoch == want_epoch
        resumed.close()

    @pytest.mark.parametrize("kill_after", [9, 17, 33])
    def test_kill_points_across_epoch_boundaries(self, tmp_path, kill_after):
        """Crash right after an event (or between them) and recover."""
        config = CTUPConfig(k=5, granularity=8, protection_range=0.12)
        places = generate_places(200, seed=54)
        units = generate_units(10, config.protection_range, seed=55)
        items, plan = _mixed_session_items(config, places, units)

        # the uninterrupted run is the reference.
        reference = open_session(
            "opt", places=places, units=units, config=config
        )
        from repro.workloads.control import drive

        drive(reference, items)
        want = answer(reference.monitor)
        want_epoch = reference.monitor.epoch

        directory = tmp_path / f"kill-{kill_after}"
        session = open_session(
            "opt",
            places=places,
            units=units,
            config=config,
            durability=DurabilitySpec(checkpoint_dir=str(directory), every=7),
        )
        for item in items[:kill_after]:
            if isinstance(item, LocationUpdate):
                session.feed(item)
            else:
                session.apply_control(item)
        del session  # crash: no close, no final snapshot

        resumed = open_session(
            "opt",
            places=places,
            units=units,
            config=config,
            durability=DurabilitySpec(
                checkpoint_dir=str(directory), resume=True
            ),
        )
        for item in items[kill_after:]:
            if isinstance(item, LocationUpdate):
                resumed.feed(item)
            else:
                resumed.apply_control(item)
        resumed.flush()
        assert answer(resumed.monitor) == want
        assert resumed.monitor.epoch == want_epoch
        # the catalog recovered too: the added place is in, removed out.
        assert resumed.monitor.store.has_place(9001)
        assert not resumed.monitor.store.has_place(places[9].place_id)
        resumed.close()

    def test_sharded_reshard_recovers_plan(self, tmp_path):
        config = CTUPConfig(k=5, granularity=8, protection_range=0.12)
        places = generate_places(200, seed=56)
        units = generate_units(10, config.protection_range, seed=57)
        stream = record_stream(
            RandomWalkMobility(units, step=0.04, seed=58), 30
        )
        session = open_session(
            "basic",
            places=places,
            units=units,
            config=config,
            shard=ShardSpec(shards=2),
            durability=str(tmp_path / "ckpt"),
        )
        session.start()
        for update in stream[:15]:
            session.feed(update)
        session.apply_control(ShardPlanChanged(5))
        for update in stream[15:]:
            session.feed(update)
        session.flush()
        want = answer(session.monitor)
        del session  # crash

        resumed = open_session(
            "basic",
            places=places,
            units=units,
            config=config,
            shard=ShardSpec(shards=2),
            durability=DurabilitySpec(
                checkpoint_dir=str(tmp_path / "ckpt"), resume=True
            ),
        )
        assert resumed.monitor.plan.n_shards == 5
        assert resumed.monitor.epoch == 1
        assert answer(resumed.monitor) == want
        resumed.close()

    def test_close_leaves_recoverable_tail(self, tmp_path):
        """close() fsyncs the journal even when no snapshot is due."""
        config = CTUPConfig(k=4, granularity=6, protection_range=0.12)
        places = generate_places(120, seed=61)
        units = generate_units(8, config.protection_range, seed=62)
        stream = record_stream(
            RandomWalkMobility(units, step=0.05, seed=63), 20
        )
        policy = CheckpointPolicy(
            directory=tmp_path / "tail", every_batches=0, on_close=False
        )
        monitor = build("opt", config, places, units)
        session = MonitorSession(monitor, checkpoint=policy)
        session.start()
        for update in stream[:10]:
            session.feed(update)
        session.apply_control(KChanged(6))
        for update in stream[10:]:
            session.feed(update)
        want = answer(session.monitor)
        session.close()  # no snapshot written (on_close=False) — tail only

        # every record must already be durable on disk.
        journal_lines = [
            line
            for line in (tmp_path / "tail" / "journal.jsonl")
            .read_text()
            .splitlines()
            if line.strip()
        ]
        assert len(journal_lines) == len(stream) + 1

        manager = RecoveryManager(policy, places=places, units=units)
        assert manager.latest_document() is None  # no snapshot: tail-only
        resumed = manager.resume_session(
            fresh_monitor=lambda: make_monitor(
                "opt", places=places, units=units, config=config
            )
        )
        assert answer(resumed.monitor) == want
        assert resumed.monitor.epoch == 1
        assert resumed.monitor.config.k == 6
        resumed.close()

    def test_control_spec_sets_default_mode(self):
        config = CTUPConfig(k=4, granularity=6, protection_range=0.12)
        places = generate_places(80, seed=64)
        units = generate_units(6, config.protection_range, seed=65)
        session = open_session(
            "basic",
            places=places,
            units=units,
            config=config,
            control=ControlSpec(mode="rebuild"),
        )
        report = session.apply_control(KChanged(2))
        assert report.rebuilt is True
        shorthand = open_session(
            "basic", places=places, units=units, config=config,
            control="rebuild",
        )
        assert shorthand.control_mode == "rebuild"
        with pytest.raises(ValueError):
            ControlSpec(mode="yolo")
        with pytest.raises(TypeError):
            open_session(
                "basic", places=places, units=units, config=config,
                control=42,
            )

    def test_hooks_see_control_events(self):
        from repro.engine.hooks import MonitorHooks

        seen = []

        class Spy(MonitorHooks):
            def on_control(self, event, report):
                seen.append((event, report.epoch))

        config = CTUPConfig(k=4, granularity=6, protection_range=0.12)
        places = generate_places(80, seed=66)
        units = generate_units(6, config.protection_range, seed=67)
        session = open_session(
            "basic", places=places, units=units, config=config, hooks=Spy()
        )
        session.apply_control(KChanged(2))
        assert seen == [(KChanged(2), 1)]

    def test_snapshot_envelope_carries_epoch(self, tmp_path):
        config = CTUPConfig(k=4, granularity=6, protection_range=0.12)
        places = generate_places(80, seed=68)
        units = generate_units(6, config.protection_range, seed=69)
        session = open_session(
            "opt",
            places=places,
            units=units,
            config=config,
            durability=str(tmp_path / "ckpt"),
        )
        session.apply_control(KChanged(6))
        session.checkpoint()
        from repro.state.recovery import CheckpointStore

        document = CheckpointStore(tmp_path / "ckpt").latest()
        assert document["epoch"] == 1
        assert document["state"]["epoch"] == 1
        session.close()


class TestJournalControlRecords:
    def test_append_and_decode(self, tmp_path):
        journal = UpdateJournal(tmp_path / "journal.jsonl")
        payload = encode_event(KChanged(9))
        payload["mode"] = "rebuild"
        seq = journal.append_control(payload)
        journal.close()
        reopened = UpdateJournal(tmp_path / "journal.jsonl")
        records = list(reopened.records())
        reopened.close()
        assert [r.seq for r in records] == [seq]
        assert records[0].is_control
        restored = dict(records[0].control)
        assert restored.pop("mode") == "rebuild"
        assert decode_event(restored) == KChanged(9)

    def test_sync_is_idempotent(self, tmp_path):
        journal = UpdateJournal(tmp_path / "journal.jsonl")
        journal.append_control(encode_event(KChanged(1)))
        journal.sync()
        journal.sync()
        journal.close()
        journal.sync()  # safe after close


# -- observability ------------------------------------------------------


class TestControlObservability:
    def test_epoch_gauge_and_event_counter(self):
        from repro.obs import ObsSpec

        config = CTUPConfig(k=4, granularity=6, protection_range=0.12)
        places = generate_places(80, seed=71)
        units = generate_units(6, config.protection_range, seed=72)
        session = open_session(
            "opt",
            places=places,
            units=units,
            config=config,
            obs=ObsSpec(metrics=True, trace=True),
        )
        session.apply_control(KChanged(6))
        session.apply_control(PlaceAdded(Place(9001, Point(0.4, 0.4), 2)))
        registry = session.observability.registry
        assert registry.value("ctup_epoch", scheme="opt") == 2.0
        assert (
            registry.value("ctup_control_events_total", kind="k_changed")
            == 1.0
        )
        spans = [
            span
            for span in session.observability.tracer.spans()
            if span.name == "control.apply"
        ]
        assert len(spans) == 2
        session.close()
