"""The uniform grid partition of the monitored space.

Besides the partition arithmetic this module owns two geometry caches on
the update hot path:

* per-cell :class:`Rect` objects are memoized — the candidate loops of
  the monitors touch the same few hundred rects on every update, and
  rebuilding them dominated the maintain phase's allocation profile;
* :class:`CircleStencil` precomputes, for one fixed protection radius,
  the candidate-cell neighbourhood arithmetic and classifies a moving
  disk against all candidate cells in one vectorised pass instead of two
  scalar N/P/F derivations per cell per update.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.geometry import Circle, Point, Rect
from repro.geometry.relations import CellRelation

# A cell is addressed by its (column, row) pair.
CellId = tuple[int, int]

#: integer relation codes used by the vectorised classifier.
_N_CODE, _P_CODE, _F_CODE = 0, 1, 2
_RELATION_OF_CODE = {
    _N_CODE: CellRelation.NO_INTERSECT,
    _P_CODE: CellRelation.PARTIAL,
    _F_CODE: CellRelation.FULL,
}

#: public view of the code -> relation mapping, for kernels that consume
#: raw relation codes instead of CellRelation values (repro.core.kernels).
RELATION_OF_CODE: dict[int, CellRelation] = _RELATION_OF_CODE


class GridPartition:
    """A uniform ``nx x ny`` partition of a rectangular space.

    Every point of the space belongs to exactly one cell: cell ``(i, j)``
    owns the half-open square ``[xmin + i*w, xmin + (i+1)*w) x [...]``,
    except that points on the space's upper/right boundary are clamped
    into the last row/column so the partition covers the closed space.

    The *granularity* parameter of the paper's Table III corresponds to
    ``nx == ny``.
    """

    def __init__(self, space: Rect, nx: int, ny: int) -> None:
        if nx <= 0 or ny <= 0:
            raise ValueError(f"grid must have positive dimensions, got {nx}x{ny}")
        if space.width <= 0 or space.height <= 0:
            raise ValueError("space must have positive area")
        self.space = space
        self.nx = nx
        self.ny = ny
        self.cell_width = space.width / nx
        self.cell_height = space.height / ny
        #: lazily filled geometry caches (cells are immutable).
        self._rect_cache: dict[CellId, Rect] = {}
        self._stencil_cache: dict[float, CircleStencil] = {}

    @classmethod
    def unit_square(cls, granularity: int) -> "GridPartition":
        """The paper's default setting: the unit square, ``g x g`` cells."""
        return cls(Rect(0.0, 0.0, 1.0, 1.0), granularity, granularity)

    @property
    def cell_count(self) -> int:
        return self.nx * self.ny

    def cell_of(self, p: Point) -> CellId:
        """The cell owning point ``p``.

        Raises :class:`ValueError` for points outside the space — places
        and units are required to live inside the monitored space.
        """
        if not self.space.contains_point(p):
            raise ValueError(f"point {p} outside the monitored space {self.space}")
        i = int((p.x - self.space.xmin) / self.cell_width)
        j = int((p.y - self.space.ymin) / self.cell_height)
        # Points on the max boundary index one past the end; clamp them in.
        i = min(i, self.nx - 1)
        j = min(j, self.ny - 1)
        return (i, j)

    def cell_rect(self, cell: CellId) -> Rect:
        """The closed rectangle of ``cell`` (memoized — rects are shared).

        The same rect object is returned on every call, so hot loops may
        compare rects by identity and no per-update allocation happens.
        """
        rect = self._rect_cache.get(cell)
        if rect is None:
            self._check_cell(cell)
            i, j = cell
            x0 = self.space.xmin + i * self.cell_width
            y0 = self.space.ymin + j * self.cell_height
            rect = Rect(x0, y0, x0 + self.cell_width, y0 + self.cell_height)
            self._rect_cache[cell] = rect
        return rect

    def stencil(self, radius: float) -> "CircleStencil":
        """The (cached) candidate-cell stencil for disks of ``radius``."""
        stencil = self._stencil_cache.get(radius)
        if stencil is None:
            stencil = CircleStencil(self, radius)
            self._stencil_cache[radius] = stencil
        return stencil

    def all_cells(self) -> Iterator[CellId]:
        """All cell ids, column-major."""
        for i in range(self.nx):
            for j in range(self.ny):
                yield (i, j)

    def cells_overlapping_rect(self, rect: Rect) -> Iterator[CellId]:
        """Cells whose rectangle intersects ``rect`` (clipped to the space)."""
        if not self.space.intersects(rect):
            return
        i_lo = int(math.floor((rect.xmin - self.space.xmin) / self.cell_width))
        i_hi = int(math.floor((rect.xmax - self.space.xmin) / self.cell_width))
        j_lo = int(math.floor((rect.ymin - self.space.ymin) / self.cell_height))
        j_hi = int(math.floor((rect.ymax - self.space.ymin) / self.cell_height))
        i_lo = max(i_lo, 0)
        j_lo = max(j_lo, 0)
        i_hi = min(i_hi, self.nx - 1)
        j_hi = min(j_hi, self.ny - 1)
        for i in range(i_lo, i_hi + 1):
            for j in range(j_lo, j_hi + 1):
                yield (i, j)

    def cells_touching_circle(self, circle: Circle) -> Iterator[CellId]:
        """Cells whose rectangle intersects the (closed) disk.

        This is the candidate set for lower-bound maintenance: a cell not
        touching the old nor the new disk keeps the N relation on both
        sides and its bound is unchanged (the ``N -> N`` entry of the
        tables).
        """
        for cell in self.cells_overlapping_rect(circle.bounding_rect()):
            if circle.intersects_rect(self.cell_rect(cell)):
                yield cell

    def linear(self, cell: CellId) -> int:
        """A dense integer encoding of ``cell`` (row-major).

        The maintained-place table stores cell ownership as this integer
        so per-cell row selection is a vectorised comparison.
        """
        self._check_cell(cell)
        i, j = cell
        return i * self.ny + j

    def from_linear(self, index: int) -> CellId:
        """Inverse of :meth:`linear`."""
        if not (0 <= index < self.cell_count):
            raise ValueError(f"linear index {index} outside grid")
        return (index // self.ny, index % self.ny)

    def _check_cell(self, cell: CellId) -> None:
        i, j = cell
        if not (0 <= i < self.nx and 0 <= j < self.ny):
            raise ValueError(f"cell {cell} outside grid {self.nx}x{self.ny}")


class CircleStencil:
    """Vectorised N/P/F classification for disks of one fixed radius.

    The monitors' bound maintenance asks, per location update, how the
    old and the new protection disk relate to every candidate cell. The
    stencil answers both questions in one numpy pass over the candidate
    block: per candidate column/row it derives the minimum and maximum
    squared distance from the disk centre to the cell rectangle and maps
    them onto the three relations (F when the farthest corner is inside
    the disk, N when the nearest point is outside, P otherwise — the
    same closed-set rules as
    :func:`repro.geometry.relations.classify_circle_rect`).

    Cells outside a disk's candidate block are guaranteed N (the block
    covers every cell its bounding box touches), so a move only yields
    the cells where at least one side is not N — exactly the candidate
    set the scalar path derived with two ``cells_touching_circle``
    sweeps and two classifications per cell.
    """

    def __init__(self, grid: GridPartition, radius: float) -> None:
        if radius < 0:
            raise ValueError(f"negative radius: {radius}")
        self.grid = grid
        self.radius = radius
        self._r2 = radius * radius

    def block_of(self, center: Point) -> tuple[int, int, int, int]:
        """Clamped ``(i_lo, i_hi, j_lo, j_hi)`` of the disk's candidate block.

        Same floor arithmetic as ``cells_overlapping_rect`` applied to
        the disk's bounding box; ``i_lo > i_hi`` means the block misses
        the space entirely.
        """
        g = self.grid
        i_lo = int(math.floor((center.x - self.radius - g.space.xmin) / g.cell_width))
        i_hi = int(math.floor((center.x + self.radius - g.space.xmin) / g.cell_width))
        j_lo = int(math.floor((center.y - self.radius - g.space.ymin) / g.cell_height))
        j_hi = int(math.floor((center.y + self.radius - g.space.ymin) / g.cell_height))
        return (
            max(i_lo, 0),
            min(i_hi, g.nx - 1),
            max(j_lo, 0),
            min(j_hi, g.ny - 1),
        )

    def _classify_block(
        self, center: Point, block: tuple[int, int, int, int]
    ) -> np.ndarray:
        """Relation codes of the disk at ``center`` vs every block cell."""
        i_lo, i_hi, j_lo, j_hi = block
        g = self.grid
        x0 = g.space.xmin + np.arange(i_lo, i_hi + 1) * g.cell_width
        x1 = x0 + g.cell_width
        y0 = g.space.ymin + np.arange(j_lo, j_hi + 1) * g.cell_height
        y1 = y0 + g.cell_height
        dx_min = np.maximum(np.maximum(x0 - center.x, center.x - x1), 0.0)
        dy_min = np.maximum(np.maximum(y0 - center.y, center.y - y1), 0.0)
        dx_max = np.maximum(center.x - x0, x1 - center.x)
        dy_max = np.maximum(center.y - y0, y1 - center.y)
        min2 = dx_min[:, None] ** 2 + dy_min[None, :] ** 2
        max2 = dx_max[:, None] ** 2 + dy_max[None, :] ** 2
        codes = np.full(min2.shape, _P_CODE, dtype=np.int8)
        codes[min2 > self._r2] = _N_CODE
        codes[max2 <= self._r2] = _F_CODE
        return codes

    def classify_centers(
        self,
        cx: np.ndarray,
        cy: np.ndarray,
        i_lo: np.ndarray,
        j_lo: np.ndarray,
        bi: int,
        bj: int,
    ) -> np.ndarray:
        """Relation codes of many disks against many anchored blocks.

        ``cx``/``cy`` are ``(G, p)`` disk centres — ``p`` waypoints per
        each of ``G`` moving units — and ``i_lo``/``j_lo`` give each
        unit's candidate-block anchor. All blocks share the padded shape
        ``(bi, bj)``; returns int8 codes of shape ``(G, p, bi, bj)``.

        The per-cell arithmetic is element-for-element the same as
        :meth:`_classify_block` (cell edges derived from the same
        integer column/row indices, the same min/max squared-distance
        rules), so for any in-block cell the code is bit-identical to a
        scalar classification of the same disk. Padding cells beyond a
        unit's true block may receive non-N codes when they fall outside
        the grid — callers must mask them out (the burst kernels carry a
        per-unit validity mask for exactly this).
        """
        g = self.grid
        cols = i_lo[:, None] + np.arange(bi)[None, :]
        rows = j_lo[:, None] + np.arange(bj)[None, :]
        x0 = g.space.xmin + cols * g.cell_width
        x1 = x0 + g.cell_width
        y0 = g.space.ymin + rows * g.cell_height
        y1 = y0 + g.cell_height
        cxe = cx[:, :, None]
        cye = cy[:, :, None]
        dx_min = np.maximum(
            np.maximum(x0[:, None, :] - cxe, cxe - x1[:, None, :]), 0.0
        )
        dy_min = np.maximum(
            np.maximum(y0[:, None, :] - cye, cye - y1[:, None, :]), 0.0
        )
        dx_max = np.maximum(cxe - x0[:, None, :], x1[:, None, :] - cxe)
        dy_max = np.maximum(cye - y0[:, None, :], y1[:, None, :] - cye)
        min2 = dx_min[:, :, :, None] ** 2 + dy_min[:, :, None, :] ** 2
        max2 = dx_max[:, :, :, None] ** 2 + dy_max[:, :, None, :] ** 2
        codes = np.full(min2.shape, _P_CODE, dtype=np.int8)
        codes[min2 > self._r2] = _N_CODE
        codes[max2 <= self._r2] = _F_CODE
        return codes

    def classify_move(
        self, old: Point, new: Point
    ) -> list[tuple[CellId, CellRelation, CellRelation]]:
        """All cells affected by a unit move, with both relations.

        Returns ``(cell, relation_of_old_disk, relation_of_new_disk)``
        for every cell touched by at least one of the two disks. When
        the two candidate blocks overlap (the common case — location
        reports are frequent relative to unit speed) one merged block is
        classified for both disks at once; disjoint blocks are
        classified separately, the far side being N by construction.
        """
        old_block = self.block_of(old)
        new_block = self.block_of(new)
        old_empty = old_block[0] > old_block[1] or old_block[2] > old_block[3]
        new_empty = new_block[0] > new_block[1] or new_block[2] > new_block[3]
        if old_empty and new_empty:
            return []
        if not old_empty and not new_empty and self._blocks_touch(old_block, new_block):
            merged = (
                min(old_block[0], new_block[0]),
                max(old_block[1], new_block[1]),
                min(old_block[2], new_block[2]),
                max(old_block[3], new_block[3]),
            )
            return self._emit(merged, old, new)
        out: list[tuple[CellId, CellRelation, CellRelation]] = []
        if not old_empty:
            out.extend(self._emit_one_sided(old_block, old, old_side=True))
        if not new_empty:
            out.extend(self._emit_one_sided(new_block, new, old_side=False))
        return out

    @staticmethod
    def _blocks_touch(a: tuple[int, int, int, int], b: tuple[int, int, int, int]) -> bool:
        return a[0] <= b[1] and b[0] <= a[1] and a[2] <= b[3] and b[2] <= a[3]

    def _emit(
        self, block: tuple[int, int, int, int], old: Point, new: Point
    ) -> list[tuple[CellId, CellRelation, CellRelation]]:
        codes_old = self._classify_block(old, block)
        codes_new = self._classify_block(new, block)
        touched = (codes_old != _N_CODE) | (codes_new != _N_CODE)
        i_lo, _, j_lo, _ = block
        return [
            (
                (i_lo + int(a), j_lo + int(b)),
                _RELATION_OF_CODE[int(codes_old[a, b])],
                _RELATION_OF_CODE[int(codes_new[a, b])],
            )
            for a, b in np.argwhere(touched)
        ]

    def _emit_one_sided(
        self, block: tuple[int, int, int, int], center: Point, old_side: bool
    ) -> list[tuple[CellId, CellRelation, CellRelation]]:
        codes = self._classify_block(center, block)
        i_lo, _, j_lo, _ = block
        n = CellRelation.NO_INTERSECT
        out = []
        for a, b in np.argwhere(codes != _N_CODE):
            rel = _RELATION_OF_CODE[int(codes[a, b])]
            cell = (i_lo + int(a), j_lo + int(b))
            out.append((cell, rel, n) if old_side else (cell, n, rel))
        return out
