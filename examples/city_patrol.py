"""City patrol dispatch: react to top-k changes as they stream in.

A dispatcher does not poll the monitor — it wants a callback the moment
a place becomes one of the k least safe (send a car!) or stops being
one (stand down). This example wires a :class:`ChangeTracker` over
BasicCTUP and OptCTUP simultaneously, logs every alert, and shows that
both schemes fire the same SK trajectory while doing very different
amounts of work.

Run:  python examples/city_patrol.py
"""

from repro import BasicCTUP, ChangeTracker, CTUPConfig, OptCTUP
from repro.roadnet import NetworkMobility, radial_network
from repro.workloads import generate_places, record_stream


def main() -> None:
    config = CTUPConfig(k=8, delta=4, protection_range=0.1, granularity=10)
    places = generate_places(8_000, seed=5)
    network = radial_network(rings=5, spokes=12, seed=2)
    mobility = NetworkMobility(
        network, count=80, speed=0.004, report_distance=0.004, seed=9
    )
    units = mobility.initial_units(config.protection_range)
    stream = record_stream(mobility, 2_000)

    place_by_id = {p.place_id: p for p in places}
    alerts = 0

    def dispatch(change) -> None:
        nonlocal alerts
        for record in change.entered:
            place = place_by_id[record.place_id]
            alerts += 1
            if alerts <= 12:  # keep the demo readable
                print(
                    f"t={change.timestamp:7.1f}  ALERT  {place.kind:12s} "
                    f"#{record.place_id} safety {record.safety:+.0f} "
                    f"(SK {change.sk_after:+.0f})"
                )
        for record in change.left:
            if alerts <= 12:
                print(
                    f"t={change.timestamp:7.1f}  clear  place "
                    f"#{record.place_id}"
                )

    opt = ChangeTracker(OptCTUP(config, places, units))
    basic = ChangeTracker(BasicCTUP(config, places, units))
    opt.subscribe(dispatch)
    opt.initialize()
    basic.initialize()

    for update in stream:
        opt.process(update)
        basic.process(update)

    print(f"\n... {alerts} alerts over {len(stream)} location updates")
    print(f"result changes seen: opt={opt.changes_seen} basic={basic.changes_seen}")
    assert opt.monitor.sk() == basic.monitor.sk()
    for name, tracker in (("opt", opt), ("basic", basic)):
        counters = tracker.monitor.counters
        print(
            f"{name:6s} work: {counters.cells_accessed:5d} cell accesses, "
            f"peak {counters.maintained_peak:5d} maintained places, "
            f"{counters.total_update_time_s():6.2f} s processing"
        )


if __name__ == "__main__":
    main()
