"""Cross-scheme equivalence: all monitors answer the same query.

Every scheme must report a *valid* top-k set: same SK, exact safeties,
and every place strictly below SK included. At the SK boundary several
places can tie, and which tied place fills the k-th slot legitimately
differs between schemes (a tied place in a never-accessed dark cell is
not maintained and cannot be chosen) — the paper's Definition 4 itself
is ambiguous there. The tests therefore compare SK and the strict
sub-SK set across schemes, and validate everything against the
brute-force oracle, across the paper's parameter grid.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import BasicCTUP, CTUPConfig, NaiveCTUP, OptCTUP
from repro.core.incremental import IncrementalNaiveCTUP
from repro.validate import Oracle
from repro.workloads import (
    RandomWalkMobility,
    generate_places,
    generate_units,
    record_stream,
)

SCHEMES = [NaiveCTUP, BasicCTUP, OptCTUP, IncrementalNaiveCTUP]


def run_all(config, n_places, n_units, n_updates, seed):
    places = generate_places(n_places, seed=seed)
    units = generate_units(n_units, config.protection_range, seed=seed + 1)
    stream = record_stream(
        RandomWalkMobility(units, step=0.03, seed=seed + 2), n_updates
    )
    monitors = [cls(config, places, units) for cls in SCHEMES]
    oracle = Oracle(places, units)
    for monitor in monitors:
        monitor.initialize()
    for i, update in enumerate(stream):
        oracle.apply(update)
        reference = None
        for monitor in monitors:
            monitor.process(update)
            verdict = oracle.validate(monitor.top_k(), config.k)
            assert verdict.ok, (i, monitor.name, verdict.problems[:3])
            sk = monitor.sk()
            strict = frozenset(
                r.place_id for r in monitor.top_k() if r.safety < sk
            )
            if reference is None:
                reference = (sk, strict)
            else:
                assert (sk, strict) == reference, (i, monitor.name)
    return monitors


class TestDefaultConfig:
    def test_equivalence_default(self):
        run_all(
            CTUPConfig(k=5, delta=3, protection_range=0.1, granularity=8),
            n_places=1200,
            n_units=30,
            n_updates=120,
            seed=100,
        )


@pytest.mark.parametrize("k", [1, 3, 10])
def test_equivalence_varying_k(k):
    run_all(
        CTUPConfig(k=k, delta=3, protection_range=0.1, granularity=8),
        n_places=800,
        n_units=25,
        n_updates=80,
        seed=200 + k,
    )


@pytest.mark.parametrize("granularity", [1, 3, 12])
def test_equivalence_varying_granularity(granularity):
    run_all(
        CTUPConfig(k=5, delta=3, protection_range=0.1, granularity=granularity),
        n_places=800,
        n_units=25,
        n_updates=80,
        seed=300 + granularity,
    )


@pytest.mark.parametrize("radius", [0.02, 0.25])
def test_equivalence_varying_range(radius):
    run_all(
        CTUPConfig(k=5, delta=3, protection_range=radius, granularity=8),
        n_places=800,
        n_units=25,
        n_updates=80,
        seed=400,
    )


@pytest.mark.parametrize("delta", [0, 1, 10])
def test_equivalence_varying_delta(delta):
    run_all(
        CTUPConfig(k=5, delta=delta, protection_range=0.1, granularity=8),
        n_places=800,
        n_units=25,
        n_updates=80,
        seed=500 + delta,
    )


def test_equivalence_without_doo():
    config = CTUPConfig(
        k=5, delta=3, protection_range=0.1, granularity=8, use_doo=False
    )
    run_all(config, n_places=800, n_units=25, n_updates=80, seed=600)


def test_equivalence_tiny_world():
    """Very few places and units; k covers everything."""
    run_all(
        CTUPConfig(k=8, delta=2, protection_range=0.2, granularity=3),
        n_places=10,
        n_units=3,
        n_updates=60,
        seed=700,
    )


@pytest.mark.parametrize("network", ["grid", "radial", "random"])
def test_equivalence_network_streams(network):
    """The benchmark workload (road-network movement) agrees too."""
    from repro.bench import build_workload

    config = CTUPConfig(k=6, delta=4, protection_range=0.1, granularity=8)
    workload = build_workload(
        n_units=25,
        n_places=900,
        stream_length=150,
        seed=17,
        network=network,
    )
    monitors = [
        cls(config, workload.places, workload.units) for cls in SCHEMES
    ]
    oracle = Oracle(workload.places, workload.units)
    for monitor in monitors:
        monitor.initialize()
    for i, update in enumerate(workload.stream):
        oracle.apply(update)
        reference = None
        for monitor in monitors:
            monitor.process(update)
            verdict = oracle.validate(monitor.top_k(), config.k)
            assert verdict.ok, (i, monitor.name, verdict.problems[:3])
            sk = monitor.sk()
            strict = frozenset(
                r.place_id for r in monitor.top_k() if r.safety < sk
            )
            if reference is None:
                reference = (sk, strict)
            else:
                assert (sk, strict) == reference, (i, monitor.name)


def test_equivalence_directed_patrol_stream():
    """Hotspot-seeking fleets (worst case for hot cells) agree as well."""
    from repro.workloads import build_scenario

    config = CTUPConfig(k=6, delta=4, protection_range=0.1, granularity=8)
    world = build_scenario(
        "directed-patrol", seed=23, n_places=900, n_units=25, stream_length=150
    )
    monitors = [cls(config, world.places, world.units) for cls in SCHEMES]
    oracle = Oracle(world.places, world.units)
    for monitor in monitors:
        monitor.initialize()
    for i, update in enumerate(world.stream):
        oracle.apply(update)
        for monitor in monitors:
            monitor.process(update)
            verdict = oracle.validate(monitor.top_k(), config.k)
            assert verdict.ok, (i, monitor.name, verdict.problems[:3])


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    k=st.integers(1, 8),
    delta=st.integers(0, 6),
    granularity=st.integers(2, 10),
    seed=st.integers(0, 10_000),
)
def test_equivalence_property(k, delta, granularity, seed):
    """Random configurations never break cross-scheme agreement."""
    run_all(
        CTUPConfig(
            k=k, delta=delta, protection_range=0.12, granularity=granularity
        ),
        n_places=300,
        n_units=12,
        n_updates=40,
        seed=seed,
    )
