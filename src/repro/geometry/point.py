"""2D points.

A :class:`Point` is an immutable pair of floats. Protecting units and
(point-shaped) places both carry their location as a ``Point``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable location in the plane.

    The CTUP paper works in a longitude/latitude plane normalised by the
    workload generator to the unit square; nothing here assumes that
    normalisation, but all default parameters do.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance to ``other`` (avoids the sqrt)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translated(self, dx: float, dy: float) -> "Point":
        """A new point displaced by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """The ``(x, y)`` tuple, handy for numpy interop."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y
