"""A small "monitoring server" built from the library's server features.

Combines four production concerns on one shared monitor:

* **many consumers** — dispatch (top-5), dashboard (top-20) and an
  analyst (top-60) share one monitor via :class:`MultiQueryCTUP`;
* **bursty ingest** — updates arrive in batches of 32 and are absorbed
  with one access pass per burst by a :class:`MonitorSession`;
* **instrumentation** — a hook counts bursts, cell accesses and result
  changes without touching the ingest loop;
* **restart without re-initialization** — mid-run the server
  checkpoints, "crashes", restores from the checkpoint, and continues;
  the answers after the restore are identical.

Run:  python examples/multi_query_server.py
"""

from repro import CTUPConfig
from repro.core import MultiQueryCTUP
from repro.engine import MonitorHooks, MonitorSession
from repro.persist import restore_optctup, snapshot_optctup
from repro.roadnet import NetworkMobility, grid_network
from repro.workloads import generate_places, record_stream

BATCH = 32


class OpsCounters(MonitorHooks):
    """Session instrumentation: bursts, accesses, result changes."""

    def __init__(self) -> None:
        self.bursts = 0
        self.accesses = 0
        self.result_changes = 0

    def on_batch_flush(self, updates, report):
        self.bursts += 1

    def on_refresh(self, accessed):
        self.accesses += accessed

    def on_topk_change(self, change):
        self.result_changes += 1


def main() -> None:
    config = CTUPConfig(k=5, delta=4, protection_range=0.1, granularity=10)
    places = generate_places(8_000, seed=11)
    mobility = NetworkMobility(
        grid_network(seed=2), count=90, speed=0.004, report_distance=0.004,
        seed=13,
    )
    units = mobility.initial_units(config.protection_range)
    stream = record_stream(mobility, 2_000)

    # -- many consumers over one monitor -------------------------------
    server = MultiQueryCTUP(config, places, units)
    server.register("dispatch", 5)
    server.register("dashboard", 20)
    server.register("analyst", 60)
    server.initialize()
    print(
        f"serving {len(server.queries)} queries from one monitor "
        f"(shared K = {server.shared_k})"
    )

    # -- bursty ingest through the engine session -----------------------
    ops = OpsCounters()
    session = MonitorSession(server.monitor, batch_size=BATCH, hooks=[ops])
    session.start()  # adopts the already-initialized shared monitor
    half = len(stream) // 2
    session.run(stream.prefix(half))
    print(
        f"first {half} updates in {ops.bursts} bursts of {BATCH} "
        f"({ops.accesses} cell accesses, {ops.result_changes} result "
        f"changes); dispatch sees "
        f"{[r.place_id for r in server.top_k('dispatch')]}"
    )

    # -- checkpoint, crash, restore ---------------------------------------
    checkpoint = snapshot_optctup(server.monitor)
    print(f"checkpoint taken ({len(checkpoint):,} bytes of JSON)")
    restored = restore_optctup(checkpoint, places)
    assert restored.topk_ids() == server.monitor.topk_ids()
    print("restored monitor agrees with the live one — no re-initialization")

    # -- both servers consume the rest of the stream ------------------------
    rest = stream.updates[half:]
    session.run(rest)
    MonitorSession(restored, batch_size=BATCH).run(rest)
    assert restored.topk_ids() == server.monitor.topk_ids()
    assert restored.sk() == server.monitor.sk()

    print(
        f"\nafter {len(stream)} updates (SK {server.monitor.sk():+.0f}):"
    )
    for query_id in ("dispatch", "dashboard", "analyst"):
        records = server.top_k(query_id)
        print(
            f"  {query_id:9s} k={len(records):2d}  worst "
            f"{records[0].safety:+.0f} .. boundary {records[-1].safety:+.0f}"
        )
    print(
        f"\nshared monitor work: "
        f"{server.monitor.counters.cells_accessed} cell accesses, "
        f"{server.monitor.counters.maintained_peak} maintained peak — "
        f"one monitor instead of three"
    )


if __name__ == "__main__":
    main()
