"""Burst-engine benchmark: coalescing + vectorised kernels, with a guard.

Runs BasicCTUP and OptCTUP over a pinned-seed workload at burst sizes
1 / 8 / 32 in three execution modes —

* ``perupdate`` — the pre-coalescing path (``coalesce=False``), one
  scalar ``apply_update`` per raw update;
* ``scalar``    — move coalescing on, scalar chain folds;
* ``kernels``   — move coalescing on, ``config.burst_kernels`` numpy
  passes (one classification/maintained/bound pass per burst);

— and writes a canonical JSON document. ``repro.bench.guard`` compares
it against the committed baseline (``BENCH_burst.json`` at the
repository root): structural mismatch fails, numeric drift only warns.

Every run triple is checked for bit-identity before it is recorded:
final top-k pairs, SK and the logical counters must agree across the
three modes (the per-update mode may differ only in the counters that
measure the work coalescing skips — ``coalesced_updates``,
``maintained_scans``, ``distance_rows``). The headline number is the
wall-time ratio at burst 32: ``perupdate`` vs ``kernels`` must show the
burst engine beating the scalar per-update path at least 2x.

The workload keeps the fleet (24 units) below the largest burst so
bursts genuinely contain duplicate-unit chains — both levers
(coalescing and multi-unit vectorisation) are exercised.

CLI (also wired into CI as a smoke job)::

    python benchmarks/bench_burst.py --smoke --check   # fast CI guard
    python benchmarks/bench_burst.py --write-baseline  # refresh baseline

Running under pytest executes the smoke profile, the identity checks
and the structural comparison against the committed baseline.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import platform
import sys
import time

import numpy as np

from repro.bench import build_workload
from repro.bench.guard import (
    SCHEMA_VERSION,
    compare,
    load_baseline,
    write_baseline,
)
from repro.bench.harness import MONITOR_FACTORIES
from repro.bench.workload import Workload
from repro.core import CTUPConfig
from repro.core.batch import BatchProcessor
from repro.validate import Oracle

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_burst.json"

BENCH_NAME = "burst"
SCHEMES = ("basic", "opt")
BURSTS = (1, 8, 32)
MODES = ("perupdate", "scalar", "kernels")

#: pinned workloads; these parameters are part of the baseline's
#: identity — changing them is a structural break, not a regression.
#: The fleet is smaller than the largest burst on purpose (see module
#: docstring).
PROFILES = {
    "smoke": dict(
        n_units=24,
        n_places=800,
        stream_length=480,
        seed=9,
        speed=0.002,
        report_distance=0.002,
    ),
    "default": dict(
        n_units=24,
        n_places=1_200,
        stream_length=960,
        seed=9,
        speed=0.002,
        report_distance=0.002,
    ),
}
K = 5
DELTA = 6
GRANULARITY = 12

#: deterministic counters guarded tightly.
COUNTER_METRICS = (
    "cells_accessed",
    "places_loaded",
    "lb_increments",
    "lb_decrements",
    "dechash_inserts",
    "dechash_removes",
    "doo_suppressed",
    "coalesced_updates",
    "maintained_scans",
    "distance_rows",
    "page_reads",
    "final_sk",
)

#: wall-clock metrics: noisy, never more than a warning.
WALL_METRICS = (
    "wall_seconds",
    "maintain_seconds",
    "access_seconds",
    "ms_per_update",
)

#: counters allowed to differ between the per-update mode and the two
#: coalesced modes — exactly the work coalescing skips.
COALESCING_COUNTERS = {
    "coalesced_updates",
    "maintained_scans",
    "distance_rows",
}


def machine_metadata() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "numpy": np.__version__,
    }


def _logical(counters) -> dict:
    return {
        f.name: getattr(counters, f.name)
        for f in dataclasses.fields(counters)
        if not f.name.startswith("time_")
    }


def run_case(
    scheme: str, workload: Workload, burst: int, mode: str
) -> tuple[dict, dict]:
    """One (scheme, burst size, mode) measurement.

    Returns ``(metrics, identity)``: the guarded metric row, and the
    full identity payload (top-k pairs, SK, logical counters) used to
    assert the three modes are interchangeable.
    """
    config = CTUPConfig(
        k=K,
        delta=DELTA,
        granularity=GRANULARITY,
        burst_kernels=(mode == "kernels"),
    )
    monitor = MONITOR_FACTORIES[scheme](
        config, workload.places, workload.units
    )
    monitor.initialize()
    after_init = monitor.counters.snapshot()
    processor = BatchProcessor(monitor, coalesce=(mode != "perupdate"))
    start = time.perf_counter()
    n = processor.run_stream(workload.stream, batch_size=burst)
    wall = time.perf_counter() - start
    update = monitor.counters.snapshot() - after_init
    metrics = {
        "wall_seconds": round(wall, 4),
        "maintain_seconds": round(update.time_maintain_s, 4),
        "access_seconds": round(update.time_access_s, 4),
        "ms_per_update": round(wall / n * 1e3, 5),
        "cells_accessed": update.cells_accessed,
        "places_loaded": update.places_loaded,
        "lb_increments": update.lb_increments,
        "lb_decrements": update.lb_decrements,
        "dechash_inserts": update.dechash_inserts,
        "dechash_removes": update.dechash_removes,
        "doo_suppressed": update.doo_suppressed,
        "coalesced_updates": update.coalesced_updates,
        "maintained_scans": update.maintained_scans,
        "distance_rows": update.distance_rows,
        "page_reads": monitor.store.io_stats.page_reads,
        "final_sk": monitor.sk(),
    }
    identity = {
        "pairs": tuple((r.place_id, r.safety) for r in monitor.top_k()),
        "sk": monitor.sk(),
        "logical": _logical(update),
        "monitor": monitor,
    }
    return metrics, identity


def _assert_identical(scheme: str, burst: int, runs: dict) -> None:
    """The three modes must be interchangeable (see module docstring)."""
    base = runs["scalar"]
    for mode in MODES:
        run = runs[mode]
        tag = f"{scheme}/b{burst}/{mode}"
        assert run["pairs"] == base["pairs"], f"{tag}: top-k differs"
        assert run["sk"] == base["sk"], f"{tag}: SK differs"
        diff = {
            key
            for key, value in run["logical"].items()
            if value != base["logical"][key]
        }
        allowed = set() if mode == "kernels" else COALESCING_COUNTERS
        assert diff <= allowed, f"{tag}: counters differ beyond {allowed}: {diff}"


def run_profile(name: str, validate: bool = True) -> dict:
    params = PROFILES[name]
    workload = build_workload(
        n_units=params["n_units"],
        n_places=params["n_places"],
        stream_length=params["stream_length"],
        seed=params["seed"],
        speed=params["speed"],
        report_distance=params["report_distance"],
    )
    schemes: dict[str, dict] = {}
    for scheme in SCHEMES:
        rows: dict[str, dict] = {}
        for burst in BURSTS:
            runs: dict[str, dict] = {}
            for mode in MODES:
                metrics, identity = run_case(scheme, workload, burst, mode)
                rows[f"{mode}-b{burst}"] = metrics
                runs[mode] = identity
            _assert_identical(scheme, burst, runs)
            if validate:
                # one oracle check per triple: with the identity
                # assertions above it covers all three modes.
                oracle = Oracle(workload.places, workload.units)
                for update in workload.stream:
                    oracle.apply(update)
                verdict = oracle.validate(
                    runs["kernels"]["monitor"].top_k(), K
                )
                assert verdict.ok, f"{scheme}/b{burst}: {verdict.problems[:5]}"
        schemes[scheme] = rows
    return {
        "workload": {**params, "k": K, "delta": DELTA, "granularity": GRANULARITY},
        "schemes": schemes,
    }


def run_bench(profiles: list[str], validate: bool = True) -> dict:
    return {
        "bench": BENCH_NAME,
        "version": SCHEMA_VERSION,
        "machine": machine_metadata(),
        "profiles": {name: run_profile(name, validate) for name in profiles},
    }


def speedup_at(doc: dict, profile: str, scheme: str, burst: int) -> float:
    """Wall ratio perupdate/kernels at one burst size (>1 = kernels win)."""
    rows = doc["profiles"][profile]["schemes"][scheme]
    return rows[f"perupdate-b{burst}"]["wall_seconds"] / rows[
        f"kernels-b{burst}"
    ]["wall_seconds"]


def _speedup_lines(doc: dict) -> list[str]:
    lines = []
    for profile, prof in doc["profiles"].items():
        for scheme, rows in prof["schemes"].items():
            for burst in BURSTS:
                per = rows[f"perupdate-b{burst}"]
                ker = rows[f"kernels-b{burst}"]
                lines.append(
                    f"{profile:8} {scheme:6} b{burst:<3} "
                    f"perupdate {per['ms_per_update']:8.4f} ms/upd  "
                    f"kernels {ker['ms_per_update']:8.4f} ms/upd  "
                    f"speedup {per['wall_seconds'] / ker['wall_seconds']:5.2f}x  "
                    f"coalesced {ker['coalesced_updates']}"
                )
    return lines


# -- pytest entry point (the CI smoke job runs this file directly) --------


def test_burst_smoke_matches_baseline():
    doc = run_bench(["smoke"])
    # the identity assertions already ran inside run_profile; here the
    # burst engine must additionally *win* at the largest burst size.
    # (The full >= 2x acceptance ratio is asserted on the default
    # profile in __main__ runs — CI runners are too noisy to gate on
    # exact wall ratios, same policy as the hot-path bench.)
    for scheme in SCHEMES:
        assert speedup_at(doc, "smoke", scheme, 32) > 1.0, scheme
    report = compare(
        load_baseline(BASELINE_PATH),
        doc,
        bench=BENCH_NAME,
        counter_metrics=COUNTER_METRICS,
        wall_metrics=WALL_METRICS,
    )
    assert report.ok(), report.render()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="run only the fast smoke profile"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline "
        "(exit 1 on structural mismatch)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="with --check: also fail on counter regressions",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=f"write the results to {BASELINE_PATH.name}",
    )
    parser.add_argument(
        "--no-validate",
        action="store_true",
        help="skip the per-triple brute-force top-k validation",
    )
    args = parser.parse_args(argv)

    profiles = ["smoke"] if args.smoke else ["smoke", "default"]
    doc = run_bench(profiles, validate=not args.no_validate)
    print(json.dumps(doc["machine"], sort_keys=True))
    for line in _speedup_lines(doc):
        print(line)
    if "default" in doc["profiles"]:
        for scheme in SCHEMES:
            ratio = speedup_at(doc, "default", scheme, 32)
            verdict = "PASS" if ratio >= 2.0 else "FAIL"
            print(f"acceptance {scheme}: {ratio:.2f}x >= 2x at b32 [{verdict}]")

    status = 0
    if args.check:
        try:
            baseline = load_baseline(BASELINE_PATH)
        except FileNotFoundError:
            print(f"no baseline at {BASELINE_PATH}; run --write-baseline first")
            return 1
        report = compare(
            baseline,
            doc,
            bench=BENCH_NAME,
            counter_metrics=COUNTER_METRICS,
            wall_metrics=WALL_METRICS,
        )
        print(report.render())
        if not report.ok(strict=args.strict):
            status = 1
    if args.write_baseline:
        write_baseline(BASELINE_PATH, doc)
        print(f"baseline written to {BASELINE_PATH}")
    return status


if __name__ == "__main__":
    sys.exit(main())
