"""Uniform space partitioning.

The paper partitions the 2D map into ``X x Y`` disjoint cells (storage
model of §II-A). This package provides the partition itself plus the
candidate-cell enumeration used on every location update: only cells
whose rectangle meets the old or new protection disk can change their
N/P/F relation, so only those need Table I / Table II processing.
"""

from repro.grid.partition import CellId, CircleStencil, GridPartition
from repro.grid.cellstate import CellState

__all__ = ["CellId", "CircleStencil", "GridPartition", "CellState"]
