"""Lint configuration, read from ``[tool.reprolint]`` in pyproject.toml.

The committed configuration is the contract: the strict-typing
allowlist says which module subtrees must be fully annotated (the
RPLT01 gate), and ``select``/``ignore`` narrow the rule set for ad-hoc
runs. Loading walks up from the linted paths so the tool works from any
working directory inside the repository.
"""

from __future__ import annotations

import dataclasses
import pathlib
import tomllib

#: module prefixes that must pass the annotation-strictness gate when no
#: pyproject declares its own list (mirrors the committed configuration).
DEFAULT_STRICT_MODULES: tuple[str, ...] = (
    "repro.api",
    "repro.model",
    "repro.geometry",
    "repro.grid",
    "repro.storage",
    "repro.core",
    "repro.shard",
    "repro.index",
    "repro.lint",
)


@dataclasses.dataclass(frozen=True, slots=True)
class LintConfig:
    """Resolved configuration for one lint run."""

    #: dotted module prefixes the RPLT01 typing gate applies to.
    strict_typed_modules: tuple[str, ...] = DEFAULT_STRICT_MODULES
    #: restrict the run to these codes (empty = all registered rules).
    select: tuple[str, ...] = ()
    #: codes dropped from the run after ``select``.
    ignore: tuple[str, ...] = ()

    def active_codes(self, registered: frozenset[str]) -> frozenset[str]:
        codes = frozenset(self.select) & registered if self.select else registered
        return codes - frozenset(self.ignore)

    def is_strict_typed(self, module: str | None) -> bool:
        """Whether ``module`` (dotted) falls under the typing gate."""
        if module is None:
            return False
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.strict_typed_modules
        )


def find_pyproject(start: pathlib.Path) -> pathlib.Path | None:
    """The nearest ``pyproject.toml`` at or above ``start``."""
    node = start if start.is_dir() else start.parent
    for candidate in (node, *node.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(anchor: pathlib.Path | None = None) -> LintConfig:
    """Configuration for a run anchored at ``anchor`` (a linted path).

    Missing file or missing ``[tool.reprolint]`` table falls back to the
    defaults, so the linter runs on fixture trees outside the repo.
    """
    pyproject = find_pyproject(anchor or pathlib.Path.cwd())
    if pyproject is None:
        return LintConfig()
    try:
        with pyproject.open("rb") as handle:
            data = tomllib.load(handle)
    except (OSError, tomllib.TOMLDecodeError):
        return LintConfig()
    table = data.get("tool", {}).get("reprolint", {})
    if not isinstance(table, dict):
        return LintConfig()
    return LintConfig(
        strict_typed_modules=tuple(
            table.get("strict-typed-modules", DEFAULT_STRICT_MODULES)
        ),
        select=tuple(table.get("select", ())),
        ignore=tuple(table.get("ignore", ())),
    )
