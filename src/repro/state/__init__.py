"""The universal monitor state layer.

Every scheme's mutable state — unit positions, per-scheme structures,
storage-cache contents and all work counters — sits behind one
scheme-agnostic protocol (:class:`Snapshottable`), one versioned
snapshot document (:func:`snapshot_monitor` / :func:`restore_monitor`),
one append-only update journal (:class:`UpdateJournal`) and one recovery
driver (:class:`RecoveryManager`). Restoring the latest snapshot and
replaying the journal tail resumes a monitoring run to a bit-identical
state: same top-k, same ``SK``, same counters as the uninterrupted run.
"""

from repro.state.codec import decode_config, encode_config
from repro.state.journal import JournalRecord, UpdateJournal
from repro.state.recovery import (
    CheckpointPolicy,
    CheckpointStore,
    RecoveryManager,
)
from repro.state.snapshot import (
    FORMAT_VERSION,
    Snapshottable,
    SnapshotError,
    fingerprint_places,
    fingerprint_places_v1,
    restore_monitor,
    snapshot_monitor,
)

__all__ = [
    "FORMAT_VERSION",
    "CheckpointPolicy",
    "CheckpointStore",
    "JournalRecord",
    "RecoveryManager",
    "SnapshotError",
    "Snapshottable",
    "UpdateJournal",
    "decode_config",
    "encode_config",
    "fingerprint_places",
    "fingerprint_places_v1",
    "restore_monitor",
    "snapshot_monitor",
]
