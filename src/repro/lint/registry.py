"""The rule registry: one decorated check function per RPL code.

A rule is a pure function from one parsed source file (plus the
project-wide index built in a pre-pass) to an iterable of
:class:`Violation`. Registration is declarative so the engine, the
reporters and the docs all read the same table.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Mapping

if TYPE_CHECKING:  # circular at runtime: engine imports the registry.
    from repro.lint.engine import ProjectIndex, SourceFile


@dataclasses.dataclass(frozen=True, slots=True)
class Violation:
    """One finding: a rule code anchored to a source line."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def to_payload(self) -> dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "Violation":
        return cls(
            code=str(payload["code"]),
            message=str(payload["message"]),
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[call-overload]
            col=int(payload.get("col", 0)),  # type: ignore[call-overload]
        )


CheckFn = Callable[["SourceFile", "ProjectIndex"], Iterable[Violation]]


@dataclasses.dataclass(frozen=True, slots=True)
class Rule:
    """A registered rule: its code, one-line summary, and check.

    ``version`` participates in the incremental-cache key: bump it when
    a rule's behaviour changes so stale cached findings are discarded.
    ``project_dependent`` marks rules whose findings for one file can
    change when *other* files change (hierarchy, deprecated set, call
    graph); their cached findings are additionally keyed on the
    project digest.
    """

    code: str
    name: str
    summary: str
    check: CheckFn
    version: int = 1
    project_dependent: bool = False

    def run(self, source: "SourceFile", project: "ProjectIndex") -> Iterator[Violation]:
        yield from self.check(source, project)


#: every registered rule, keyed by code (populated on import of
#: :mod:`repro.lint.rules`).
RULES: dict[str, Rule] = {}


def rule(
    code: str,
    name: str,
    summary: str,
    *,
    version: int = 1,
    project_dependent: bool = False,
) -> Callable[[CheckFn], CheckFn]:
    """Register ``check`` under ``code`` (decorator)."""

    def decorate(check: CheckFn) -> CheckFn:
        if code in RULES:
            raise ValueError(f"duplicate rule code {code}")
        RULES[code] = Rule(
            code=code,
            name=name,
            summary=summary,
            check=check,
            version=version,
            project_dependent=project_dependent,
        )
        return check

    return decorate


def known_codes() -> frozenset[str]:
    """All registered codes (suppression comments are validated against
    this set)."""
    return frozenset(RULES)


def rule_signature(codes: Iterable[str]) -> str:
    """A stable ``code:version`` fingerprint of a rule subset — part of
    the incremental-cache key."""
    return ",".join(
        f"{code}:{RULES[code].version}" for code in sorted(codes)
    )
