"""An incremental full-table baseline (ablation, not in the paper).

The paper dismisses "maintaining the base table" (the safety of every
place) as prohibitively costly. The fair strongest version of that idea
is implemented here: keep all |P| safeties in memory and, per update,
adjust only the places inside the old or new protection disk — O(|P|)
scan per update instead of the naïve O(|P|·|U|) recomputation, but still
touching every place's coordinates on every update and holding the full
table in memory. The ablation bench compares it against the grid-bound
schemes to show that the paper's cell bounds buy more than incrementality
alone.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.core.config import CTUPConfig
from repro.core.metrics import InitReport
from repro.core.monitor import CTUPMonitor
from repro.core.topk import kth_smallest, topk_rows
from repro.model import LocationUpdate, Place, SafetyRecord, Unit


class IncrementalNaiveCTUP(CTUPMonitor):
    """Full in-memory safety table with incremental maintenance."""

    name = "incremental"

    STATE_FIELDS = ("_ids", "_safety", "_init_cells")
    TRANSIENT_FIELDS = ("_xs", "_ys", "_place_by_id")

    def __init__(
        self,
        config: CTUPConfig,
        places: Sequence[Place],
        units: Iterable[Unit],
    ) -> None:
        super().__init__(config, places, units)
        self._ids = np.empty(0, dtype=np.int64)
        self._xs = np.empty(0, dtype=np.float64)
        self._ys = np.empty(0, dtype=np.float64)
        self._safety = np.empty(0, dtype=np.float64)
        self._place_by_id: dict[int, Place] = {}
        self._init_cells = 0

    def _build_initial_state(self) -> None:
        ids, xs, ys, required = [], [], [], []
        cells = self.store.occupied_cells()
        self._init_cells = len(cells)
        for cell in cells:
            places, arrays = self.store.read_cell_with_arrays(cell)
            ids.append(arrays.ids)
            xs.append(arrays.xs)
            ys.append(arrays.ys)
            required.append(arrays.required)
            for place in places:
                self._place_by_id[place.place_id] = place
        if ids:
            self._ids = np.concatenate(ids)
            self._xs = np.concatenate(xs)
            self._ys = np.concatenate(ys)
            req = np.concatenate(required)
            ap = self.units.ap_counts(self._xs, self._ys)
            self._safety = ap.astype(np.float64) - req
            self.counters.distance_rows += len(self._ids) * len(self.units)
        self.counters.places_loaded += len(self._ids)

    def _init_report(self, elapsed: float) -> InitReport:
        return InitReport(
            seconds=elapsed,
            cells_accessed=self._init_cells,
            places_loaded=len(self._ids),
            sk=self.sk(),
            maintained_places=len(self._ids),
        )

    def _apply(self, update: LocationUpdate) -> None:
        old = self.units.apply(update)
        new = update.new_location
        r2 = self.config.protection_range ** 2
        dxo = self._xs - old.x
        dyo = self._ys - old.y
        was = dxo * dxo + dyo * dyo <= r2
        dxn = self._xs - new.x
        dyn = self._ys - new.y
        now = dxn * dxn + dyn * dyn <= r2
        self._safety += now.astype(np.float64) - was.astype(np.float64)
        self.counters.maintained_scans += len(self._ids)
        # two distance evaluations (old, new) per place:
        self.counters.distance_rows += 2 * len(self._ids)

    def _refresh(self) -> int:
        # the full table is always exact — nothing to access.
        return 0

    def _reset_scheme_state(self) -> None:
        self._ids = np.empty(0, dtype=np.int64)
        self._xs = np.empty(0, dtype=np.float64)
        self._ys = np.empty(0, dtype=np.float64)
        self._safety = np.empty(0, dtype=np.float64)
        self._place_by_id = {}
        self._init_cells = 0

    def top_k(self) -> list[SafetyRecord]:
        return self.partial_top_k(self.config.k)

    def partial_top_k(self, m: int) -> list[SafetyRecord]:
        # the full safety table lives in memory: any prefix length works.
        rows = topk_rows(self._ids, self._safety, m)
        return [
            SafetyRecord(
                self._place_by_id[int(self._ids[row])], float(self._safety[row])
            )
            for row in rows.tolist()
        ]

    def sk(self) -> float:
        if self.config.k <= 0:
            return -math.inf
        if len(self._safety) == 0:
            return math.inf
        return kth_smallest(self._safety, self.config.k)

    # -- checkpointing ----------------------------------------------------

    def _export_scheme_state(self) -> dict[str, Any]:
        return {
            "ids": [int(i) for i in self._ids],
            "safety": [float(s) for s in self._safety],
            "init_cells": self._init_cells,
        }

    def _restore_scheme_state(self, fields: Mapping[str, Any]) -> None:
        # the coordinate columns and the place lookup are derived from
        # the (static) place set; rebuild them by re-reading the store
        # and verify the row order matches the export.
        ids, xs, ys = [], [], []
        self._place_by_id = {}
        for cell in self.store.occupied_cells():
            places, arrays = self.store.read_cell_with_arrays(cell)
            ids.append(arrays.ids)
            xs.append(arrays.xs)
            ys.append(arrays.ys)
            for place in places:
                self._place_by_id[place.place_id] = place
        if ids:
            self._ids = np.concatenate(ids)
            self._xs = np.concatenate(xs)
            self._ys = np.concatenate(ys)
        else:
            self._ids = np.empty(0, dtype=np.int64)
            self._xs = np.empty(0, dtype=np.float64)
            self._ys = np.empty(0, dtype=np.float64)
        if self._ids.tolist() != [int(i) for i in fields["ids"]]:
            raise ValueError(
                "restored place rows do not match the stored place set"
            )
        safety = np.asarray(fields["safety"], dtype=np.float64)
        if len(safety) != len(self._ids):
            raise ValueError("safety table length mismatch")
        self._safety = safety
        self._init_cells = int(fields["init_cells"])
