"""Per-cell monitoring state.

Both monitors keep one :class:`CellState` per grid cell. BasicCTUP uses
the ``illuminated`` flag (Fig. 1); OptCTUP keeps every cell dark and only
uses the lower bound (Fig. 2). The lower bound is a float so that the
decaying-protection extension (real-valued safeties) can reuse the same
state; the core monitors only ever store integers or ``+inf`` in it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(slots=True)
class CellState:
    """Mutable monitoring state of one grid cell.

    ``lower_bound`` is a certified lower bound on the safety of the
    cell's *tracked-by-bound* places: all places of the cell in
    BasicCTUP, only the non-maintained places in OptCTUP. ``+inf`` means
    the bound constrains nothing (an empty cell, or a cell whose places
    are all individually maintained).
    """

    lower_bound: float = math.inf
    illuminated: bool = False
    #: number of places stored in this cell (set at initialisation; the
    #: set of places is static, so this never changes afterwards).
    place_count: int = 0
    #: how many times this cell was illuminated / accessed — the cost
    #: counter behind Fig. 9's "cell access" series.
    access_count: int = field(default=0, repr=False)

    def decrease(self, amount: float = 1.0) -> None:
        """Lower the bound by ``amount`` (a unit may have stopped protecting)."""
        self.lower_bound -= amount

    def increase(self, amount: float = 1.0) -> None:
        """Raise the bound by ``amount`` (a unit now protects the whole cell)."""
        self.lower_bound += amount
