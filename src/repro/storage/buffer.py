"""An LRU buffer pool over a :class:`~repro.storage.pagestore.PageStore`.

The paper's model divides memory in two, one piece simulating the disk.
The buffer pool makes that split explicit and is the subject of the
buffer ablation bench: with a pool large enough to hold the hot cells,
repeated illuminations of the same "flashing" cell stop costing physical
reads, which is exactly the effect Δ is designed to avoid algorithmically.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from repro.storage.pagestore import Page, PageStore


class BufferPool:
    """A fixed-capacity LRU cache of pages.

    ``capacity`` is the number of pages held. A capacity of zero degrades
    to a pass-through (every read is physical).
    """

    def __init__(self, store: PageStore, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("buffer capacity cannot be negative")
        self._store = store
        self._capacity = capacity
        self._frames: OrderedDict[int, Page] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._frames)

    def read(self, page_id: int) -> Page:
        """Read a page through the pool, counting hits and misses."""
        if page_id in self._frames:
            self._frames.move_to_end(page_id)
            self.hits += 1
            self._store.stats.buffered_reads += 1
            return self._frames[page_id]
        self.misses += 1
        page = self._store.read(page_id)
        if self._capacity > 0:
            self._frames[page_id] = page
            if len(self._frames) > self._capacity:
                self._frames.popitem(last=False)
        return page

    def clear(self) -> None:
        """Drop every cached frame (counters are kept)."""
        self._frames.clear()

    def invalidate(self, page_id: int) -> None:
        """Evict one frame if resident (page rewritten or released).

        A no-op when the page is not cached; counters are kept — an
        invalidation is bookkeeping, not traffic.
        """
        self._frames.pop(page_id, None)

    def frame_ids(self) -> list[int]:
        """Resident page ids in LRU order (oldest first)."""
        return list(self._frames)

    def restore_frames(self, page_ids: Sequence[int]) -> None:
        """Reload exactly ``page_ids`` (LRU order), without accounting.

        Used by checkpoint restore: the frames are reloaded out of band
        and the hit/miss counters are overwritten afterwards, so the
        resumed pool is bit-identical to the one that was snapshotted.
        """
        self._frames.clear()
        for page_id in page_ids:
            if self._capacity <= 0:
                break
            self._frames[page_id] = self._store.peek(page_id)
            if len(self._frames) > self._capacity:
                self._frames.popitem(last=False)
