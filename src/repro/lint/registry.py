"""The rule registry: one decorated check function per RPL code.

A rule is a pure function from one parsed source file (plus the
project-wide index built in a pre-pass) to an iterable of
:class:`Violation`. Registration is declarative so the engine, the
reporters and the docs all read the same table.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

if TYPE_CHECKING:  # circular at runtime: engine imports the registry.
    from repro.lint.engine import ProjectIndex, SourceFile


@dataclasses.dataclass(frozen=True, slots=True)
class Violation:
    """One finding: a rule code anchored to a source line."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)


CheckFn = Callable[["SourceFile", "ProjectIndex"], Iterable[Violation]]


@dataclasses.dataclass(frozen=True, slots=True)
class Rule:
    """A registered rule: its code, one-line summary, and check."""

    code: str
    name: str
    summary: str
    check: CheckFn

    def run(self, source: "SourceFile", project: "ProjectIndex") -> Iterator[Violation]:
        yield from self.check(source, project)


#: every registered rule, keyed by code (populated on import of
#: :mod:`repro.lint.rules`).
RULES: dict[str, Rule] = {}


def rule(code: str, name: str, summary: str) -> Callable[[CheckFn], CheckFn]:
    """Register ``check`` under ``code`` (decorator)."""

    def decorate(check: CheckFn) -> CheckFn:
        if code in RULES:
            raise ValueError(f"duplicate rule code {code}")
        RULES[code] = Rule(code=code, name=name, summary=summary, check=check)
        return check

    return decorate


def known_codes() -> frozenset[str]:
    """All registered codes (suppression comments are validated against
    this set)."""
    return frozenset(RULES)
