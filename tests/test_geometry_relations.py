"""Unit + property tests for the N/P/F classification.

The classification drives Tables I and II, so it gets the heaviest
scrutiny: explicit boundary cases plus a property test comparing it
against dense point sampling of the rectangle.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    CellRelation,
    Circle,
    Point,
    Rect,
    classify_circle_rect,
    point_rect_distance,
    point_rect_max_distance,
)

N, P, F = CellRelation.NO_INTERSECT, CellRelation.PARTIAL, CellRelation.FULL

CELL = Rect(0.4, 0.4, 0.5, 0.5)


class TestDistances:
    def test_min_distance_inside_is_zero(self):
        assert point_rect_distance(Point(0.45, 0.45), CELL) == 0.0

    def test_min_distance_left(self):
        assert point_rect_distance(Point(0.3, 0.45), CELL) == pytest.approx(0.1)

    def test_min_distance_corner(self):
        d = point_rect_distance(Point(0.3, 0.3), CELL)
        assert d == pytest.approx(math.hypot(0.1, 0.1))

    def test_max_distance_center(self):
        d = point_rect_max_distance(Point(0.45, 0.45), CELL)
        assert d == pytest.approx(math.hypot(0.05, 0.05))

    def test_max_distance_outside(self):
        d = point_rect_max_distance(Point(0.0, 0.0), CELL)
        assert d == pytest.approx(math.hypot(0.5, 0.5))

    def test_max_at_least_min(self):
        p = Point(0.2, 0.9)
        assert point_rect_max_distance(p, CELL) >= point_rect_distance(p, CELL)


class TestClassification:
    def test_far_circle_is_n(self):
        assert classify_circle_rect(Circle(Point(0.0, 0.0), 0.1), CELL) is N

    def test_covering_circle_is_f(self):
        assert classify_circle_rect(Circle(Point(0.45, 0.45), 0.2), CELL) is F

    def test_overlapping_circle_is_p(self):
        assert classify_circle_rect(Circle(Point(0.35, 0.45), 0.08), CELL) is P

    def test_circle_inside_cell_is_p(self):
        # a tiny disk wholly inside the cell partially intersects it.
        assert classify_circle_rect(Circle(Point(0.45, 0.45), 0.01), CELL) is P

    def test_exact_touch_is_p(self):
        # disk reaching exactly the cell edge: closed sets intersect.
        # (binary-exact coordinates so the touch really is exact)
        rect = Rect(0.5, 0.25, 0.75, 0.5)
        circle = Circle(Point(0.25, 0.375), 0.25)
        assert classify_circle_rect(circle, rect) is P

    def test_exact_cover_is_f(self):
        # radius exactly the farthest-corner distance.
        radius = math.hypot(0.05, 0.05)
        assert classify_circle_rect(Circle(Point(0.45, 0.45), radius), CELL) is F

    def test_degenerate_rect_containment_wins(self):
        point_rect = Rect(0.5, 0.5, 0.5, 0.5)
        circle = Circle(Point(0.5, 0.5), 0.1)
        assert classify_circle_rect(circle, point_rect) is F

    def test_zero_radius_inside_cell(self):
        assert classify_circle_rect(Circle(Point(0.45, 0.45), 0.0), CELL) is P


centers = st.floats(0.0, 1.0, allow_nan=False)
radii = st.floats(0.01, 0.5, allow_nan=False)


@settings(max_examples=200)
@given(centers, centers, radii)
def test_classification_agrees_with_sampling(cx, cy, radius):
    """Dense sampling of the rectangle must agree with the classifier.

    F => every sample is inside the disk; N => no sample is inside;
    P => the boundary cases (the sampler may miss thin intersections,
    so P only demands consistency, not exhaustiveness).
    """
    circle = Circle(Point(cx, cy), radius)
    relation = classify_circle_rect(circle, CELL)
    steps = 12
    samples = [
        Point(
            CELL.xmin + (CELL.xmax - CELL.xmin) * i / steps,
            CELL.ymin + (CELL.ymax - CELL.ymin) * j / steps,
        )
        for i in range(steps + 1)
        for j in range(steps + 1)
    ]
    inside = sum(circle.contains_point(s) for s in samples)
    if relation is F:
        assert inside == len(samples)
    elif relation is N:
        assert inside == 0
    else:
        # partial: cannot have everything inside; if the classifier says
        # the disk reaches the cell the nearest point must confirm it.
        assert inside < len(samples)
        assert point_rect_distance(circle.center, CELL) <= circle.radius


@settings(max_examples=200)
@given(centers, centers, radii, st.floats(0.0, 0.4), st.floats(0.0, 0.4))
def test_relations_partition_all_cases(cx, cy, radius, w, h):
    rect = Rect(0.3, 0.3, 0.3 + w + 1e-9, 0.3 + h + 1e-9)
    relation = classify_circle_rect(Circle(Point(cx, cy), radius), rect)
    assert relation in (N, P, F)
