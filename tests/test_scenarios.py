"""Named scenarios and directed patrols."""

import pytest

from repro.core import CTUPConfig, OptCTUP
from repro.roadnet import (
    DirectedPatrolMobility,
    NetworkMobility,
    coverage_of_hotspots,
    grid_network,
)
from repro.validate import Oracle
from repro.workloads import SCENARIOS, build_scenario, generate_places


class TestScenarioRegistry:
    def test_expected_scenarios_present(self):
        assert {
            "downtown",
            "old-town",
            "suburbia",
            "directed-patrol",
        } <= set(SCENARIOS)

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            build_scenario("atlantis")

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenarios_build_and_monitor(self, name):
        world = build_scenario(
            name, seed=3, n_places=500, n_units=20, stream_length=100
        )
        assert world.name == name
        assert len(world.places) == 500
        assert len(world.units) == 20
        assert len(world.stream) == 100
        config = CTUPConfig(k=5, delta=3, protection_range=0.1, granularity=8)
        monitor = OptCTUP(config, world.places, world.units)
        monitor.initialize()
        oracle = Oracle(world.places, world.units)
        for update in world.stream:
            oracle.apply(update)
            monitor.process(update)
        verdict = oracle.validate(monitor.top_k(), config.k)
        assert verdict.ok, verdict.problems

    def test_scenarios_deterministic(self):
        a = build_scenario("downtown", seed=9, n_places=100, n_units=5, stream_length=30)
        b = build_scenario("downtown", seed=9, n_places=100, n_units=5, stream_length=30)
        assert list(a.stream) == list(b.stream)
        assert a.places == b.places

    def test_hotspots_filter(self):
        world = build_scenario(
            "downtown", seed=1, n_places=2000, n_units=5, stream_length=10
        )
        hotspots = world.hotspots(min_required=5)
        assert hotspots
        assert all(p.required_protection >= 5 for p in hotspots)


class TestDirectedPatrol:
    @pytest.fixture
    def network(self):
        return grid_network(rows=10, cols=10, seed=2)

    @pytest.fixture
    def hotspots(self):
        places = generate_places(3000, seed=4)
        return [p for p in places if p.required_protection >= 7]

    def test_requires_hotspots(self, network):
        with pytest.raises(ValueError):
            DirectedPatrolMobility(network, count=5, hotspots=[])

    def test_bias_range_checked(self, network, hotspots):
        with pytest.raises(ValueError):
            DirectedPatrolMobility(
                network, count=5, hotspots=hotspots, bias=1.5
            )

    def test_stream_is_consistent(self, network, hotspots):
        mobility = DirectedPatrolMobility(
            network, count=15, hotspots=hotspots, seed=6
        )
        last = {o.unit_id: o.reported for o in mobility.objects}
        for update in mobility.updates(300):
            assert update.old_location == last[update.unit_id]
            last[update.unit_id] = update.new_location

    def test_directed_patrol_covers_hotspots_better(self, network, hotspots):
        """After settling, directed patrols sit near more hotspots."""
        directed = DirectedPatrolMobility(
            network, count=30, hotspots=hotspots, bias=0.9, seed=7
        )
        uniform = NetworkMobility(network, count=30, speed=0.004, seed=7)
        list(directed.updates(4000))
        list(uniform.updates(4000))
        covered_directed = coverage_of_hotspots(directed, hotspots, 0.1)
        covered_uniform = coverage_of_hotspots(uniform, hotspots, 0.1)
        assert covered_directed >= covered_uniform

    def test_coverage_requires_hotspots(self, network):
        mobility = NetworkMobility(network, count=3, seed=1)
        with pytest.raises(ValueError):
            coverage_of_hotspots(mobility, [], 0.1)
