"""Unit tests for protection disks."""

import pytest

from repro.geometry import Circle, Point, Rect


class TestConstruction:
    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            Circle(Point(0.0, 0.0), -0.1)

    def test_zero_radius_allowed(self):
        c = Circle(Point(0.5, 0.5), 0.0)
        assert c.contains_point(Point(0.5, 0.5))
        assert not c.contains_point(Point(0.5, 0.6))

    def test_moved_to_keeps_radius(self):
        c = Circle(Point(0.0, 0.0), 0.3).moved_to(Point(1.0, 1.0))
        assert c.center == Point(1.0, 1.0)
        assert c.radius == 0.3


class TestPointContainment:
    def test_center_contained(self):
        assert Circle(Point(0.5, 0.5), 0.1).contains_point(Point(0.5, 0.5))

    def test_boundary_contained(self):
        # Definition 1 uses the closed disk.
        assert Circle(Point(0.0, 0.0), 0.5).contains_point(Point(0.5, 0.0))

    def test_outside(self):
        assert not Circle(Point(0.0, 0.0), 0.5).contains_point(
            Point(0.51, 0.0)
        )


class TestRectRelations:
    def test_contains_small_rect(self):
        c = Circle(Point(0.5, 0.5), 0.5)
        assert c.contains_rect(Rect(0.4, 0.4, 0.6, 0.6))

    def test_does_not_contain_rect_with_far_corner(self):
        c = Circle(Point(0.5, 0.5), 0.5)
        # corners of the unit square are at distance ~0.707 > 0.5
        assert not c.contains_rect(Rect(0.0, 0.0, 1.0, 1.0))

    def test_contains_rect_boundary_case(self):
        # rect corner exactly on the circle: closed disk contains it.
        c = Circle(Point(0.0, 0.0), 5.0)
        assert c.contains_rect(Rect(0.0, 0.0, 3.0, 4.0))

    def test_intersects_overlapping_rect(self):
        c = Circle(Point(0.0, 0.5), 0.2)
        assert c.intersects_rect(Rect(0.1, 0.0, 1.0, 1.0))

    def test_intersects_rect_containing_circle(self):
        assert Circle(Point(0.5, 0.5), 0.1).intersects_rect(
            Rect(0.0, 0.0, 1.0, 1.0)
        )

    def test_does_not_intersect_far_rect(self):
        assert not Circle(Point(0.0, 0.0), 0.1).intersects_rect(
            Rect(0.5, 0.5, 1.0, 1.0)
        )

    def test_tangent_rect_intersects(self):
        # disk touching the rect edge at exactly one point.
        assert Circle(Point(0.0, 0.5), 0.5).intersects_rect(
            Rect(0.5, 0.0, 1.0, 1.0)
        )

    def test_bounding_rect(self):
        r = Circle(Point(0.5, 0.5), 0.2).bounding_rect()
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == pytest.approx(
            (0.3, 0.3, 0.7, 0.7)
        )

    def test_corner_near_miss(self):
        # the circle reaches past the rect edges in x and y separately
        # but not diagonally: a bounding-box test would be fooled.
        c = Circle(Point(0.0, 0.0), 1.0)
        rect = Rect(0.8, 0.8, 2.0, 2.0)  # nearest corner at ~1.13
        assert not c.intersects_rect(rect)
