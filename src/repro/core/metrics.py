"""Cost accounting for the monitors.

The paper reports update cost in milliseconds; a Python reproduction on
different hardware cannot match absolute numbers, so every monitor also
counts machine-independent work: cells accessed, places loaded, bound
adjustments, distance-kernel rows. Fig. 9's split of the update cost
into "modify maintained information" versus "access cells" maps onto
``time_maintain_s`` / ``time_access_s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass(slots=True)
class MonitorCounters:
    """Cumulative work performed by one monitor instance."""

    updates_processed: int = 0
    #: raw updates whose maintain work was collapsed into another update
    #: of the same unit by burst coalescing (``repro.core.batch``). Every
    #: coalesced update still counts in ``updates_processed``; this field
    #: explains the matching drop in ``maintained_scans`` /
    #: ``distance_rows`` relative to a per-update run.
    coalesced_updates: int = 0
    #: cells illuminated (BasicCTUP) or accessed (OptCTUP), incl. init.
    cells_accessed: int = 0
    #: places loaded from the lower storage level.
    places_loaded: int = 0
    #: lower-bound decrements / increments applied to cells.
    lb_decrements: int = 0
    lb_increments: int = 0
    #: bound adjustments suppressed because (unit, cell) was in DecHash.
    doo_suppressed: int = 0
    dechash_inserts: int = 0
    dechash_removes: int = 0
    #: cells darkened by BasicCTUP's step 4.
    cells_darkened: int = 0
    #: rows evaluated by the distance kernel (|places| x |units| work).
    distance_rows: int = 0
    #: maintained places touched by safety-adjustment scans.
    maintained_scans: int = 0
    #: wall-clock split of `process()`: steps 1-2 vs step 3(+4).
    time_maintain_s: float = 0.0
    time_access_s: float = 0.0
    time_init_s: float = 0.0
    #: high-water mark of the maintained-place table.
    maintained_peak: int = 0

    def total_update_time_s(self) -> float:
        """Wall-clock spent inside ``process`` (init excluded)."""
        return self.time_maintain_s + self.time_access_s

    def snapshot(self) -> "MonitorCounters":
        """An independent copy (bench harness diffs snapshots)."""
        return MonitorCounters(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    def __sub__(self, other: "MonitorCounters") -> "MonitorCounters":
        return MonitorCounters(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __add__(self, other: "MonitorCounters") -> "MonitorCounters":
        """Element-wise sum — aggregation across shard monitors.

        ``maintained_peak`` is a high-water mark, not a flow; summing the
        per-shard peaks is the peak simultaneous footprint bound (each
        shard's table peaks independently).
        """
        return MonitorCounters(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def restore(self, values: "MonitorCounters") -> None:
        """Overwrite every counter with ``values`` (checkpoint resume)."""
        for f in fields(self):
            setattr(self, f.name, getattr(values, f.name))

    @classmethod
    def from_dict(cls, values: dict[str, float]) -> "MonitorCounters":
        """Inverse of :meth:`as_dict` (checkpoint decoding).

        Fields absent from ``values`` keep their dataclass default, so
        snapshots written before a counter existed restore cleanly (the
        counter was necessarily 0 when they were taken).
        """
        return cls(
            **{f.name: values[f.name] for f in fields(cls) if f.name in values}
        )


@dataclass(slots=True)
class UpdateReport:
    """What one ``process()`` call (or one burst) did.

    ``unit_id`` identifies the moved unit for single-update reports and
    is ``None`` for batch reports — a burst has no single mover, and the
    old behaviour of reusing the last update's id was misleading.
    ``batch_size`` is the number of raw updates the report covers;
    ``coalesced_size`` how many unit transitions remained after burst
    coalescing (equal to ``batch_size`` when no unit moved twice).
    """

    sk: float
    unit_id: int | None = None
    cells_accessed: int = 0
    maintain_seconds: float = 0.0
    access_seconds: float = 0.0
    batch_size: int = 1
    coalesced_size: int = 1


@dataclass(slots=True)
class InitReport:
    """What ``initialize()`` did."""

    seconds: float
    cells_accessed: int
    places_loaded: int
    sk: float
    maintained_places: int = 0
    extra: dict = field(default_factory=dict)
