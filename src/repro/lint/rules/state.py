"""RPL008 — snapshot completeness (the universal state layer).

A class that declares ``STATE_FIELDS`` (directly or via a base) is part
of the :mod:`repro.state` snapshot protocol: ``export_state()`` captures
exactly the declared fields, and ``restore_state()`` rebuilds the
transient ones. Any *other* attribute such a class mutates after
``__init__`` is state the checkpoint silently drops — the resumed run
diverges from the uninterrupted one and the bit-identity guarantee is
gone. The fix is always a declaration: add the field to ``STATE_FIELDS``
(and export/restore it) if it must survive a crash, or to
``TRANSIENT_FIELDS`` if restore derives it from the snapshot.

The check is syntactic: every assignment target rooted at ``self.<attr>``
inside a non-``__init__`` method must name an attribute in the MRO union
of ``STATE_FIELDS`` and ``TRANSIENT_FIELDS`` (the same union
``repro.core.monitor.collect_declared_fields`` computes at runtime).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ProjectIndex, SourceFile
from repro.lint.registry import Violation, rule


@rule(
    "RPL008",
    "snapshot-completeness",
    "every attribute a Snapshottable class mutates outside __init__ is "
    "declared in STATE_FIELDS or TRANSIENT_FIELDS, so snapshots capture "
    "it and resumed runs stay bit-identical",
    project_dependent=True,
)
def check(source: SourceFile, project: ProjectIndex) -> Iterator[Violation]:
    if not source.in_packages("repro"):
        return
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not project.declares_state_fields(node.name):
            continue
        allowed = project.snapshot_field_union(node.name)
        yield from _check_class(source, node, allowed)


def _check_class(
    source: SourceFile, node: ast.ClassDef, allowed: frozenset[str]
) -> Iterator[Violation]:
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if item.name == "__init__":
            continue
        for inner in ast.walk(item):
            if isinstance(inner, ast.AugAssign):
                targets = [inner.target]
            elif isinstance(inner, ast.Assign):
                targets = list(inner.targets)
            elif isinstance(inner, ast.AnnAssign):
                targets = [inner.target]
            else:
                continue
            for target in targets:
                yield from _check_target(
                    source, node.name, item.name, target, allowed
                )


def _check_target(
    source: SourceFile,
    class_name: str,
    method: str,
    target: ast.expr,
    allowed: frozenset[str],
) -> Iterator[Violation]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _check_target(
                source, class_name, method, element, allowed
            )
        return
    root = _self_root(target)
    if root is None or root in allowed:
        return
    yield Violation(
        code="RPL008",
        message=(
            f"{class_name}.{method} mutates 'self.{root}', which is not "
            "declared in STATE_FIELDS or TRANSIENT_FIELDS — snapshots "
            "will silently drop it and a resumed run diverges; declare "
            "it (and export/restore it) or mark it transient"
        ),
        path=source.path,
        line=target.lineno,
        col=target.col_offset,
    )


def _self_root(target: ast.expr) -> str | None:
    """The attribute name a mutation reaches through ``self``, if any.

    ``self.a = x`` / ``self.a.b = x`` / ``self.a[k] = x`` all root at
    ``a``; targets not reached through ``self`` return ``None``.
    """
    node = target
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        parent = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(parent, ast.Name)
            and parent.id == "self"
        ):
            return node.attr
        node = parent
    return None
