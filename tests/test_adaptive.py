"""Runtime-adaptive Δ."""

import pytest

from repro.core import OptCTUP
from repro.core.adaptive import AdaptiveDeltaController
from tests.conftest import assert_valid_topk


@pytest.fixture
def monitor(small_config, small_places, small_units):
    m = OptCTUP(small_config, small_places, small_units)
    m.initialize()
    return m


class TestDeltaProperty:
    def test_starts_at_config_value(self, monitor, small_config):
        assert monitor.delta == small_config.delta

    def test_settable(self, monitor):
        monitor.delta = 9
        assert monitor.delta == 9.0

    def test_negative_rejected(self, monitor):
        with pytest.raises(ValueError):
            monitor.delta = -1

    def test_live_delta_changes_trim_band(
        self, small_config, small_places, small_units, small_stream
    ):
        wide = OptCTUP(small_config, small_places, small_units)
        wide.initialize()
        wide.delta = 12
        narrow = OptCTUP(small_config, small_places, small_units)
        narrow.initialize()
        narrow.delta = 0
        for update in small_stream:
            wide.process(update)
            narrow.process(update)
        assert (
            wide.counters.maintained_peak >= narrow.counters.maintained_peak
        )


class TestControllerValidation:
    def test_parameter_validation(self, monitor):
        with pytest.raises(ValueError):
            AdaptiveDeltaController(monitor, window=0)
        with pytest.raises(ValueError):
            AdaptiveDeltaController(monitor, delta_min=-1)
        with pytest.raises(ValueError):
            AdaptiveDeltaController(monitor, delta_min=5, delta_max=2)
        with pytest.raises(ValueError):
            AdaptiveDeltaController(monitor, step=0)


class TestAdaptation:
    def test_results_stay_valid_while_delta_moves(
        self, monitor, small_oracle, small_stream
    ):
        controller = AdaptiveDeltaController(
            monitor, window=25, access_target=0.05
        )
        for update in small_stream:
            small_oracle.apply(update)
            controller.process(update)
            assert_valid_topk(small_oracle, monitor, monitor.config.k)
        assert controller.history  # it did adapt

    def test_high_access_rate_raises_delta(self, monitor, small_stream):
        controller = AdaptiveDeltaController(
            monitor, window=25, access_target=0.0
        )
        start = monitor.delta
        controller.run_stream(small_stream)
        assert controller.current_delta > start

    def test_budget_pressure_lowers_delta(
        self, small_config, small_places, small_units, small_stream
    ):
        m = OptCTUP(
            small_config.replace(delta=10), small_places, small_units
        )
        m.initialize()
        controller = AdaptiveDeltaController(
            m,
            window=25,
            access_target=10.0,  # accesses never exceed this
            maintained_budget=1,  # any maintained place is "too many"
        )
        controller.run_stream(small_stream)
        assert controller.current_delta < 10

    def test_delta_respects_bounds(self, monitor, small_stream):
        controller = AdaptiveDeltaController(
            monitor,
            window=10,
            access_target=0.0,
            delta_max=7.0,
        )
        controller.run_stream(small_stream)
        assert controller.current_delta <= 7.0

    def test_history_records_windows(self, monitor, small_stream):
        controller = AdaptiveDeltaController(monitor, window=30)
        controller.run_stream(small_stream)
        assert len(controller.history) == len(small_stream) // 30
        for step in controller.history:
            assert step.at_update % 30 == 0
            assert step.accesses >= 0
