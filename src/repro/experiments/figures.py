"""Runners for Figures 3-9 and Table III.

Each runner rebuilds the paper's workload at (scaled) Table III sizes,
executes the algorithms the figure compares, and returns the figure's
series as a table. Absolute milliseconds differ from the paper's Java /
Pentium IV testbed; EXPERIMENTS.md tracks the *shapes* listed in each
experiment's ``expected_shape``.
"""

from __future__ import annotations

import time

from repro.bench.harness import RunResult, run_monitor
from repro.bench.workload import Workload, build_workload
from repro.core import BasicCTUP, NaiveCTUP, OptCTUP
from repro.experiments import defaults
from repro.experiments.registry import Experiment, ExperimentResult, register
from repro.model import Unit


def _scaled(scale: float | None) -> tuple[int, int, int]:
    """(n_places, comparison stream, sweep stream) at the given scale."""
    if scale is None:
        scale = defaults.bench_scale()
    n_places = max(500, int(defaults.N_PLACES * scale))
    comparison = max(50, int(defaults.STREAM_COMPARISON * scale))
    sweep_updates = max(50, int(defaults.STREAM_SWEEP * scale))
    return n_places, comparison, sweep_updates


def _speedup_note(slow: RunResult, fast: RunResult) -> str:
    if fast.avg_update_ms <= 0:
        return f"{fast.algorithm} update cost too small to time"
    factor = slow.avg_update_ms / fast.avg_update_ms
    return (
        f"{fast.algorithm} is {factor:.1f}x cheaper per update than "
        f"{slow.algorithm}"
    )


# -- Table III ---------------------------------------------------------------


def run_table3(**_ignored) -> ExperimentResult:
    """Print the default parameter values (Table III)."""
    rows = [[name, value] for name, value in defaults.TABLE3_DEFAULTS.items()]
    return ExperimentResult(
        experiment_id="table3",
        title="Default parameter values (Table III)",
        headers=["Parameter", "Default Value"],
        rows=rows,
        notes=["encoded in repro.experiments.defaults and CTUPConfig"],
    )


# -- Fig. 3: initialization time ---------------------------------------------


def run_fig3(scale: float | None = None, seed: int = 0) -> ExperimentResult:
    """Initialization time of the three schemes."""
    n_places, _, _ = _scaled(scale)
    workload = build_workload(
        n_units=defaults.N_UNITS,
        n_places=n_places,
        protection_range=defaults.PROTECTION_RANGE,
        stream_length=0,
        seed=seed,
    )
    config = defaults.default_config()
    rows = []
    timings = {}
    for factory in (NaiveCTUP, BasicCTUP, OptCTUP):
        monitor = factory(config, workload.places, workload.units)
        start = time.perf_counter()
        report = monitor.initialize()
        wall = time.perf_counter() - start
        timings[monitor.name] = wall
        rows.append(
            [
                monitor.name,
                wall * 1e3,
                report.cells_accessed,
                report.places_loaded,
                report.maintained_places,
            ]
        )
    notes = [
        "expected shape: naive fastest (no bound bookkeeping), "
        "basic slowest, opt in between",
        f"observed: naive {timings['naive'] * 1e3:.1f} ms, "
        f"basic {timings['basic'] * 1e3:.1f} ms, "
        f"opt {timings['opt'] * 1e3:.1f} ms",
    ]
    return ExperimentResult(
        experiment_id="fig3",
        title="Comparison of initialization time",
        headers=["algorithm", "init ms", "cells accessed", "places loaded", "maintained"],
        rows=rows,
        notes=notes,
    )


# -- Fig. 4: update cost ------------------------------------------------------


def run_fig4(scale: float | None = None, seed: int = 0) -> ExperimentResult:
    """Average per-update cost of the three schemes."""
    n_places, comparison, _ = _scaled(scale)
    workload = build_workload(
        n_units=defaults.N_UNITS,
        n_places=n_places,
        protection_range=defaults.PROTECTION_RANGE,
        stream_length=comparison,
        seed=seed,
    )
    config = defaults.default_config()
    results = {
        name: run_monitor(name, config, workload)
        for name in ("naive", "basic", "opt")
    }
    rows = [
        [
            name,
            r.avg_update_ms,
            r.update_counters.distance_rows / max(r.n_updates, 1),
            r.cells_per_update,
            r.counters.maintained_peak,
            r.n_updates,
        ]
        for name, r in results.items()
    ]
    notes = [
        "expected shape: opt << basic < naive (paper: opt wins by a large margin)",
        _speedup_note(results["naive"], results["opt"]),
        _speedup_note(results["basic"], results["opt"]),
        "the 'dist evals/upd' column is hardware-independent; vectorisation "
        "compresses the wall-clock gap that the paper's scalar loops show",
    ]
    return ExperimentResult(
        experiment_id="fig4",
        title="Comparison of update cost",
        headers=[
            "algorithm",
            "avg update ms",
            "dist evals/upd",
            "cells/update",
            "maintained peak",
            "updates",
        ],
        rows=rows,
        notes=notes,
    )


# -- Figs. 5-7: basic-vs-opt sweeps -------------------------------------------


def _run_basic_opt_sweep(
    experiment_id: str,
    title: str,
    x_name: str,
    x_values: list,
    point_workload,
    point_config,
    extra_notes: list[str] | None = None,
) -> ExperimentResult:
    """Shared machinery of Figures 5, 6 and 7."""
    rows = []
    worst_ratio = None
    for x in x_values:
        workload = point_workload(x)
        config = point_config(x)
        basic = run_monitor("basic", config, workload)
        opt = run_monitor("opt", config, workload)
        ratio = (
            basic.avg_update_ms / opt.avg_update_ms
            if opt.avg_update_ms > 0
            else float("nan")
        )
        worst_ratio = ratio if worst_ratio is None else min(worst_ratio, ratio)
        rows.append(
            [
                x,
                basic.avg_update_ms,
                opt.avg_update_ms,
                ratio,
                basic.cells_per_update,
                opt.cells_per_update,
            ]
        )
    notes = [
        "expected shape: opt below basic across the whole sweep "
        "(paper plots these in log scale)",
        f"observed: min basic/opt cost ratio across the sweep = "
        f"{worst_ratio:.2f}",
    ]
    notes.extend(extra_notes or [])
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=[
            x_name,
            "basic ms/upd",
            "opt ms/upd",
            "basic/opt",
            "basic cells/upd",
            "opt cells/upd",
        ],
        rows=rows,
        notes=notes,
    )


def run_fig5(scale: float | None = None, seed: int = 0) -> ExperimentResult:
    """Update cost varying k."""
    n_places, _, sweep_updates = _scaled(scale)
    workload = build_workload(
        n_units=defaults.N_UNITS,
        n_places=n_places,
        protection_range=defaults.PROTECTION_RANGE,
        stream_length=sweep_updates,
        seed=seed,
    )
    return _run_basic_opt_sweep(
        "fig5",
        "Update cost varying k",
        "k",
        [5, 10, 15, 20, 25],
        point_workload=lambda k: workload,
        point_config=lambda k: defaults.default_config(k=k),
    )


def run_fig6(scale: float | None = None, seed: int = 0) -> ExperimentResult:
    """Update cost varying the partition granularity."""
    n_places, _, sweep_updates = _scaled(scale)
    workload = build_workload(
        n_units=defaults.N_UNITS,
        n_places=n_places,
        protection_range=defaults.PROTECTION_RANGE,
        stream_length=sweep_updates,
        seed=seed,
    )
    return _run_basic_opt_sweep(
        "fig6",
        "Update cost varying partitioning granularity",
        "granularity",
        [5, 10, 15, 20, 25],
        point_workload=lambda g: workload,
        point_config=lambda g: defaults.default_config(granularity=g),
    )


def run_fig7(scale: float | None = None, seed: int = 0) -> ExperimentResult:
    """Update cost varying the protection range."""
    n_places, _, sweep_updates = _scaled(scale)
    base = build_workload(
        n_units=defaults.N_UNITS,
        n_places=n_places,
        protection_range=defaults.PROTECTION_RANGE,
        stream_length=sweep_updates,
        seed=seed,
    )

    def with_range(radius: float) -> Workload:
        units = [
            Unit(u.unit_id, u.location, radius) for u in base.units
        ]
        return Workload(base.places, units, base.stream)

    return _run_basic_opt_sweep(
        "fig7",
        "Update cost varying protection range",
        "range",
        [0.05, 0.1, 0.15, 0.2, 0.25],
        point_workload=with_range,
        point_config=lambda r: defaults.default_config(protection_range=r),
        extra_notes=[
            "the same movement stream is replayed for every range; only "
            "the protection disks change"
        ],
    )


# -- Fig. 8: the effect of DOO -------------------------------------------------


def run_fig8(scale: float | None = None, seed: int = 0) -> ExperimentResult:
    """OptCTUP with and without DOO, varying the number of places."""
    base_places, _, sweep_updates = _scaled(scale)
    factor = base_places / defaults.N_PLACES
    place_counts = [
        max(500, int(n * factor))
        for n in (5_000, 10_000, 15_000, 20_000, 25_000)
    ]
    rows = []
    worst_ratio = None
    for n_places in place_counts:
        workload = build_workload(
            n_units=defaults.N_UNITS,
            n_places=n_places,
            protection_range=defaults.PROTECTION_RANGE,
            stream_length=sweep_updates,
            seed=seed,
        )
        with_doo = run_monitor(
            "opt", defaults.default_config(use_doo=True), workload
        )
        without_doo = run_monitor(
            "opt-nodoo",
            defaults.default_config(use_doo=False),
            workload,
            factory=OptCTUP,
        )
        ratio = (
            without_doo.avg_update_ms / with_doo.avg_update_ms
            if with_doo.avg_update_ms > 0
            else float("nan")
        )
        worst_ratio = ratio if worst_ratio is None else min(worst_ratio, ratio)
        rows.append(
            [
                n_places,
                with_doo.avg_update_ms,
                without_doo.avg_update_ms,
                ratio,
                with_doo.cells_per_update,
                without_doo.cells_per_update,
            ]
        )
    notes = [
        "expected shape: DOO cheaper than no-DOO, gap growing with |P|",
        f"observed: min no-DOO/DOO cost ratio = {worst_ratio:.2f}",
    ]
    return ExperimentResult(
        experiment_id="fig8",
        title="Update cost varying the number of places (DOO on/off)",
        headers=[
            "|P|",
            "DOO ms/upd",
            "no-DOO ms/upd",
            "no-DOO/DOO",
            "DOO cells/upd",
            "no-DOO cells/upd",
        ],
        rows=rows,
        notes=notes,
    )


# -- Fig. 9: the effect of Δ ----------------------------------------------------


def run_fig9(scale: float | None = None, seed: int = 0) -> ExperimentResult:
    """OptCTUP update-cost breakdown varying Δ."""
    n_places, _, sweep_updates = _scaled(scale)
    workload = build_workload(
        n_units=defaults.N_UNITS,
        n_places=n_places,
        protection_range=defaults.PROTECTION_RANGE,
        stream_length=sweep_updates,
        seed=seed,
    )
    rows = []
    maintain_series = []
    access_series = []
    for delta in (0, 2, 4, 6, 8, 10):
        result = run_monitor(
            "opt", defaults.default_config(delta=delta), workload
        )
        maintain_series.append(result.avg_maintain_ms)
        access_series.append(result.avg_access_ms)
        rows.append(
            [
                delta,
                result.avg_update_ms,
                result.avg_maintain_ms,
                result.avg_access_ms,
                result.counters.maintained_peak,
                result.cells_per_update,
            ]
        )
    notes = [
        "expected shape: maintain cost grows with delta, cell-access "
        "cost shrinks with delta",
        f"observed: maintain ms {maintain_series[0]:.3f} -> "
        f"{maintain_series[-1]:.3f}, access ms {access_series[0]:.3f} -> "
        f"{access_series[-1]:.3f}",
    ]
    return ExperimentResult(
        experiment_id="fig9",
        title="Update cost split into maintain/access parts, varying delta",
        headers=[
            "delta",
            "total ms/upd",
            "maintain ms/upd",
            "access ms/upd",
            "maintained peak",
            "cells/upd",
        ],
        rows=rows,
        notes=notes,
    )


# -- registration ---------------------------------------------------------------

register(
    Experiment(
        "table3",
        "Default parameter values",
        "Table III",
        "table",
        "configuration constants, no measurement",
        run_table3,
    )
)
register(
    Experiment(
        "fig3",
        "Comparison of initialization time",
        "Fig. 3",
        "figure",
        "naive fastest, basic worst, opt between",
        run_fig3,
    )
)
register(
    Experiment(
        "fig4",
        "Comparison of update cost",
        "Fig. 4",
        "figure",
        "opt << basic < naive",
        run_fig4,
    )
)
register(
    Experiment(
        "fig5",
        "Update cost varying k",
        "Fig. 5",
        "figure",
        "opt below basic for every k",
        run_fig5,
    )
)
register(
    Experiment(
        "fig6",
        "Update cost varying partitioning granularity",
        "Fig. 6",
        "figure",
        "opt below basic for every granularity",
        run_fig6,
    )
)
register(
    Experiment(
        "fig7",
        "Update cost varying protection range",
        "Fig. 7",
        "figure",
        "opt below basic for every range",
        run_fig7,
    )
)
register(
    Experiment(
        "fig8",
        "Update cost varying number of places (DOO effect)",
        "Fig. 8",
        "figure",
        "DOO beats no-DOO, gap grows with |P|",
        run_fig8,
    )
)
register(
    Experiment(
        "fig9",
        "Update cost breakdown varying delta",
        "Fig. 9",
        "figure",
        "maintain cost rises, access cost falls as delta grows",
        run_fig9,
    )
)
