"""Sharded CTUP execution behind the ordinary monitor contract.

:class:`ShardedMonitor` splits the place set into S disjoint shards (by
grid cell, via a :class:`~repro.shard.plan.ShardPlan`), gives each shard
its own full monitor of any scheme, and recombines per-shard partial
top-k lists into the exact global answer with
:class:`~repro.shard.merge.GlobalTopK`. It implements the same
maintain/access phase API as every other scheme, so ``MonitorSession``,
``BatchProcessor``, hooks, audits and the bench timeline run on top of
it unchanged.

**Why this is exact.** A shard owns whole grid cells. For one unit move,
any cell outside the union of the old and new disks' candidate blocks
keeps the ``N`` relation to both disks: no place in it changes safety,
and no Table I/II bound action applies. The
:class:`~repro.shard.router.ShardRouter` therefore delivers the update
*fully* (maintain + access phases) only to shards owning a block cell;
every other shard receives a cheap **unit-position sync** so its
server-side unit tracking stays consistent (`UnitIndex.apply` validates
each update against the tracked old location, so every shard must see
every update — the question is only how much work it does). Deliveries
are queued per shard in arrival order and drained at the next access
phase, optionally on a thread pool (``parallelism=N``): shards share no
mutable state, per-shard work is identical either way, and the drain
results are reduced in shard-id order — so results *and* merged work
counters are deterministic and independent of thread scheduling.

Shard-local SK never undershoots global SK (a shard's k-th smallest over
a subset of the places is at least the global k-th smallest), which is
what makes the merger's floor bounds sound — see :mod:`repro.shard.merge`
for the refill rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

if TYPE_CHECKING:
    from concurrent.futures import ThreadPoolExecutor

from repro.core.config import CTUPConfig
from repro.core.metrics import InitReport, MonitorCounters
from repro.core.monitor import STATE_VERSION, CTUPMonitor
from repro.core.units import UnitKernelStats
from repro.model import (
    CoalescedMove,
    LocationUpdate,
    Place,
    SafetyRecord,
    Unit,
)
from repro.shard.merge import GlobalTopK, MergeStats
from repro.shard.plan import ShardPlan, plan_for
from repro.shard.router import ShardRouter
from repro.storage.iostats import IoStats


@dataclass
class _Shard:
    """One shard: its monitor plus the pending-delivery queue."""

    shard_id: int
    monitor: CTUPMonitor
    #: ``(delivery, full)`` pairs awaiting the next access phase — a
    #: single update or a whole coalesced chain; ``full=False`` means
    #: only the unit-position sync is needed.
    queue: list[tuple[LocationUpdate | CoalescedMove, bool]] = field(
        default_factory=list
    )


class ShardedMonitor(CTUPMonitor):
    """S shard monitors + router + global merger, one monitor contract."""

    name = "sharded"

    STATE_FIELDS = (
        "full_deliveries",
        "sync_deliveries",
        "plan",
        "scheme_name",
        "_retired_counters",
        "_retired_io",
        "_retired_units",
    )
    TRANSIENT_FIELDS = (
        "_merge_cache",
        "_pool",
        "_init_reports",
        "_factory",
        "_strategy",
        "_shards",
        "router",
        "merger",
    )

    def __init__(
        self,
        config: CTUPConfig,
        places: Sequence[Place],
        units: Iterable[Unit],
        *,
        shards: int | Sequence[int] | ShardPlan = 4,
        scheme: str | Callable = "opt",
        parallelism: int = 0,
        strategy: str = "striped",
    ) -> None:
        """``shards`` is a shard count, an explicit :class:`ShardPlan`,
        or a per-linear-cell shard-id sequence; ``scheme`` names the
        per-shard monitor (any ``repro.api.SCHEMES`` key) or is a
        factory ``(config, places, units) -> CTUPMonitor``;
        ``parallelism`` > 1 drains shard queues on a thread pool (the
        results are identical — shards share no state)."""
        # the top-level grid/store/units are the *global* view: routing,
        # audits and oracles read it; per-shard state lives below.
        super().__init__(config, places, units)
        self.plan = plan_for(self.grid, shards, strategy)
        self.router = ShardRouter(self.plan, config.protection_range)
        self.merger = GlobalTopK(config.k)
        self.parallelism = parallelism
        factory = scheme if callable(scheme) else self._resolve_scheme(scheme)
        self.scheme_name = getattr(
            factory, "name", getattr(factory, "__name__", "custom")
        )
        #: kept for reconfiguration: resharding and rebuilds construct
        #: fresh shard monitors through the same factory/placement.
        self._factory = factory
        self._strategy = strategy
        #: ledgers of shard monitors that no longer exist (replaced by a
        #: reshard or a control rebuild). Folding them into ``merged_*``
        #: keeps the merged work totals monotone across reconfigurations;
        #: the control wrapper may drive individual fields negative to
        #: keep the merged totals exactly neutral, which is fine — they
        #: are correction terms, not counters anyone reads directly.
        self._retired_counters = MonitorCounters()
        self._retired_io = IoStats()
        self._retired_units = UnitKernelStats()
        fleet = list(self.units)
        self._shards = tuple(
            _Shard(s, factory(config, shard_places, fleet))
            for s, shard_places in enumerate(self.plan.split_places(places))
        )
        #: routing outcome counters (full = maintain+access delivery).
        self.full_deliveries = 0
        self.sync_deliveries = 0
        self._init_reports: list[InitReport] = []
        self._merge_cache: list[SafetyRecord] | None = None
        self._pool = None

    @staticmethod
    def _resolve_scheme(scheme: str) -> Callable:
        from repro.api import SCHEMES

        try:
            return SCHEMES[scheme]
        except KeyError:
            raise ValueError(
                f"unknown scheme {scheme!r}; pick one of {sorted(SCHEMES)}"
            ) from None

    # -- the phase API ----------------------------------------------------

    def _build_initial_state(self) -> None:
        self._init_reports = [
            sh.monitor.initialize() for sh in self._shards
        ]

    def _init_report(self, elapsed: float) -> InitReport:
        return InitReport(
            seconds=elapsed,
            cells_accessed=sum(r.cells_accessed for r in self._init_reports),
            places_loaded=sum(r.places_loaded for r in self._init_reports),
            sk=self.sk(),
            maintained_places=self.maintained_count(),
        )

    def _apply(self, update: LocationUpdate) -> None:
        old = self.units.apply(update)
        targets = set(self.router.route(old, update.new_location))
        for sh in self._shards:
            sh.queue.append((update, sh.shard_id in targets))
        self.full_deliveries += len(targets)
        self.sync_deliveries += len(self._shards) - len(targets)
        self._merge_cache = None

    def _apply_burst(self, moves: Sequence[CoalescedMove]) -> int:
        """Route each chain once, on the *union* of its per-step targets.

        A shard outside every step's route keeps all its cells at ``N``
        across every waypoint transition of the chain — no safety
        change, no Table I/II action — so delivering the whole chain as
        one unit-position sync is exact. A shard inside the union gets
        the chain as one full delivery; its own burst maintain phase
        only ever emits actions for cells inside some step's candidate
        block (cells outside are ``N → N``, which no fold emits), so
        the per-shard state is bit-identical to per-update routing.
        Each step is still routed individually, keeping the router's
        fanout statistics on raw-update granularity;
        :attr:`full_deliveries` / :attr:`sync_deliveries`, by contrast,
        count *deliveries made*, which coalescing genuinely reduces.
        """
        skipped = 0
        for move in moves:
            old = self.units.apply_chain(move.raws)
            targets: set[int] = set()
            step_old = old
            for raw in move.raws:
                targets.update(self.router.route(step_old, raw.new_location))
                step_old = raw.new_location
            for sh in self._shards:
                sh.queue.append((move, sh.shard_id in targets))
            self.full_deliveries += len(targets)
            self.sync_deliveries += len(self._shards) - len(targets)
            skipped += move.raw_count - 1
        self._merge_cache = None
        return skipped

    def _refresh(self) -> int:
        busy = [sh for sh in self._shards if sh.queue]
        if self.parallelism > 1 and len(busy) > 1:
            # shards are fully independent; `map` preserves submission
            # order so the reduction is deterministic regardless of
            # thread scheduling.
            accessed = sum(self._executor().map(self._drain, busy))
        else:
            accessed = sum(self._drain(sh) for sh in busy)
        self._merge_cache = None
        return accessed

    def _drain(self, shard: _Shard) -> int:
        """Drain one shard, wrapped in an observability span when a
        bundle is attached (drains may run on pool threads; span
        emission is append-only and thread-safe)."""
        obs = self.obs
        if obs is None:
            return self._drain_queue(shard)
        with obs.tracer.span(
            "shard.drain",
            cat="shard",
            shard=shard.shard_id,
            queued=len(shard.queue),
        ):
            return self._drain_queue(shard)

    def _drain_queue(self, shard: _Shard) -> int:
        """Deliver a shard's queued deliveries (in arrival order) and
        run its access phase if any delivery was full.

        Consecutive *full* chain deliveries are re-batched into one
        ``apply_burst`` call on the shard monitor, so the per-shard
        vectorised kernels see the widest burst the queue allows. The
        batch is flushed at every ordering boundary — a sync delivery,
        a plain update, or a second chain for a unit already in the
        batch (possible when several top-level bursts are queued before
        one access phase) — which preserves arrival order exactly.
        """
        dirty = False
        burst: list[CoalescedMove] = []
        burst_units: set[int] = set()

        def flush() -> None:
            if burst:
                # reprolint: disable=RPL014 -- deliberate phase crossing: the sharded design defers per-shard maintain work into the drain that runs at refresh time; the shard monitor's own phase ledger still bills it as maintain
                shard.monitor.apply_burst(burst)
                burst.clear()
                burst_units.clear()

        for delivery, full in shard.queue:
            if isinstance(delivery, CoalescedMove):
                if full:
                    if delivery.unit_id in burst_units:
                        flush()
                    burst.append(delivery)
                    burst_units.add(delivery.unit_id)
                    dirty = True
                else:
                    flush()
                    shard.monitor.units.apply_chain(delivery.raws)
            elif full:
                flush()
                # reprolint: disable=RPL014 -- deliberate phase crossing: queued deliveries are maintain work the sharded scheme replays inside its access-phase drain (same contract as the burst flush above)
                shard.monitor.apply_update(delivery)
                dirty = True
            else:
                flush()
                shard.monitor.units.apply(delivery)
        flush()
        shard.queue.clear()
        return shard.monitor.refresh() if dirty else 0

    # -- results ----------------------------------------------------------

    def _merged(self) -> list[SafetyRecord]:
        if self._merge_cache is None:
            obs = self.obs
            if obs is None:
                self._merge_cache = self.merger.merge(
                    [sh.monitor for sh in self._shards]
                )
            else:
                with obs.tracer.span(
                    "topk.merge", cat="shard", shards=len(self._shards)
                ):
                    self._merge_cache = self.merger.merge(
                        [sh.monitor for sh in self._shards]
                    )
        return self._merge_cache

    def top_k(self) -> list[SafetyRecord]:
        return list(self._merged())

    def sk(self) -> float:
        if self.config.k <= 0:
            return -math.inf
        merged = self._merged()
        if len(merged) < self.config.k:
            return math.inf
        return merged[-1].safety

    def maintained_count(self) -> int:
        return sum(sh.monitor.maintained_count() for sh in self._shards)

    # -- aggregation across shards ---------------------------------------

    @property
    def shards(self) -> tuple[_Shard, ...]:
        """The shards (id, monitor, pending queue), ascending id."""
        return self._shards

    def merged_counters(self) -> MonitorCounters:
        """Work counters summed over all shard monitors.

        The top-level :attr:`counters` only track the stream totals the
        base class records (updates processed, wall-time split); the
        actual monitoring work — cell accesses, bound adjustments,
        distance rows — happens inside the shard monitors and is
        aggregated here.
        """
        return self._child_counters() + self._retired_counters

    def merged_io(self) -> IoStats:
        """Page-level I/O summed over all shard stores."""
        return self._child_io() + self._retired_io

    def merged_unit_stats(self) -> UnitKernelStats:
        """Reachability-prefilter work summed over all shard indexes."""
        return self._child_units() + self._retired_units

    def _child_counters(self) -> MonitorCounters:
        total = MonitorCounters()
        for sh in self._shards:
            total = total + sh.monitor.counters
        return total

    def _child_io(self) -> IoStats:
        total = IoStats()
        for sh in self._shards:
            total = total + sh.monitor.store.io_stats
        return total

    def _child_units(self) -> UnitKernelStats:
        total = UnitKernelStats()
        for sh in self._shards:
            total = total + sh.monitor.units.stats
        return total

    # -- checkpointing ----------------------------------------------------
    #
    # A sharded snapshot is a *consistent cut*: it is only legal at a
    # batch boundary, when every shard's delivery queue has been drained
    # — so the per-shard child snapshots and the global routing counters
    # all describe the same prefix of the update stream.

    def _export_scheme_state(self) -> dict[str, Any]:
        if any(sh.queue for sh in self._shards):
            raise ValueError(
                "cannot snapshot with pending shard deliveries; "
                "flush the batch first (consistent-cut rule)"
            )
        return {
            "plan": self.plan.assignment_list(),
            "scheme_name": self.scheme_name,
            "full_deliveries": self.full_deliveries,
            "sync_deliveries": self.sync_deliveries,
            "merge_stats": {
                "merges": self.merger.stats.merges,
                "shards_queried": self.merger.stats.shards_queried,
                "refills": self.merger.stats.refills,
                "records_pulled": self.merger.stats.records_pulled,
            },
            "retired": {
                "counters": self._retired_counters.as_dict(),
                "io": {
                    "page_reads": self._retired_io.page_reads,
                    "buffered_reads": self._retired_io.buffered_reads,
                    "page_writes": self._retired_io.page_writes,
                    "array_hits": self._retired_io.array_hits,
                },
                "units": {
                    "queries": self._retired_units.queries,
                    "candidate_units": self._retired_units.candidate_units,
                    "reachable_units": self._retired_units.reachable_units,
                    "coalesced_updates": self._retired_units.coalesced_updates,
                },
            },
            "shards": [sh.monitor.export_state() for sh in self._shards],
        }

    def _restore_scheme_state(self, fields: Mapping[str, Any]) -> None:
        if [int(s) for s in fields["plan"]] != self.plan.assignment_list():
            raise ValueError(
                "snapshot shard plan does not match the constructed monitor"
            )
        if fields["scheme_name"] != self.scheme_name:
            raise ValueError(
                "snapshot per-shard scheme does not match the constructed "
                "monitor"
            )
        children = fields["shards"]
        if len(children) != len(self._shards):
            raise ValueError("snapshot shard count mismatch")
        for sh, child_state in zip(self._shards, children):
            sh.monitor.restore_state(child_state)
            sh.queue.clear()
        self.full_deliveries = int(fields["full_deliveries"])
        self.sync_deliveries = int(fields["sync_deliveries"])
        self.merger.stats.restore(MergeStats(**fields["merge_stats"]))
        self._restore_retired(fields)
        self._merge_cache = None

    def _restore_retired(self, fields: Mapping[str, Any]) -> None:
        # snapshots from before the control plane carry no retired
        # ledgers; zeros are exactly right for them.
        retired = fields.get("retired")
        if retired is None:
            self._retired_counters = MonitorCounters()
            self._retired_io = IoStats()
            self._retired_units = UnitKernelStats()
        else:
            self._retired_counters = MonitorCounters.from_dict(
                retired["counters"]
            )
            self._retired_io = IoStats(**retired["io"])
            self._retired_units = UnitKernelStats(**retired["units"])

    def restore_counter_state(self, state: Mapping[str, Any]) -> None:
        # the priming read after a resume re-runs the global merge, which
        # queries shard monitors (their lazy place fetches touch shard
        # storage) and bumps the merger's counters — re-pin those too.
        fields = state["scheme_state"]
        for sh, child_state in zip(self._shards, fields["shards"]):
            sh.monitor.restore_counter_state(child_state)
        self.merger.stats.restore(MergeStats(**fields["merge_stats"]))
        self._restore_retired(fields)
        super().restore_counter_state(state)

    # -- reconfiguration (repro.control) ----------------------------------

    def _control_work_snapshot(self) -> dict[str, Any]:
        token = super()._control_work_snapshot()
        token["merged_counters"] = self.merged_counters()
        token["merged_io"] = self.merged_io()
        token["merged_units"] = self.merged_unit_stats()
        token["merge_stats"] = MergeStats(
            self.merger.stats.merges,
            self.merger.stats.shards_queried,
            self.merger.stats.refills,
            self.merger.stats.records_pulled,
        )
        return token

    def _control_work_restore(self, token: Mapping[str, Any]) -> None:
        super()._control_work_restore(token)
        # make the *merged* ledgers exactly neutral, whatever happened to
        # the children (incremental patches, rebuilds, a full reshard):
        # retired = saved merged totals - what the current children hold.
        self._retired_counters = token["merged_counters"] - self._child_counters()
        self._retired_io = token["merged_io"] - self._child_io()
        self._retired_units = token["merged_units"] - self._child_units()
        self.merger.stats.restore(token["merge_stats"])

    def _reset_scheme_state(self) -> None:
        """Rebuild fallback: fresh shard monitors over the current world.

        The plan is recomputed when the grid changed under it (a grid
        retune); otherwise the current plan is kept — resharding swaps
        the plan *before* requesting a rebuild.
        """
        if self.plan.grid is not self.grid:
            self.plan = plan_for(self.grid, self.plan.n_shards, self._strategy)
        self.router = ShardRouter(self.plan, self.config.protection_range)
        merger = GlobalTopK(self.config.k, self.merger.initial_request)
        merger.stats.restore(self.merger.stats)
        self.merger = merger
        self.close()
        fleet = list(self.units)
        places = self.store.peek_all_places()
        self._shards = tuple(
            _Shard(s, self._factory(self.config, shard_places, fleet))
            for s, shard_places in enumerate(self.plan.split_places(places))
        )
        self._init_reports = []
        self._merge_cache = None

    def _route_place_event(self, event: Any, cell: Any) -> bool:
        """Deliver an (already globally applied) place event to the one
        shard monitor owning the place's cell."""
        # local import: repro.control sits above repro.shard.
        from repro.control.apply import apply_control

        shard = self.plan.shard_of_cell(cell)
        apply_control(self._shards[shard].monitor, event, mode="incremental")
        self._merge_cache = None
        return True

    def _control_place_added(self, place: Place, cell: Any) -> bool:
        from repro.control.events import PlaceAdded

        return self._route_place_event(PlaceAdded(place), cell)

    def _control_place_removed(self, place: Place, cell: Any) -> bool:
        from repro.control.events import PlaceRemoved

        return self._route_place_event(PlaceRemoved(place.place_id), cell)

    def _control_place_reweighted(
        self, old: Place, new: Place, cell: Any
    ) -> bool:
        from repro.control.events import PlaceReweighted

        return self._route_place_event(
            PlaceReweighted(new.place_id, new.required_protection), cell
        )

    def _control_k_changed(self) -> bool:
        from repro.control.apply import apply_control
        from repro.control.events import KChanged

        for sh in self._shards:
            apply_control(
                sh.monitor, KChanged(self.config.k), mode="incremental"
            )
        merger = GlobalTopK(self.config.k, self.merger.initial_request)
        merger.stats.restore(self.merger.stats)
        self.merger = merger
        self._merge_cache = None
        return True

    def _control_reshard(
        self, shards: int, strategy: str, incremental: bool
    ) -> bool:
        """Online resharding: swap the plan, migrate per-cell state.

        For the grid-bound schemes (basic/opt) the per-shard state is
        keyed by cell, so moving a cell between shards means moving its
        ``CellState`` row and its maintained-place rows verbatim — the
        migration below does exactly that through the snapshot codecs,
        then restores fresh shard monitors from the synthesized
        documents. DecHash pairs are *not* migrated: an empty DecHash
        only re-arms one decrease per (unit, cell), which keeps bounds
        sound and matches what a from-scratch rebuild produces. Other
        schemes (and ``mode="rebuild"``) fall back to fresh shard
        monitors initialized over the new plan.
        """
        if any(sh.queue for sh in self._shards):
            raise ValueError(
                "cannot reshard with pending shard deliveries; "
                "flush the batch first (consistent-cut rule)"
            )
        new_plan = plan_for(self.grid, shards, strategy)
        self._strategy = strategy
        if not incremental or self.scheme_name not in ("basic", "opt"):
            self.plan = new_plan
            return False
        old_docs = [sh.monitor.export_state() for sh in self._shards]
        units_rows = old_docs[0]["units"]
        cell_rows: list[list[Any]] = [[] for _ in range(new_plan.n_shards)]
        maint_rows: list[list[Any]] = [[] for _ in range(new_plan.n_shards)]
        for doc in old_docs:
            scheme_state = doc["scheme_state"]
            for row in scheme_state["cell_states"]:
                cell = self.grid.from_linear(int(row[0]))
                cell_rows[new_plan.shard_of_cell(cell)].append(row)
            for row in scheme_state["maintained"]:
                cell = self.grid.from_linear(int(row[2]))
                maint_rows[new_plan.shard_of_cell(cell)].append(row)
        docs = []
        for s in range(new_plan.n_shards):
            scheme_state: dict[str, Any] = {
                "cell_states": cell_rows[s],
                "maintained": maint_rows[s],
            }
            if self.scheme_name == "opt":
                scheme_state["dechash"] = []
                scheme_state["delta"] = old_docs[0]["scheme_state"]["delta"]
            docs.append(
                {
                    "state_version": STATE_VERSION,
                    "scheme": self.scheme_name,
                    "units": units_rows,
                    "unit_stats": {
                        "queries": 0,
                        "candidate_units": 0,
                        "reachable_units": 0,
                        "coalesced_updates": 0,
                    },
                    "io": {
                        "page_reads": 0,
                        "buffered_reads": 0,
                        "page_writes": 0,
                        "array_hits": 0,
                    },
                    "store_cache": {
                        "arrays": [],
                        "frames": [],
                        "buffer_hits": 0,
                        "buffer_misses": 0,
                    },
                    "counters": MonitorCounters().as_dict(),
                    "epoch": 0,
                    "scheme_state": scheme_state,
                }
            )
        self.close()
        fleet = list(self.units)
        places = self.store.peek_all_places()
        children = [
            self._factory(self.config, shard_places, fleet)
            for shard_places in new_plan.split_places(places)
        ]
        for child, doc in zip(children, docs):
            child.restore_state(doc)
        self.plan = new_plan
        self.router = ShardRouter(new_plan, self.config.protection_range)
        self._shards = tuple(
            _Shard(s, child) for s, child in enumerate(children)
        )
        self._merge_cache = None
        return True

    # -- executor lifecycle ----------------------------------------------

    def _executor(self) -> "ThreadPoolExecutor":
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=min(self.parallelism, len(self._shards)),
                thread_name_prefix="ctup-shard",
            )
        return self._pool

    def close(self) -> None:
        """Shut down the drain thread pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardedMonitor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
