"""Table III — the default configuration, archived for the record."""

from repro.experiments import get_experiment


def test_table3_defaults(benchmark, record_result):
    result = benchmark.pedantic(
        get_experiment("table3").run, rounds=1, iterations=1
    )
    record_result(result)
    values = dict((row[0], row[1]) for row in result.rows)
    assert values["Number of units (|U|)"] == 150
    assert values["Number of places (|P|)"] == 15_000
    assert values["Number of TUPs (k)"] == 15
    assert values["Adjustable Parameter (delta)"] == 6
    assert values["Unit Protection Range"] == 0.1
    assert values["Partition Granularity"] == 10
