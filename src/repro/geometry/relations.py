"""Circle-versus-rectangle classification.

Both CTUP schemes maintain per-cell safety lower bounds by looking at how
a unit's protection disk relates to each grid cell, *before* and *after*
a location update. Tables I and II of the paper are keyed on exactly
three relations:

* ``N`` — the disk and the cell do not intersect;
* ``P`` — they partially intersect;
* ``F`` — the disk fully contains the cell.

The relations are defined on the closed disk and the closed rectangle,
consistent with Definition 1 (a place on the boundary is protected).
"""

from __future__ import annotations

import enum

from repro.geometry.circle import Circle
from repro.geometry.distance import point_rect_distance, point_rect_max_distance
from repro.geometry.rect import Rect


class CellRelation(enum.Enum):
    """How a protection disk relates to a grid cell."""

    NO_INTERSECT = "N"
    PARTIAL = "P"
    FULL = "F"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def classify_circle_rect(circle: Circle, rect: Rect) -> CellRelation:
    """Classify ``circle`` against ``rect`` as N, P or F.

    * F when the farthest rectangle corner is within the disk;
    * N when the nearest rectangle point is outside the disk;
    * P otherwise.

    The F test is checked first: for a degenerate (point) rectangle the
    minimum and maximum distances coincide and containment must win over
    mere intersection.
    """
    if point_rect_max_distance(circle.center, rect) <= circle.radius:
        return CellRelation.FULL
    if point_rect_distance(circle.center, rect) > circle.radius:
        return CellRelation.NO_INTERSECT
    return CellRelation.PARTIAL
