"""Circles — the protection disks of Definition 1.

A unit ``u`` protects a place ``p`` when ``p`` lies in the *closed* disk
of radius ``R`` centred on ``u``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True, slots=True)
class Circle:
    """A closed disk ``{q : |q - center| <= radius}``."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError(f"negative radius: {self.radius}")

    def contains_point(self, p: Point) -> bool:
        """Whether ``p`` is inside the closed disk."""
        return self.center.squared_distance_to(p) <= self.radius * self.radius

    def contains_rect(self, rect: Rect) -> bool:
        """Whether the disk fully contains the rectangle.

        True iff the farthest rectangle corner lies within the disk —
        the F (fully-contains) relation of Tables I/II.
        """
        r2 = self.radius * self.radius
        return all(
            self.center.squared_distance_to(c) <= r2 for c in rect.corners()
        )

    def intersects_rect(self, rect: Rect) -> bool:
        """Whether the disk and the rectangle share at least one point."""
        nearest = rect.clamp_point(self.center)
        return self.contains_point(nearest)

    def bounding_rect(self) -> Rect:
        """The axis-aligned bounding rectangle of the disk."""
        return Rect(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )

    def moved_to(self, center: Point) -> "Circle":
        """The same disk re-centred — a unit's disk after a location update."""
        return Circle(center, self.radius)
