"""Intraprocedural control-flow graphs over ``ast`` function bodies.

One :class:`Block` per simple statement (plus synthetic entry / exit /
test / join blocks), so transfer functions in
:mod:`repro.lint.flow.dataflow` operate statement-at-a-time and
exception edges are precise: an edge into a handler leaves from the
*individual statement* that may raise, carrying the state from before
that statement completed.

Modelled control flow:

* ``if`` / ``while`` / ``for`` (with ``else`` clauses, ``break`` /
  ``continue``, and explicit ``loop`` back-edges);
* ``return`` / ``raise`` (terminating edges into the single exit block,
  tagged ``return`` vs ``raise`` so rules can reason about normal
  completions separately from propagating exceptions);
* ``try`` / ``except`` / ``else`` / ``finally`` — every statement
  lexically inside a ``try`` body gets an ``exception`` edge to each of
  its handlers (any statement is conservatively assumed able to raise),
  and abnormal exits re-lower a fresh copy of each enclosing
  ``finally`` body on their way out, so a ``return`` inside ``try``
  cannot leak back onto the fall-through path;
* ``with`` — the context expression is a block of its own, and every
  block records the stack of ``with`` items lexically active at its
  creation (:attr:`Block.withitems`), which is what the lock-discipline
  rule reads.

Deliberate simplifications, fine at linter granularity: exception
edges target only the *innermost* enclosing handler set (an exception
an inner handler re-raises is not tracked into outer handlers), and a
``with`` block's ``__exit__`` is assumed not to swallow exceptions.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator, Sequence

#: edge kinds (a closed set; rules switch on these).
EDGE_NORMAL = "normal"
EDGE_TRUE = "true"
EDGE_FALSE = "false"
EDGE_LOOP = "loop"
EDGE_EXCEPTION = "exception"
EDGE_RETURN = "return"
EDGE_RAISE = "raise"
EDGE_FALLTHROUGH = "fallthrough"

#: edge kinds that terminate into the exit block without an exception
#: propagating — "the function completed normally along this path".
NORMAL_EXIT_KINDS = frozenset({EDGE_RETURN, EDGE_FALLTHROUGH})


@dataclasses.dataclass(frozen=True, slots=True)
class Edge:
    """One directed control-flow edge."""

    src: int
    dst: int
    kind: str


@dataclasses.dataclass(frozen=True, slots=True)
class Block:
    """One CFG node.

    ``node`` is the simple statement the block executes, the test
    expression of a branch/loop header, or the ``ast.ExceptHandler``
    for a handler entry; synthetic blocks (entry, exit, joins) carry
    ``None``. ``withitems`` is the stack of ``with`` items lexically
    active where the block was created, outermost first.
    """

    block_id: int
    label: str
    node: ast.AST | None
    withitems: tuple[ast.withitem, ...] = ()

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 0)


class CFG:
    """The control-flow graph of one function body."""

    def __init__(self, name: str, line: int) -> None:
        self.name = name
        self.line = line
        self.blocks: dict[int, Block] = {}
        self.entry: int = -1
        self.exit: int = -1
        self._succ: dict[int, list[Edge]] = {}
        self._pred: dict[int, list[Edge]] = {}

    def successors(self, block_id: int) -> Sequence[Edge]:
        return self._succ.get(block_id, ())

    def predecessors(self, block_id: int) -> Sequence[Edge]:
        return self._pred.get(block_id, ())

    def statement_blocks(self) -> Iterator[Block]:
        """Blocks carrying a real statement (label ``stmt``), id order."""
        for block_id in sorted(self.blocks):
            block = self.blocks[block_id]
            if block.label == "stmt":
                yield block

    def exit_edges(self) -> Sequence[Edge]:
        """Every edge into the exit block."""
        return self._pred.get(self.exit, ())

    # -- construction (used by the builder only) -------------------------

    def _add_block(self, block: Block) -> None:
        self.blocks[block.block_id] = block

    def _add_edge(self, src: int, dst: int, kind: str) -> None:
        edge = Edge(src, dst, kind)
        self._succ.setdefault(src, []).append(edge)
        self._pred.setdefault(dst, []).append(edge)


@dataclasses.dataclass(frozen=True)
class _Context:
    """Lowering context threaded through the recursive builder."""

    #: handler-entry block ids of the innermost enclosing ``try``.
    handlers: tuple[int, ...] = ()
    #: ``finally`` bodies of enclosing ``try`` statements, innermost
    #: last, paired with the handler context they were declared under.
    finallies: tuple[tuple[ast.stmt, ...], ...] = ()
    #: (break target, continue target, finally-depth at loop entry).
    loop: tuple[int, int, int] | None = None
    #: ``with`` items lexically active, outermost first.
    withitems: tuple[ast.withitem, ...] = ()


class _Builder:
    """Lowers one function body into a :class:`CFG`."""

    def __init__(self, name: str, line: int) -> None:
        self.cfg = CFG(name, line)
        self._next_id = 0

    def _block(
        self,
        label: str,
        node: ast.AST | None,
        ctx: _Context,
    ) -> int:
        block_id = self._next_id
        self._next_id += 1
        self.cfg._add_block(
            Block(block_id, label, node, withitems=ctx.withitems)
        )
        return block_id

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        ctx = _Context()
        self.cfg.entry = self._block("entry", None, ctx)
        self.cfg.exit = self._block("exit", None, ctx)
        end = self._lower_body(body, self.cfg.entry, ctx)
        if end is not None:
            self.cfg._add_edge(end, self.cfg.exit, EDGE_FALLTHROUGH)
        return self.cfg

    # -- body / statement lowering ---------------------------------------

    def _lower_body(
        self,
        body: Sequence[ast.stmt],
        cursor: int | None,
        ctx: _Context,
    ) -> int | None:
        """Lower a statement list; returns the open block flow leaves
        through, or ``None`` when every path terminated."""
        for stmt in body:
            if cursor is None:
                break  # unreachable code after return/raise/break
            cursor = self._lower_stmt(stmt, cursor, ctx)
        return cursor

    def _lower_stmt(
        self, stmt: ast.stmt, cursor: int, ctx: _Context
    ) -> int | None:
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt, cursor, ctx)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._lower_loop(stmt, cursor, ctx)
        if isinstance(stmt, ast.Try):
            return self._lower_try(stmt, cursor, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._lower_with(stmt, cursor, ctx)
        if isinstance(stmt, ast.Return):
            return self._lower_terminator(stmt, cursor, ctx, EDGE_RETURN)
        if isinstance(stmt, ast.Raise):
            return self._lower_raise(stmt, cursor, ctx)
        if isinstance(stmt, ast.Break):
            return self._lower_break(stmt, cursor, ctx, is_break=True)
        if isinstance(stmt, ast.Continue):
            return self._lower_break(stmt, cursor, ctx, is_break=False)
        # simple statement (incl. nested defs/classes, treated opaquely).
        block = self._block("stmt", stmt, ctx)
        self.cfg._add_edge(cursor, block, EDGE_NORMAL)
        self._exception_edges(block, ctx)
        return block

    def _exception_edges(self, block_id: int, ctx: _Context) -> None:
        """Any statement may raise: wire it to the innermost handlers."""
        for handler_entry in ctx.handlers:
            self.cfg._add_edge(block_id, handler_entry, EDGE_EXCEPTION)

    # -- structured statements -------------------------------------------

    def _lower_if(self, stmt: ast.If, cursor: int, ctx: _Context) -> int | None:
        test = self._block("test", stmt.test, ctx)
        self.cfg._add_edge(cursor, test, EDGE_NORMAL)
        self._exception_edges(test, ctx)
        join = self._block("join", None, ctx)
        then_entry = self._block("join", None, ctx)
        self.cfg._add_edge(test, then_entry, EDGE_TRUE)
        then_end = self._lower_body(stmt.body, then_entry, ctx)
        if then_end is not None:
            self.cfg._add_edge(then_end, join, EDGE_NORMAL)
        if stmt.orelse:
            else_entry = self._block("join", None, ctx)
            self.cfg._add_edge(test, else_entry, EDGE_FALSE)
            else_end = self._lower_body(stmt.orelse, else_entry, ctx)
            if else_end is not None:
                self.cfg._add_edge(else_end, join, EDGE_NORMAL)
        else:
            self.cfg._add_edge(test, join, EDGE_FALSE)
        if not self.cfg.predecessors(join):
            return None  # both branches terminated
        return join

    def _lower_loop(
        self,
        stmt: ast.While | ast.For | ast.AsyncFor,
        cursor: int,
        ctx: _Context,
    ) -> int | None:
        # For loops the header carries the whole statement so the loop
        # target's binding is visible to dataflow (dataflow._assigned_names
        # / _read_names special-case it to iter/target only).
        header_node: ast.AST = stmt.test if isinstance(stmt, ast.While) else stmt
        header = self._block("test", header_node, ctx)
        self.cfg._add_edge(cursor, header, EDGE_NORMAL)
        self._exception_edges(header, ctx)
        after = self._block("join", None, ctx)
        body_entry = self._block("join", None, ctx)
        self.cfg._add_edge(header, body_entry, EDGE_TRUE)
        loop_ctx = dataclasses.replace(
            ctx, loop=(after, header, len(ctx.finallies))
        )
        body_end = self._lower_body(stmt.body, body_entry, loop_ctx)
        if body_end is not None:
            self.cfg._add_edge(body_end, header, EDGE_LOOP)
        if stmt.orelse:
            else_entry = self._block("join", None, ctx)
            self.cfg._add_edge(header, else_entry, EDGE_FALSE)
            else_end = self._lower_body(stmt.orelse, else_entry, ctx)
            if else_end is not None:
                self.cfg._add_edge(else_end, after, EDGE_NORMAL)
        else:
            self.cfg._add_edge(header, after, EDGE_FALSE)
        if not self.cfg.predecessors(after):
            return None
        return after

    def _lower_with(
        self,
        stmt: ast.With | ast.AsyncWith,
        cursor: int,
        ctx: _Context,
    ) -> int | None:
        enter = self._block("stmt", stmt, ctx)
        self.cfg._add_edge(cursor, enter, EDGE_NORMAL)
        self._exception_edges(enter, ctx)
        inner_ctx = dataclasses.replace(
            ctx, withitems=ctx.withitems + tuple(stmt.items)
        )
        body_end = self._lower_body(stmt.body, enter, inner_ctx)
        if body_end is None:
            return None
        leave = self._block("join", None, ctx)
        self.cfg._add_edge(body_end, leave, EDGE_NORMAL)
        return leave

    def _lower_try(self, stmt: ast.Try, cursor: int, ctx: _Context) -> int | None:
        after = self._block("join", None, ctx)
        handler_entries: list[int] = []
        for handler in stmt.handlers:
            handler_entries.append(self._block("except", handler, ctx))
        body_ctx = dataclasses.replace(ctx, handlers=tuple(handler_entries))
        if stmt.finalbody:
            body_ctx = dataclasses.replace(
                body_ctx, finallies=ctx.finallies + (tuple(stmt.finalbody),)
            )
            handler_ctx = dataclasses.replace(
                ctx, finallies=ctx.finallies + (tuple(stmt.finalbody),)
            )
        else:
            handler_ctx = ctx

        def continue_after(end: int | None) -> None:
            """Route a completed region through the finally, then on."""
            if end is None:
                return
            if stmt.finalbody:
                end = self._lower_body(list(stmt.finalbody), end, ctx)
                if end is None:
                    return
            self.cfg._add_edge(end, after, EDGE_NORMAL)

        body_entry = self._block("join", None, ctx)
        self.cfg._add_edge(cursor, body_entry, EDGE_NORMAL)
        body_end = self._lower_body(stmt.body, body_entry, body_ctx)
        if stmt.orelse and body_end is not None:
            body_end = self._lower_body(stmt.orelse, body_end, body_ctx)
        continue_after(body_end)
        for entry_id, handler in zip(handler_entries, stmt.handlers):
            handler_end = self._lower_body(handler.body, entry_id, handler_ctx)
            continue_after(handler_end)
        if not stmt.handlers and stmt.finalbody:
            # try/finally with no except: an exception in the body runs
            # the finally and propagates. Model the propagating path.
            propagate = self._lower_body(
                list(stmt.finalbody), body_entry, ctx
            )
            if propagate is not None:
                self.cfg._add_edge(propagate, self.cfg.exit, EDGE_RAISE)
        if not self.cfg.predecessors(after):
            return None
        return after

    # -- terminators ------------------------------------------------------

    def _unwind_finallies(
        self, cursor: int, ctx: _Context, depth: int
    ) -> int | None:
        """Lower fresh copies of enclosing ``finally`` bodies (innermost
        first) down to ``depth``, returning the new open block."""
        open_block: int | None = cursor
        for finalbody in reversed(ctx.finallies[depth:]):
            if open_block is None:
                return None
            # the finally body runs outside the protected region, so a
            # bare context (no handlers) is the right lowering context.
            open_block = self._lower_body(
                list(finalbody),
                open_block,
                dataclasses.replace(ctx, handlers=(), finallies=()),
            )
        return open_block

    def _lower_terminator(
        self, stmt: ast.stmt, cursor: int, ctx: _Context, kind: str
    ) -> None:
        block = self._block("stmt", stmt, ctx)
        self.cfg._add_edge(cursor, block, EDGE_NORMAL)
        self._exception_edges(block, ctx)
        open_block = self._unwind_finallies(block, ctx, 0)
        if open_block is not None:
            self.cfg._add_edge(open_block, self.cfg.exit, kind)
        return None

    def _lower_raise(self, stmt: ast.Raise, cursor: int, ctx: _Context) -> None:
        block = self._block("stmt", stmt, ctx)
        self.cfg._add_edge(cursor, block, EDGE_NORMAL)
        if ctx.handlers:
            self._exception_edges(block, ctx)
            return None
        open_block = self._unwind_finallies(block, ctx, 0)
        if open_block is not None:
            self.cfg._add_edge(open_block, self.cfg.exit, EDGE_RAISE)
        return None

    def _lower_break(
        self, stmt: ast.stmt, cursor: int, ctx: _Context, *, is_break: bool
    ) -> None:
        block = self._block("stmt", stmt, ctx)
        self.cfg._add_edge(cursor, block, EDGE_NORMAL)
        self._exception_edges(block, ctx)
        if ctx.loop is None:
            return None  # syntactically invalid; be forgiving
        break_to, continue_to, loop_depth = ctx.loop
        open_block = self._unwind_finallies(block, ctx, loop_depth)
        if open_block is not None:
            target = break_to if is_break else continue_to
            kind = EDGE_NORMAL if is_break else EDGE_LOOP
            self.cfg._add_edge(open_block, target, kind)
        return None


def scan_roots(node: ast.AST) -> tuple[ast.AST, ...]:
    """What a block's node actually *evaluates* at that block.

    Compound-statement headers (``for``, ``with``) carry the whole
    statement so target bindings stay visible, but only the controlling
    expressions run at the header block — the body is lowered into
    blocks of its own. Rules and transfer functions must walk these
    roots, not the raw node, or they attribute body effects to the
    header.
    """
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return (node.iter,)
    if isinstance(node, (ast.With, ast.AsyncWith)):
        return tuple(item.context_expr for item in node.items)
    return (node,)


def build_cfg(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> CFG:
    """The CFG of one function definition's body."""
    return _Builder(node.name, node.lineno).build(node.body)


def function_cfgs(
    tree: ast.AST,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, CFG]]:
    """Every def in ``tree`` with its CFG (nested defs get their own —
    the enclosing function's CFG treats the def statement opaquely)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, build_cfg(node)
