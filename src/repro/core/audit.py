"""Invariant auditing for the grid monitors.

The schemes' correctness rests on a handful of invariants (dark-cell
bounds never exceed the true minimum, maintained safeties are exact,
every top-k place is tracked). :func:`audit_monitor` checks them against
a brute-force recomputation and returns human-readable violations — an
empty list means the monitor's state is sound.

This is test infrastructure promoted to a public API: a deployment can
run it periodically (it costs one full safety recomputation) as a
self-check, and bug reports can attach its output.
"""

from __future__ import annotations

import math

from repro.core.basic import BasicCTUP
from repro.core.monitor import CTUPMonitor
from repro.core.opt import OptCTUP
from repro.validate import Oracle


def audit_monitor(monitor: CTUPMonitor) -> list[str]:
    """All invariant violations of a monitor's current state."""
    # local import: repro.shard builds on repro.core, not the reverse.
    from repro.shard.monitor import ShardedMonitor

    oracle = Oracle(
        list(monitor.store.iter_all_places()), list(monitor.units)
    )
    problems: list[str] = []
    problems.extend(_audit_result(monitor, oracle))
    if isinstance(monitor, ShardedMonitor):
        # the global result was checked above against the full oracle;
        # every shard is additionally a complete monitor over its own
        # sub-population and must satisfy its scheme's invariants.
        for shard in monitor.shards:
            problems.extend(
                f"shard[{shard.shard_id}]: {problem}"
                for problem in audit_monitor(shard.monitor)
            )
    elif isinstance(monitor, OptCTUP):
        problems.extend(_audit_opt(monitor, oracle))
    elif isinstance(monitor, BasicCTUP):
        problems.extend(_audit_basic(monitor, oracle))
    return problems


def _audit_result(monitor: CTUPMonitor, oracle: Oracle) -> list[str]:
    verdict = oracle.validate(monitor.top_k(), monitor.config.k)
    return [f"result: {problem}" for problem in verdict.problems]


def _cell_minima(
    monitor: CTUPMonitor, truth: dict[int, float], exclude: set[int]
) -> dict[tuple[int, int], float]:
    minima: dict[tuple[int, int], float] = {}
    for place in monitor.store.iter_all_places():
        if place.place_id in exclude:
            continue
        cell = monitor.grid.cell_of(place.location)
        value = truth[place.place_id]
        minima[cell] = min(minima.get(cell, math.inf), value)
    return minima


def _audit_basic(monitor: BasicCTUP, oracle: Oracle) -> list[str]:
    problems = []
    truth = oracle.safeties()
    maintained = monitor.maintained.safeties_snapshot()
    minima = _cell_minima(monitor, truth, exclude=set())
    for cell, state in monitor.cell_states.items():
        if state.illuminated:
            continue
        if state.lower_bound > minima.get(cell, math.inf) + 1e-9:
            problems.append(
                f"basic: dark cell {cell} bound {state.lower_bound} exceeds "
                f"true minimum {minima.get(cell)}"
            )
    for pid, safety in maintained.items():
        if truth[pid] != safety:
            problems.append(
                f"basic: maintained place {pid} has stale safety "
                f"{safety} (true {truth[pid]})"
            )
    return problems


def _audit_opt(monitor: OptCTUP, oracle: Oracle) -> list[str]:
    problems = []
    truth = oracle.safeties()
    maintained = monitor.maintained.safeties_snapshot()
    for pid, safety in maintained.items():
        if truth[pid] != safety:
            problems.append(
                f"opt: maintained place {pid} has stale safety "
                f"{safety} (true {truth[pid]})"
            )
    minima = _cell_minima(monitor, truth, exclude=set(maintained))
    for cell, state in monitor.cell_states.items():
        if state.lower_bound > minima.get(cell, math.inf) + 1e-9:
            problems.append(
                f"opt: cell {cell} bound {state.lower_bound} exceeds the "
                f"minimum non-maintained safety {minima.get(cell)}"
            )
    sk = oracle.sk(monitor.config.k)
    for pid, value in truth.items():
        if value < sk and pid not in maintained:
            problems.append(
                f"opt: place {pid} (safety {value} < SK {sk}) is not "
                f"maintained"
            )
    return problems
