"""Fig. 3 — initialization time of the three schemes.

Paper shape: the naïve scheme initialises fastest (it builds no bound
bookkeeping), OptCTUP is close, BasicCTUP is the worst.
"""

from conftest import column

from repro.experiments import get_experiment


def test_fig3_initialization_time(benchmark, record_result):
    result = benchmark.pedantic(
        get_experiment("fig3").run, rounds=1, iterations=1
    )
    record_result(result)
    by_algo = dict(zip(column(result, "algorithm"), column(result, "init ms")))
    assert set(by_algo) == {"naive", "basic", "opt"}
    # Wall-clock shape with generous slack (single-shot timings jitter):
    # naive builds no bound bookkeeping and must not be materially
    # slower than either scheme; basic keeps whole illuminated cells
    # and must not be materially faster than opt.
    assert by_algo["naive"] <= by_algo["basic"] * 1.4
    assert by_algo["naive"] <= by_algo["opt"] * 1.5
    assert by_algo["basic"] >= by_algo["opt"] * 0.7
    # The structural part is deterministic: naive loads every place but
    # maintains none; basic maintains the most.
    maintained = dict(
        zip(column(result, "algorithm"), column(result, "maintained"))
    )
    assert maintained["naive"] == 0
    assert maintained["basic"] > maintained["opt"]
