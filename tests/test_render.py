"""ASCII cell-map rendering."""

import pytest

from repro.bench.render import render_cell_map
from repro.core import BasicCTUP, NaiveCTUP, OptCTUP


class TestRenderCellMap:
    def test_opt_map_dimensions(self, small_config, small_places, small_units):
        monitor = OptCTUP(small_config, small_places, small_units)
        monitor.initialize()
        text = render_cell_map(monitor, legend=False)
        lines = text.splitlines()
        assert len(lines) == small_config.granularity
        assert all(len(line) == small_config.granularity for line in lines)

    def test_topk_cells_marked(self, small_config, small_places, small_units):
        monitor = OptCTUP(small_config, small_places, small_units)
        monitor.initialize()
        text = render_cell_map(monitor, legend=False)
        assert "!" in text

    def test_basic_shows_illuminated(
        self, small_config, small_places, small_units
    ):
        monitor = BasicCTUP(small_config, small_places, small_units)
        monitor.initialize()
        text = render_cell_map(monitor, legend=False)
        # illuminated cells either hold a top-k place (!) or print as *.
        assert "!" in text or "*" in text

    def test_legend_included_by_default(
        self, small_config, small_places, small_units
    ):
        monitor = OptCTUP(small_config, small_places, small_units)
        monitor.initialize()
        assert "top-k cell" in render_cell_map(monitor)

    def test_naive_rejected(self, small_config, small_places, small_units):
        monitor = NaiveCTUP(small_config, small_places, small_units)
        monitor.initialize()
        with pytest.raises(TypeError):
            render_cell_map(monitor)

    def test_row_zero_printed_last(self, small_config, small_units):
        """The bottom text row is grid row j=0 (map orientation)."""
        from repro.model import Place
        from repro.geometry import Point

        # one very unsafe place in the bottom-left cell.
        places = [Place(0, Point(0.05, 0.05), 10)] + [
            Place(i, Point(0.95, 0.95), 0) for i in range(1, 30)
        ]
        monitor = OptCTUP(
            small_config.replace(k=1), places, small_units
        )
        monitor.initialize()
        lines = render_cell_map(monitor, legend=False).splitlines()
        assert lines[-1][0] == "!"


class TestCliSimulate:
    def test_simulate_command(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "simulate",
                    "suburbia",
                    "--updates",
                    "120",
                    "--places",
                    "500",
                    "--units",
                    "12",
                    "--map",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "updates" in out
        assert "top unsafe places" in out
        assert "top-k cell" in out

    def test_simulate_unknown_scenario(self):
        from repro.cli import main

        with pytest.raises(KeyError):
            main(["simulate", "atlantis"])
