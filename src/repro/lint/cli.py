"""The ``python -m repro.lint`` / ``ctup lint`` command line.

Exit code 0 means the tree is clean (including the RPLT01 typing gate
for the strict module set); any violation or unparsable file exits 1.
``--mypy`` additionally shells out to mypy when one is installed —
absence is reported as a skip, not a pass.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Sequence

from repro.lint import rules as _rules  # noqa: F401  (populate registry)
from repro.lint.config import load_config
from repro.lint.engine import lint_paths
from repro.lint.report import render_json, render_rules, render_text
from repro.lint.typing_gate import run_mypy


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "repo-aware static analysis: scheme contracts, counter "
            "discipline, determinism, thread-safety, deprecation "
            "hygiene and the strict typing gate"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json"),
        default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rule table and exit",
    )
    parser.add_argument(
        "--mypy",
        action="store_true",
        help="additionally run mypy (skipped with a notice if not installed)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rules())
        return 0
    config = load_config(pathlib.Path(args.paths[0]))
    result = lint_paths(args.paths, config)
    if args.output_format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    exit_code = 0 if result.ok else 1
    if args.mypy:
        mypy_code, output = run_mypy([str(p) for p in args.paths])
        if mypy_code is None:
            print(output, file=sys.stderr)
        else:
            if output.strip():
                print(output)
            exit_code = exit_code or (0 if mypy_code == 0 else 1)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
