"""Structured tracing: spans over monitor phases, kernels and I/O.

Spans are timed with the monotonic ``time.perf_counter`` clock family
(the same clock the monitor's own ledgers use), stored in a bounded
ring buffer, and exportable as a Chrome ``chrome://tracing`` /
Perfetto-compatible JSON trace (complete events, ``ph: "X"``, with
timestamps and durations in microseconds).

Like the registry, the tracer ships a null twin so instrumented code
can call ``tracer.span(...)`` unconditionally once an Observability
bundle is attached.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "write_chrome_trace",
]


@dataclass(slots=True)
class Span:
    """One completed timed region.

    ``ts_us``/``dur_us`` are microseconds on the ``perf_counter`` epoch
    (an arbitrary but monotonic origin — only deltas and relative
    ordering are meaningful, which is all a trace viewer needs).
    """

    name: str
    cat: str
    ts_us: float
    dur_us: float
    thread_id: int
    args: dict[str, object] = field(default_factory=dict)

    def as_event(self, pid: int = 1) -> dict[str, object]:
        """This span as a Chrome trace 'complete' event object."""
        return {
            "name": self.name,
            "cat": self.cat,
            "ph": "X",
            "ts": self.ts_us,
            "dur": self.dur_us,
            "pid": pid,
            "tid": self.thread_id,
            "args": self.args,
        }


class _SpanScope:
    """Context manager that times a region and emits one Span."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict[str, object]) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args
        self._start_ns = 0

    def __enter__(self) -> "_SpanScope":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: object) -> None:
        end_ns = time.perf_counter_ns()
        self._tracer._emit(
            Span(
                name=self._name,
                cat=self._cat,
                ts_us=self._start_ns / 1e3,
                dur_us=(end_ns - self._start_ns) / 1e3,
                thread_id=threading.get_ident(),
                args=self._args,
            )
        )


class Tracer:
    """Bounded in-memory span buffer.

    The buffer is a ``deque(maxlen=capacity)``: once full, the oldest
    spans fall off silently (``emitted`` keeps the lifetime total so
    droppage is detectable).  Appends are GIL-atomic, so shard drain
    threads may emit concurrently without a lock.
    """

    enabled = True

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"tracer capacity must be positive (got {capacity})")
        self.capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)
        self.emitted = 0

    def _emit(self, span: Span) -> None:
        self._spans.append(span)
        self.emitted += 1

    def span(self, name: str, cat: str = "repro", **args: object) -> _SpanScope:
        """Time a ``with`` region as one span."""
        return _SpanScope(self, name, cat, dict(args))

    def record(
        self,
        name: str,
        cat: str,
        start_s: float,
        duration_s: float,
        **args: object,
    ) -> None:
        """Record a region that was already timed with ``perf_counter``."""
        self._emit(
            Span(
                name=name,
                cat=cat,
                ts_us=start_s * 1e6,
                dur_us=duration_s * 1e6,
                thread_id=threading.get_ident(),
                args=dict(args),
            )
        )

    def spans(self) -> list[Span]:
        """A stable snapshot of the buffer, oldest first."""
        return list(self._spans)

    def clear(self) -> None:
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans())


class _NullScope:
    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_SCOPE = _NullScope()


class NullTracer:
    """Tracer stand-in when tracing is disabled: every op is a no-op."""

    enabled = False
    capacity = 0
    emitted = 0

    def span(self, name: str, cat: str = "repro", **args: object) -> _NullScope:
        return _NULL_SCOPE

    def record(
        self,
        name: str,
        cat: str,
        start_s: float,
        duration_s: float,
        **args: object,
    ) -> None:
        pass

    def spans(self) -> list[Span]:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[Span]:
        return iter(())


#: Shared null singleton — NullTracer carries no state.
NULL_TRACER = NullTracer()


def write_chrome_trace(spans: Sequence[Span], path: str | Path) -> int:
    """Write spans as a Chrome-trace JSON array, one event per line.

    The output is both a valid JSON document (loadable by
    ``chrome://tracing`` / Perfetto) and line-oriented: after the
    opening ``[`` every line holds exactly one event object, so the
    file greps and streams like JSONL.  Returns the number of events
    written.
    """
    target = Path(path)
    with target.open("w", encoding="utf-8") as fh:
        fh.write("[\n")
        for i, span in enumerate(spans):
            line = json.dumps(span.as_event(), sort_keys=True)
            fh.write(line + (",\n" if i < len(spans) - 1 else "\n"))
        fh.write("]\n")
    return len(spans)
