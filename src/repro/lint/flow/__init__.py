"""Flow-sensitive analysis: CFGs, dataflow solving, the call graph.

The syntactic rules (RPL001–RPL010) match AST shapes; the path-aware
rules (RPL011–RPL014) need to reason about *orderings* — "is the fsync
reached on every path before the rename", "is the lock definitely held
at this read", "can this return be reached with the counter uncharged".
This subpackage supplies the machinery:

* :mod:`repro.lint.flow.cfg` — intraprocedural control-flow graphs
  built from ``ast`` function bodies: basic blocks, branch/loop edges,
  exception edges out of ``try`` bodies into their handlers, and
  ``finally`` continuations;
* :mod:`repro.lint.flow.dataflow` — a generic forward/backward worklist
  solver over those CFGs, with ready-made reaching-definitions and
  liveness analyses plus the small abstract-state lattice the safety
  rules use ("resource written/flushed/synced", "lock held", "counter
  charged");
* :mod:`repro.lint.flow.callgraph` — the project-wide call graph,
  layered on the :class:`~repro.lint.engine.ProjectIndex` function
  summaries so it survives the incremental cache (no re-parse needed
  for unchanged files).

The package is analysed by reprolint itself (the self-check in
``tests/test_lint_flow.py``) — the engine is not exempt from its rules.
"""

from __future__ import annotations

from repro.lint.flow.callgraph import CallGraph, CallSite, FunctionSummary
from repro.lint.flow.cfg import CFG, Block, Edge, build_cfg, function_cfgs
from repro.lint.flow.dataflow import (
    BOTTOM,
    FlagLattice,
    FlagState,
    liveness,
    reaching_definitions,
    solve_forward,
)

__all__ = [
    "BOTTOM",
    "CFG",
    "Block",
    "CallGraph",
    "CallSite",
    "Edge",
    "FlagLattice",
    "FlagState",
    "FunctionSummary",
    "build_cfg",
    "function_cfgs",
    "liveness",
    "reaching_definitions",
    "solve_forward",
]
