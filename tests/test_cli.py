"""The ctup command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "table3" in out
        assert "expected:" in out


class TestRun:
    def test_run_table3(self, capsys):
        assert main(["run", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Default parameter values" in out
        assert "15,000" in out or "15000" in out

    def test_run_figure_tiny(self, capsys):
        assert main(["run", "fig3", "--scale", "0.04"]) == 0
        out = capsys.readouterr().out
        assert "naive" in out and "basic" in out and "opt" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])

    def test_seed_flag(self, capsys):
        assert main(["run", "fig3", "--scale", "0.04", "--seed", "3"]) == 0


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_scale_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "fig3", "--scale", "abc"])
