"""The lint driver: file loading, suppressions, the project pre-pass.

Linting is two-phase. The pre-pass parses every file once and distils
it to a :class:`FileSummary` — the class declarations, deprecated
surfaces, scheme-registry entries, and call-graph function summaries
the cross-file rules need. The :class:`ProjectIndex` merges those
summaries into the class hierarchy, the deprecated set, and the
project call graph. The rule pass then runs every registered rule over
every file against that shared index, filters the findings through the
suppression comments, and returns one sorted report.

Summaries are plain data, which is what makes the incremental cache
(:mod:`repro.lint.cache`) work: for an unchanged file the pre-pass
reuses the cached summary without re-parsing, and the rule pass reuses
cached findings per bucket — "local" rules keyed on content hash +
rule versions, "project-dependent" rules additionally keyed on a
digest over *every* file's summary. A fully warm run touches no AST at
all. The rule pass itself fans out over a thread pool (``jobs``).
"""

from __future__ import annotations

import ast
import concurrent.futures
import dataclasses
import hashlib
import io
import json
import pathlib
import re
import tokenize
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.lint.config import LintConfig, load_config
from repro.lint.flow.callgraph import (
    CallGraph,
    FunctionSummary,
    function_summaries,
)
from repro.lint.registry import (
    RULES,
    Violation,
    known_codes,
    rule_signature,
)

#: ``# reprolint: disable=RPL001,RPL002 -- reason`` (file-level with
#: ``disable-file``). The reason is mandatory; RPL000 enforces it.
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<codes>[A-Z0-9,\s]+?)\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".hypothesis"}


@dataclasses.dataclass(frozen=True, slots=True)
class Suppression:
    """One parsed ``reprolint: disable`` comment."""

    codes: tuple[str, ...]
    line: int
    file_level: bool
    reason: str | None
    #: whether the comment sits alone on its line (then it covers the
    #: next code line instead of its own).
    standalone: bool


class SourceFile:
    """One parsed source file plus everything rules need from it."""

    def __init__(self, path: str, text: str, module: str | None) -> None:
        self.path = path
        self.text = text
        self.module = module
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        self.suppressions = list(_parse_suppressions(text))

    def in_packages(self, *prefixes: str) -> bool:
        """Whether this file's module falls under any dotted prefix."""
        if self.module is None:
            return False
        return any(
            self.module == p or self.module.startswith(p + ".")
            for p in prefixes
        )

    def suppressed_codes_for_line(self, line: int) -> frozenset[str]:
        codes: set[str] = set()
        for sup in self.suppressions:
            if sup.file_level:
                codes.update(sup.codes)
            elif sup.standalone and sup.line + 1 == line:
                codes.update(sup.codes)
            elif not sup.standalone and sup.line == line:
                codes.update(sup.codes)
        return frozenset(codes)


def _parse_suppressions(text: str) -> Iterator[Suppression]:
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            codes = tuple(
                code.strip()
                for code in match.group("codes").split(",")
                if code.strip()
            )
            yield Suppression(
                codes=codes,
                line=token.start[0],
                file_level=match.group("kind") == "disable-file",
                reason=match.group("reason"),
                standalone=token.line[: token.start[1]].strip() == "",
            )
    except tokenize.TokenError:  # unterminated strings etc.: no comments
        return


# -- the project-wide pre-pass ------------------------------------------


@dataclasses.dataclass(slots=True)
class ClassInfo:
    """What the pre-pass records about one class definition."""

    name: str
    module: str | None
    path: str
    line: int
    bases: tuple[str, ...]
    #: method name -> definition line.
    methods: dict[str, int]
    #: method name -> number of positional parameters (incl. self).
    method_arity: dict[str, int]
    #: ``STATE_FIELDS`` tuple literal from the class body (``None`` when
    #: the class doesn't declare one).
    state_fields: tuple[str, ...] | None = None
    #: ``TRANSIENT_FIELDS`` tuple literal, same convention.
    transient_fields: tuple[str, ...] | None = None

    def to_payload(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "module": self.module,
            "path": self.path,
            "line": self.line,
            "bases": list(self.bases),
            "methods": self.methods,
            "method_arity": self.method_arity,
            "state_fields": (
                None if self.state_fields is None else list(self.state_fields)
            ),
            "transient_fields": (
                None
                if self.transient_fields is None
                else list(self.transient_fields)
            ),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ClassInfo":
        raw_state = payload.get("state_fields")
        raw_transient = payload.get("transient_fields")
        return cls(
            name=str(payload["name"]),
            module=payload.get("module"),
            path=str(payload["path"]),
            line=int(payload["line"]),
            bases=tuple(payload["bases"]),
            methods={k: int(v) for k, v in payload["methods"].items()},
            method_arity={
                k: int(v) for k, v in payload["method_arity"].items()
            },
            state_fields=None if raw_state is None else tuple(raw_state),
            transient_fields=(
                None if raw_transient is None else tuple(raw_transient)
            ),
        )


@dataclasses.dataclass(slots=True)
class FileSummary:
    """Everything the project pre-pass keeps from one file.

    Plain data — JSON round-trippable so the incremental cache can
    restore it for unchanged files without re-parsing.
    """

    path: str
    module: str | None
    classes: tuple[ClassInfo, ...]
    #: function name -> definition line, for DeprecationWarning raisers.
    deprecated: tuple[tuple[str, int], ...]
    #: class names registered in a ``SCHEMES`` literal, with line.
    schemes: tuple[tuple[str, int], ...]
    functions: tuple[FunctionSummary, ...]

    def to_payload(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "classes": [info.to_payload() for info in self.classes],
            "deprecated": [list(item) for item in self.deprecated],
            "schemes": [list(item) for item in self.schemes],
            "functions": [fn.to_payload() for fn in self.functions],
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "FileSummary":
        return cls(
            path=str(payload["path"]),
            module=payload.get("module"),
            classes=tuple(
                ClassInfo.from_payload(item) for item in payload["classes"]
            ),
            deprecated=tuple(
                (str(name), int(line)) for name, line in payload["deprecated"]
            ),
            schemes=tuple(
                (str(name), int(line)) for name, line in payload["schemes"]
            ),
            functions=tuple(
                FunctionSummary.from_payload(item)
                for item in payload["functions"]
            ),
        )


def summarize_source(source: SourceFile) -> FileSummary:
    """Distil one parsed file to the facts the project index keeps."""
    classes: list[ClassInfo] = []
    deprecated: list[tuple[str, int]] = []
    schemes: list[tuple[str, int]] = []
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ClassDef):
            classes.append(_class_info(source, node))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _raises_deprecation(node):
                deprecated.append((node.name, node.lineno))
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            schemes.extend(_scheme_entries(node))
    return FileSummary(
        path=source.path,
        module=source.module,
        classes=tuple(classes),
        deprecated=tuple(deprecated),
        schemes=tuple(schemes),
        functions=function_summaries(
            source.tree, source.module or "", source.path
        ),
    )


def _class_info(source: SourceFile, node: ast.ClassDef) -> ClassInfo:
    methods: dict[str, int] = {}
    arity: dict[str, int] = {}
    field_decls: dict[str, tuple[str, ...]] = {}
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods.setdefault(item.name, item.lineno)
            arity.setdefault(
                item.name,
                len(item.args.posonlyargs) + len(item.args.args),
            )
        else:
            decl = _field_tuple_literal(item)
            if decl is not None:
                field_decls.setdefault(*decl)
    return ClassInfo(
        name=node.name,
        module=source.module,
        path=source.path,
        line=node.lineno,
        bases=tuple(
            base
            for base in (_base_name(b) for b in node.bases)
            if base is not None
        ),
        methods=methods,
        method_arity=arity,
        state_fields=field_decls.get("STATE_FIELDS"),
        transient_fields=field_decls.get("TRANSIENT_FIELDS"),
    )


def _scheme_entries(
    node: ast.Assign | ast.AnnAssign,
) -> Iterator[tuple[str, int]]:
    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
    if not any(
        isinstance(t, ast.Name) and t.id == "SCHEMES" for t in targets
    ):
        return
    value = node.value
    if (
        isinstance(value, ast.Call)
        and len(value.args) == 1
        and not value.keywords
    ):
        # `SCHEMES = _SchemeRegistry({...})` — a dict subclass whose
        # class docstring documents the entries; index the literal.
        value = value.args[0]
    if not isinstance(value, ast.Dict):
        return
    for entry in value.values:
        if isinstance(entry, ast.Name):
            yield (entry.id, entry.lineno)


class ProjectIndex:
    """Cross-file facts shared by every rule."""

    def __init__(
        self,
        sources: Sequence[SourceFile],
        config: LintConfig | None = None,
    ) -> None:
        self.config = config or LintConfig()
        self.sources = tuple(sources)
        self._merge([summarize_source(source) for source in sources])

    @classmethod
    def from_summaries(
        cls,
        summaries: Sequence[FileSummary],
        config: LintConfig | None = None,
    ) -> "ProjectIndex":
        """Build the index without any parsed sources — the warm-cache
        path (no rule may rely on ``index.sources`` being populated)."""
        index = cls.__new__(cls)
        index.config = config or LintConfig()
        index.sources = ()
        index._merge(list(summaries))
        return index

    def _merge(self, summaries: Sequence[FileSummary]) -> None:
        self.summaries = tuple(summaries)
        #: simple class name -> info (package classes shadow fixture ones).
        self.classes: dict[str, ClassInfo] = {}
        #: function names whose body raises DeprecationWarning, with the
        #: (path, line) of the definition.
        self.deprecated: dict[str, tuple[str, int]] = {}
        #: class names registered as values of ``repro.api.SCHEMES``.
        self.scheme_classes: dict[str, tuple[str, int]] = {}
        #: call-graph function summaries across the whole project.
        self.functions: tuple[FunctionSummary, ...] = tuple(
            fn for summary in summaries for fn in summary.functions
        )
        self._callgraph: CallGraph | None = None
        for summary in summaries:
            for info in summary.classes:
                existing = self.classes.get(info.name)
                # package classes win over same-named fixture/test classes.
                if existing is None or (
                    existing.module is None and info.module
                ):
                    self.classes[info.name] = info
            for name, line in summary.deprecated:
                self.deprecated.setdefault(name, (summary.path, line))
            for name, line in summary.schemes:
                self.scheme_classes.setdefault(name, (summary.path, line))

    @property
    def callgraph(self) -> CallGraph:
        """The project call graph (built lazily, then cached)."""
        if self._callgraph is None:
            self._callgraph = CallGraph(self.functions, self)
        return self._callgraph

    def project_digest(self) -> str:
        """A content fingerprint over every file's summary — the
        invalidation key for project-dependent cached findings."""
        hasher = hashlib.sha256()
        for summary in sorted(self.summaries, key=lambda s: s.path):
            hasher.update(
                json.dumps(summary.to_payload(), sort_keys=True).encode()
            )
        return hasher.hexdigest()

    # -- hierarchy queries ------------------------------------------------

    def declares_state_fields(self, class_name: str) -> bool:
        """Whether the class (or any known ancestor) declares
        ``STATE_FIELDS`` — i.e. participates in the snapshot protocol."""
        infos = [self.classes.get(class_name), *self.ancestors(class_name)]
        return any(i is not None and i.state_fields is not None for i in infos)

    def snapshot_field_union(self, class_name: str) -> frozenset[str]:
        """``STATE_FIELDS`` ∪ ``TRANSIENT_FIELDS`` over the known MRO —
        the attributes a Snapshottable class is allowed to mutate after
        construction (mirrors ``collect_declared_fields``)."""
        fields: set[str] = set()
        for info in (self.classes.get(class_name), *self.ancestors(class_name)):
            if info is None:
                continue
            fields.update(info.state_fields or ())
            fields.update(info.transient_fields or ())
        return frozenset(fields)

    def ancestors(self, class_name: str) -> Iterator[ClassInfo]:
        """Known project ancestors of ``class_name``, nearest first."""
        seen: set[str] = set()
        stack = list(self.classes[class_name].bases) if class_name in self.classes else []
        while stack:
            base = stack.pop(0)
            if base in seen:
                continue
            seen.add(base)
            info = self.classes.get(base)
            if info is not None:
                yield info
                stack.extend(info.bases)

    def is_descendant_of(self, class_name: str, root: str) -> bool:
        return any(info.name == root for info in self.ancestors(class_name))

    def monitor_classes(self) -> Iterator[ClassInfo]:
        """Every known subclass of ``CTUPMonitor`` (the root excluded)."""
        for name, info in self.classes.items():
            if name != "CTUPMonitor" and self.is_descendant_of(name, "CTUPMonitor"):
                yield info


def _field_tuple_literal(
    node: ast.stmt,
) -> tuple[str, tuple[str, ...]] | None:
    """Parse ``STATE_FIELDS = ("a", "b")`` class-body declarations."""
    if isinstance(node, ast.AnnAssign):
        targets, value = [node.target], node.value
    elif isinstance(node, ast.Assign):
        targets, value = node.targets, node.value
    else:
        return None
    names = {
        t.id
        for t in targets
        if isinstance(t, ast.Name)
        and t.id in ("STATE_FIELDS", "TRANSIENT_FIELDS")
    }
    if len(names) != 1 or not isinstance(value, (ast.Tuple, ast.List)):
        return None
    fields = []
    for element in value.elts:
        if not (
            isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ):
            return None
        fields.append(element.value)
    return names.pop(), tuple(fields)


def _raises_deprecation(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for inner in ast.walk(node):
        if not isinstance(inner, ast.Call):
            continue
        func = inner.func
        is_warn = (
            isinstance(func, ast.Attribute) and func.attr == "warn"
        ) or (isinstance(func, ast.Name) and func.id == "warn")
        if not is_warn:
            continue
        candidates = list(inner.args[1:]) + [
            kw.value for kw in inner.keywords if kw.arg == "category"
        ]
        for arg in candidates:
            if isinstance(arg, ast.Name) and arg.id == "DeprecationWarning":
                return True
            if isinstance(arg, ast.Attribute) and arg.attr == "DeprecationWarning":
                return True
    return False


def _base_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):  # Generic[...] style bases
        return _base_name(node.value)
    return None


# -- file collection ----------------------------------------------------


def module_name_of(path: pathlib.Path) -> str | None:
    """Dotted module name, walking packages up from the file.

    Returns ``None`` for files outside any package (tests, fixtures) —
    package-scoped rules skip those.
    """
    parts = [path.stem] if path.stem != "__init__" else []
    node = path.parent
    while (node / "__init__.py").is_file():
        parts.insert(0, node.name)
        node = node.parent
    return ".".join(parts) if parts else None


def collect_files(paths: Iterable[str | pathlib.Path]) -> list[pathlib.Path]:
    """Every lintable ``.py`` file under ``paths`` (sorted, de-duplicated)."""
    out: set[pathlib.Path] = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIR_NAMES & set(candidate.parts):
                    out.add(candidate)
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


# -- the run ------------------------------------------------------------


@dataclasses.dataclass(slots=True)
class LintResult:
    """Everything one run produced."""

    violations: list[Violation]
    files_checked: int
    parse_errors: list[Violation]

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_errors

    def all_findings(self) -> list[Violation]:
        return sorted(
            self.parse_errors + self.violations, key=Violation.sort_key
        )


def _partition_codes(
    active: frozenset[str],
) -> tuple[frozenset[str], frozenset[str]]:
    """(local, project-dependent) split of the active rule set."""
    local = frozenset(
        code for code in active if not RULES[code].project_dependent
    )
    return local, active - local


def _run_codes(
    source: SourceFile, project: ProjectIndex, codes: Iterable[str]
) -> list[Violation]:
    """Run a rule subset over one file, suppressions applied."""
    found: list[Violation] = []
    for code in sorted(codes):
        for violation in RULES[code].run(source, project):
            if violation.code in source.suppressed_codes_for_line(
                violation.line
            ):
                continue
            found.append(violation)
    return found


def _config_fingerprint(config: LintConfig, active: frozenset[str]) -> str:
    """The configuration facts that change findings — part of every
    cache signature."""
    return "|".join(
        [
            ",".join(sorted(active)),
            ",".join(sorted(config.strict_typed_modules)),
        ]
    )


def lint_sources(
    sources: Sequence[SourceFile],
    config: LintConfig | None = None,
    *,
    jobs: int | None = None,
) -> LintResult:
    """Run every active rule over already-parsed sources."""
    config = config or LintConfig()
    project = ProjectIndex(sources, config)
    active = config.active_codes(known_codes())
    violations: list[Violation] = []
    if jobs is not None and jobs != 1 and len(sources) > 1:
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=jobs or None, thread_name_prefix="reprolint"
        ) as pool:
            for found in pool.map(
                lambda source: _run_codes(source, project, active), sources
            ):
                violations.extend(found)
    else:
        for source in sources:
            violations.extend(_run_codes(source, project, active))
    violations.sort(key=Violation.sort_key)
    return LintResult(
        violations=violations,
        files_checked=len(sources),
        parse_errors=[],
    )


@dataclasses.dataclass(slots=True)
class _FileState:
    """Per-file working state of the cached driver."""

    path: pathlib.Path
    content_hash: str
    summary: FileSummary | None = None
    source: SourceFile | None = None
    parse_error: Violation | None = None
    #: cached findings carried over, keyed by bucket name.
    reused: dict[str, list[Violation]] = dataclasses.field(
        default_factory=dict
    )

    def ensure_source(self) -> SourceFile:
        """Parse on demand (a warm summary skips parsing until a stale
        rule bucket actually needs the AST)."""
        if self.source is None:
            text = self.path.read_text(encoding="utf-8")
            self.source = SourceFile(
                str(self.path), text, module_name_of(self.path)
            )
        return self.source


def _load_file_state(
    path: pathlib.Path, cached: Mapping[str, Any] | None
) -> _FileState:
    """Hash one file and restore whatever the cache still covers."""
    try:
        raw = path.read_bytes()
    except OSError as exc:
        state = _FileState(path=path, content_hash="")
        state.parse_error = Violation(
            code="RPLE00",
            message=f"could not parse: {exc}",
            path=str(path),
            line=1,
        )
        return state
    content_hash = hashlib.sha256(raw).hexdigest()
    state = _FileState(path=path, content_hash=content_hash)
    if cached is not None and cached.get("content_hash") == content_hash:
        if cached.get("parse_error") is not None:
            state.parse_error = Violation.from_payload(cached["parse_error"])
            return state
        if cached.get("summary") is not None:
            state.summary = FileSummary.from_payload(cached["summary"])
        return state
    return state


def _materialize(state: _FileState) -> None:
    """Parse + summarize a file the cache couldn't cover."""
    if state.summary is not None or state.parse_error is not None:
        return
    try:
        state.ensure_source()
    except (SyntaxError, UnicodeDecodeError, OSError) as exc:
        line = getattr(exc, "lineno", None) or 1
        state.parse_error = Violation(
            code="RPLE00",
            message=f"could not parse: {exc}",
            path=str(state.path),
            line=int(line),
        )
        return
    state.summary = summarize_source(state.source)  # type: ignore[arg-type]


def lint_paths(
    paths: Sequence[str | pathlib.Path],
    config: LintConfig | None = None,
    *,
    cache: "Any | None" = None,
    jobs: int | None = None,
    only: Iterable[str | pathlib.Path] | None = None,
) -> LintResult:
    """Lint every Python file under ``paths``.

    ``cache`` is a :class:`repro.lint.cache.LintCache` (or ``None`` to
    analyse from scratch). ``jobs`` fans the rule pass out over a
    thread pool (``0`` / ``None`` picks a default). ``only`` restricts
    *reporting* to a file subset — the project pre-pass still covers
    every collected file, so cross-file rules see the whole tree.
    """
    files = collect_files(paths)
    if config is None:
        anchor = files[0] if files else pathlib.Path.cwd()
        config = load_config(pathlib.Path(anchor))
    active = config.active_codes(known_codes())
    local_codes, project_codes = _partition_codes(active)
    fingerprint = _config_fingerprint(config, active)
    local_sig = f"{rule_signature(local_codes)}|{fingerprint}"
    project_sig = f"{rule_signature(project_codes)}|{fingerprint}"

    # phase A: hash everything, restore summaries, parse the rest.
    states: list[_FileState] = [
        _load_file_state(
            path, cache.entry(str(path)) if cache is not None else None
        )
        for path in files
    ]
    for state in states:
        _materialize(state)

    # phase B: one index over every summary, then the per-file rule pass.
    summaries = [
        state.summary for state in states if state.summary is not None
    ]
    project = ProjectIndex.from_summaries(summaries, config)
    digest = project.project_digest()

    selected: set[str] | None = None
    if only is not None:
        selected = {str(pathlib.Path(item)) for item in only}
    targets = [
        state
        for state in states
        if state.parse_error is None
        and state.summary is not None
        and (selected is None or str(state.path) in selected)
    ]

    def analyse(state: _FileState) -> list[Violation]:
        cached = (
            cache.entry(str(state.path)) if cache is not None else None
        )
        if (
            cached is not None
            and cached.get("content_hash") != state.content_hash
        ):
            cached = None  # edited since the cache was written
        found: list[Violation] = []
        for bucket, codes, signature in (
            ("local", local_codes, local_sig),
            ("project", project_codes, project_sig),
        ):
            entry = (cached or {}).get(bucket)
            fresh = (
                entry is not None
                and entry.get("signature") == signature
                and (bucket == "local" or entry.get("digest") == digest)
            )
            if fresh:
                bucket_findings = [
                    Violation.from_payload(item)
                    for item in entry["violations"]
                ]
            else:
                bucket_findings = _run_codes(
                    state.ensure_source(), project, codes
                )
            state.reused[bucket] = bucket_findings
            found.extend(bucket_findings)
        return found

    violations: list[Violation] = []
    if jobs is not None and jobs != 1 and len(targets) > 1:
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=jobs or None, thread_name_prefix="reprolint"
        ) as pool:
            for found in pool.map(analyse, targets):
                violations.extend(found)
    else:
        for state in targets:
            violations.extend(analyse(state))
    violations.sort(key=Violation.sort_key)

    # phase C: write back everything we now know.
    if cache is not None:
        for state in states:
            if not state.content_hash:
                continue
            entry: dict[str, Any] = {"content_hash": state.content_hash}
            if state.parse_error is not None:
                entry["parse_error"] = state.parse_error.to_payload()
            elif state.summary is not None:
                entry["summary"] = state.summary.to_payload()
                for bucket, signature in (
                    ("local", local_sig),
                    ("project", project_sig),
                ):
                    if bucket in state.reused:
                        bucket_entry: dict[str, Any] = {
                            "signature": signature,
                            "violations": [
                                v.to_payload()
                                for v in state.reused[bucket]
                            ],
                        }
                        if bucket == "project":
                            bucket_entry["digest"] = digest
                        entry[bucket] = bucket_entry
                    else:
                        previous = cache.entry(str(state.path)) or {}
                        if bucket in previous and previous.get(
                            "content_hash"
                        ) == state.content_hash:
                            entry[bucket] = previous[bucket]
            cache.store(str(state.path), entry)
        cache.save()

    parse_errors = [
        state.parse_error
        for state in states
        if state.parse_error is not None
        and (selected is None or str(state.path) in selected)
    ]
    return LintResult(
        violations=violations,
        files_checked=len(targets),
        parse_errors=parse_errors,
    )
