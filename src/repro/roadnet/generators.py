"""Synthetic city topologies.

Three families cover the structure found in real road maps like
Oldenburg: a perturbed Manhattan grid with faster arterials, a radial
ring-and-spoke (old-town) layout, and a random planar-ish network built
from nearest-neighbour links stitched connected with a spanning tree.
All generators are deterministic in their seed.
"""

from __future__ import annotations

import itertools
import math
import random

import networkx as nx

from repro.geometry import Point, Rect
from repro.roadnet.network import RoadNetwork


def grid_network(
    rows: int = 12,
    cols: int = 12,
    seed: int = 0,
    perturbation: float = 0.15,
    arterial_every: int = 4,
    space: Rect = Rect(0.0, 0.0, 1.0, 1.0),
) -> RoadNetwork:
    """A perturbed Manhattan grid.

    Every ``arterial_every``-th row/column is an arterial (road class 1);
    the central cross is a highway (class 2). ``perturbation`` jitters
    nodes by that fraction of the street spacing so the grid does not
    align degenerately with the monitor's partition.
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid needs at least 2x2 intersections")
    rng = random.Random(seed)
    graph = nx.Graph()
    dx = 1.0 / (cols - 1)
    dy = 1.0 / (rows - 1)

    def node_id(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            jitter_x = rng.uniform(-perturbation, perturbation) * dx
            jitter_y = rng.uniform(-perturbation, perturbation) * dy
            # keep boundary nodes on the boundary so the extent is stable.
            x = min(max(c * dx + (jitter_x if 0 < c < cols - 1 else 0.0), 0.0), 1.0)
            y = min(max(r * dy + (jitter_y if 0 < r < rows - 1 else 0.0), 0.0), 1.0)
            graph.add_node(node_id(r, c), point=Point(x, y))

    def class_of(r: int, c: int, horizontal: bool) -> int:
        if horizontal:
            if r == rows // 2:
                return 2
            return 1 if r % arterial_every == 0 else 0
        if c == cols // 2:
            return 2
        return 1 if c % arterial_every == 0 else 0

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                graph.add_edge(
                    node_id(r, c),
                    node_id(r, c + 1),
                    road_class=class_of(r, c, horizontal=True),
                )
            if r + 1 < rows:
                graph.add_edge(
                    node_id(r, c),
                    node_id(r + 1, c),
                    road_class=class_of(r, c, horizontal=False),
                )
    return RoadNetwork(graph).normalized_to(space)


def radial_network(
    rings: int = 4,
    spokes: int = 10,
    seed: int = 0,
    space: Rect = Rect(0.0, 0.0, 1.0, 1.0),
) -> RoadNetwork:
    """A ring-and-spoke old-town layout.

    Spokes are arterials (class 1), the outermost ring is a beltway
    (class 2), inner rings are residential (class 0).
    """
    if rings < 1 or spokes < 3:
        raise ValueError("need at least 1 ring and 3 spokes")
    rng = random.Random(seed)
    graph = nx.Graph()
    center = 0
    graph.add_node(center, point=Point(0.5, 0.5))
    for ring, spoke in itertools.product(range(1, rings + 1), range(spokes)):
        radius = 0.5 * ring / rings
        angle = 2 * math.pi * (spoke + rng.uniform(-0.1, 0.1)) / spokes
        graph.add_node(
            (ring, spoke),
            point=Point(0.5 + radius * math.cos(angle), 0.5 + radius * math.sin(angle)),
        )
    for spoke in range(spokes):
        graph.add_edge(center, (1, spoke), road_class=1)
        for ring in range(1, rings):
            graph.add_edge((ring, spoke), (ring + 1, spoke), road_class=1)
    for ring in range(1, rings + 1):
        ring_class = 2 if ring == rings else 0
        for spoke in range(spokes):
            graph.add_edge(
                (ring, spoke),
                (ring, (spoke + 1) % spokes),
                road_class=ring_class,
            )
    return RoadNetwork(graph).normalized_to(space)


def random_network(
    nodes: int = 120,
    neighbours: int = 3,
    seed: int = 0,
    space: Rect = Rect(0.0, 0.0, 1.0, 1.0),
) -> RoadNetwork:
    """A random planar-ish network.

    Uniform random intersections, each linked to its ``neighbours``
    nearest peers; a minimum spanning tree over all pairwise distances is
    merged in to guarantee connectivity. The longest links are promoted
    to arterials, which gives fast cross-town routes like a real map.
    """
    if nodes < 2:
        raise ValueError("need at least 2 nodes")
    rng = random.Random(seed)
    points = [
        Point(rng.random(), rng.random()) for _ in range(nodes)
    ]
    graph = nx.Graph()
    for i, p in enumerate(points):
        graph.add_node(i, point=p)
    # k-nearest-neighbour links
    for i, p in enumerate(points):
        ranked = sorted(
            (j for j in range(nodes) if j != i),
            key=lambda j: p.squared_distance_to(points[j]),
        )
        for j in ranked[:neighbours]:
            graph.add_edge(i, j, road_class=0)
    # stitch components together with a euclidean MST
    complete = nx.Graph()
    complete.add_nodes_from(range(nodes))
    for i in range(nodes):
        for j in range(i + 1, nodes):
            complete.add_edge(i, j, weight=points[i].distance_to(points[j]))
    for a, b in nx.minimum_spanning_edges(complete, data=False):
        if not graph.has_edge(a, b):
            graph.add_edge(a, b, road_class=0)
    # promote the longest fifth of edges to arterials
    lengths = sorted(
        graph.edges,
        key=lambda e: points[e[0]].distance_to(points[e[1]]),
        reverse=True,
    )
    for a, b in lengths[: max(1, len(lengths) // 5)]:
        graph.edges[a, b]["road_class"] = 1
    return RoadNetwork(graph).normalized_to(space)
