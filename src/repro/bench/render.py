"""ASCII rendering of the monitoring state.

A terminal picture of the grid is worth a counter dump when debugging
bound maintenance or explaining the schemes: each cell is one character
showing how close its lower bound sits to SK, with the cells holding
current top-k places highlighted. Works for both grid monitors (they
share the ``cell_states`` shape).
"""

from __future__ import annotations

import math

from repro.core.basic import BasicCTUP
from repro.core.monitor import CTUPMonitor

#: bound "temperature" ramp: how far above SK a cell's bound sits.
_RAMP = "#@%+=-. "


def render_cell_map(monitor: CTUPMonitor, legend: bool = True) -> str:
    """The monitor's grid as a text map (row 0 printed at the bottom).

    ``!`` marks cells holding a current top-k place, ``#`` a bound at or
    below SK (the cell is — or is about to be — interesting), cooling
    through the ramp to a space for far-away bounds; ``.``-to-space are
    comfortably safe cells, and empty cells print as ``·``.
    """
    cell_states = getattr(monitor, "cell_states", None)
    if cell_states is None:
        raise TypeError(
            f"{monitor.name} has no grid state to render (naïve monitors "
            "keep no per-cell information)"
        )
    grid = monitor.grid
    sk = monitor.sk()
    top_cells = {
        grid.cell_of(record.place.location) for record in monitor.top_k()
    }
    rows = []
    for j in reversed(range(grid.ny)):
        row = []
        for i in range(grid.nx):
            cell = (i, j)
            state = cell_states.get(cell)
            if state is None:
                row.append("·")
            elif cell in top_cells:
                row.append("!")
            elif isinstance(monitor, BasicCTUP) and state.illuminated:
                row.append("*")
            else:
                row.append(_bound_char(state.lower_bound, sk))
        rows.append("".join(row))
    text = "\n".join(rows)
    if legend:
        text += (
            f"\n[!] top-k cell   [*] illuminated   "
            f"[#..{_RAMP[-2]}] bound distance to SK ({_fmt(sk)})   "
            f"[·] empty"
        )
    return text


def _bound_char(bound: float, sk: float) -> str:
    if math.isinf(bound):
        return " "
    if math.isinf(sk):
        return _RAMP[-2]
    distance = bound - sk
    if distance <= 0:
        return _RAMP[0]
    index = min(int(distance), len(_RAMP) - 1)
    return _RAMP[index]


def _fmt(value: float) -> str:
    return "inf" if math.isinf(value) else f"{value:+.0f}"
