"""The common interface of all CTUP monitors.

A monitor owns its full server-side state: the grid partition, the
simulated lower storage level holding all places, the unit index with
the most recently reported unit positions, and whatever bound/maintained
structures the concrete scheme needs. Driving a monitor is always:

>>> monitor.initialize()          # §III-B / §IV-D, executed once
>>> for update in stream:
...     monitor.process(update)   # §III-C / §IV-E
...     monitor.top_k()           # the continuously monitored answer
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

from repro.core.config import CTUPConfig
from repro.core.metrics import InitReport, MonitorCounters, UpdateReport
from repro.core.units import UnitIndex
from repro.grid.partition import GridPartition
from repro.model import LocationUpdate, Place, SafetyRecord, Unit
from repro.storage.placestore import PlaceStore


class CTUPMonitor(abc.ABC):
    """Base class: state assembly plus the monitoring contract."""

    #: short scheme name used in benchmark tables.
    name: str = "abstract"

    def __init__(
        self,
        config: CTUPConfig,
        places: Sequence[Place],
        units: Iterable[Unit],
    ) -> None:
        self.config = config
        self.grid = GridPartition(
            config.space, config.granularity, config.granularity
        )
        self.store = PlaceStore(
            self.grid,
            places,
            page_capacity=config.page_capacity,
            buffer_pages=config.buffer_pages,
        )
        self.units = UnitIndex(units)
        if abs(self.units.protection_range - config.protection_range) > 1e-12:
            raise ValueError(
                "config protection range "
                f"{config.protection_range} does not match the units' "
                f"{self.units.protection_range}"
            )
        self.counters = MonitorCounters()
        self._initialized = False

    # -- contract -------------------------------------------------------

    @abc.abstractmethod
    def initialize(self) -> InitReport:
        """Build the initial monitoring state (executed only once)."""

    @abc.abstractmethod
    def process(self, update: LocationUpdate) -> UpdateReport:
        """Absorb one location update, keeping the top-k result current."""

    @abc.abstractmethod
    def top_k(self) -> list[SafetyRecord]:
        """The current k least safe places, least safe first.

        Ties are broken by ascending place id among the candidates a
        scheme tracks. Every scheme reports the same SK and the same
        places strictly below it; which of several places *tied at SK*
        fills the last slot may differ between schemes (Definition 4 is
        ambiguous there, and resolving it deterministically would force
        extra cell accesses for no information gain).
        """

    @abc.abstractmethod
    def sk(self) -> float:
        """The safety of the k-th unsafe place (``+inf`` if |P| < k)."""

    # -- shared helpers --------------------------------------------------

    def _require_initialized(self) -> None:
        if not self._initialized:
            raise RuntimeError(
                f"{self.name}: initialize() must be called before processing"
            )

    def _require_not_initialized(self) -> None:
        if self._initialized:
            raise RuntimeError(f"{self.name}: initialize() may run only once")

    def topk_ids(self) -> list[int]:
        """Place ids of the current result (convenience for tests)."""
        return [record.place_id for record in self.top_k()]

    def run_stream(self, updates: Iterable[LocationUpdate]) -> int:
        """Process a whole stream; returns the number of updates consumed."""
        count = 0
        for update in updates:
            self.process(update)
            count += 1
        return count
