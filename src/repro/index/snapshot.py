"""Snapshot top-k unsafe places via best-first R-tree descent.

Given the current unit positions, the safety of any place inside an
R-tree node's MBR is at least

    AP_lower(MBR) - max_required(subtree)

where ``AP_lower`` counts the units whose protection disk fully contains
the MBR (those protect *every* point of it). Descending nodes in
increasing bound order and stopping once the best remaining bound cannot
beat the current k-th candidate gives the exact snapshot answer while
touching only the unsafe corner of the tree — the R-tree analogue of the
grid schemes' dark-cell pruning, and the natural "refill" query for a
cold-started server.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.core.units import UnitIndex
from repro.geometry.distance import point_rect_max_distance
from repro.index.rtree import RTree, RTreeNode
from repro.model import SafetyRecord


@dataclass
class SnapshotTopK:
    """The snapshot answer plus the work it took."""

    records: list[SafetyRecord]
    nodes_visited: int = 0
    places_evaluated: int = 0
    nodes_pruned: int = 0

    @property
    def sk(self) -> float:
        if not self.records:
            return math.inf
        return self.records[-1].safety


def _ap_lower_bound(units: UnitIndex, node: RTreeNode) -> int:
    """Units guaranteed to protect every point of the node's MBR."""
    radius = units.protection_range
    return sum(
        1
        for unit in units
        if point_rect_max_distance(unit.location, node.mbr) <= radius
    )


def snapshot_top_k_unsafe(
    tree: RTree, units: UnitIndex, k: int
) -> SnapshotTopK:
    """The exact k least safe places under the current unit positions."""
    if k <= 0:
        raise ValueError("k must be positive")
    counter = 0
    root_bound = _ap_lower_bound(units, tree.root) - tree.root.max_required
    heap: list[tuple[float, int, RTreeNode]] = [(root_bound, counter, tree.root)]
    # current candidates as (safety, place_id, record), kept as a max-heap
    # of size <= k via negation.
    candidates: list[tuple[float, int, SafetyRecord]] = []
    result = SnapshotTopK(records=[])

    def kth() -> float:
        if len(candidates) < k:
            return math.inf
        return -candidates[0][0]

    while heap:
        bound, _, node = heapq.heappop(heap)
        if bound > kth() or (bound == kth() and len(candidates) >= k):
            # nothing below this bound can improve the answer; since the
            # heap is ordered by bound, everything else prunes too.
            result.nodes_pruned += 1 + len(heap)
            break
        result.nodes_visited += 1
        if node.is_leaf:
            xs = np.array([p.location.x for p in node.places])
            ys = np.array([p.location.y for p in node.places])
            ap = units.ap_counts(xs, ys)
            result.places_evaluated += len(node.places)
            for place, protection in zip(node.places, ap):
                safety = float(protection - place.required_protection)
                entry = (
                    -safety,
                    -place.place_id,
                    SafetyRecord(place, safety),
                )
                if len(candidates) < k:
                    heapq.heappush(candidates, entry)
                elif entry > candidates[0]:
                    heapq.heapreplace(candidates, entry)
        else:
            for child in node.children:
                counter += 1
                child_bound = (
                    _ap_lower_bound(units, child) - child.max_required
                )
                heapq.heappush(heap, (child_bound, counter, child))

    ranked = sorted(
        (record for _, _, record in candidates),
        key=lambda r: (r.safety, r.place_id),
    )
    result.records = ranked
    return result
