"""Degenerate configurations the schemes must survive.

Single-cell grids, every place stacked in one cell, fewer places than
k, fleets that never protect anything — each exercises boundary logic
(infinite SK, empty maintained tables, all-N classifications) that the
realistic workloads rarely hit.
"""

import math

import pytest

from repro.core import BasicCTUP, CTUPConfig, NaiveCTUP, OptCTUP
from repro.core.audit import audit_monitor
from repro.geometry import Point
from repro.model import Place, Unit
from repro.validate import Oracle
from repro.workloads import RandomWalkMobility, generate_places, record_stream

SCHEMES = [NaiveCTUP, BasicCTUP, OptCTUP]


def drive(config, places, units, stream, audit=True):
    oracle = Oracle(places, units)
    monitors = [cls(config, places, units) for cls in SCHEMES]
    for monitor in monitors:
        monitor.initialize()
    for update in stream:
        oracle.apply(update)
        for monitor in monitors:
            monitor.process(update)
            verdict = oracle.validate(monitor.top_k(), config.k)
            assert verdict.ok, (monitor.name, verdict.problems[:3])
    if audit:
        for monitor in monitors[1:]:  # naive keeps no auditable state
            assert audit_monitor(monitor) == [], monitor.name
    return monitors


@pytest.fixture
def fleet():
    units = [
        Unit(0, Point(0.2, 0.2), 0.1),
        Unit(1, Point(0.8, 0.8), 0.1),
        Unit(2, Point(0.5, 0.5), 0.1),
    ]
    return units


def walk(units, seed=1, n=60):
    return record_stream(RandomWalkMobility(units, step=0.05, seed=seed), n)


class TestSingleCellGrid:
    def test_granularity_one(self, fleet):
        config = CTUPConfig(k=3, delta=2, protection_range=0.1, granularity=1)
        places = generate_places(100, seed=1)
        drive(config, places, fleet, walk(fleet))


class TestStackedPlaces:
    def test_all_places_in_one_cell(self, fleet):
        config = CTUPConfig(k=4, delta=2, protection_range=0.1, granularity=8)
        places = [
            Place(i, Point(0.33 + i * 1e-4, 0.61), i % 5) for i in range(80)
        ]
        drive(config, places, fleet, walk(fleet, seed=2))

    def test_coincident_places(self, fleet):
        config = CTUPConfig(k=3, delta=1, protection_range=0.1, granularity=8)
        places = [Place(i, Point(0.5, 0.5), i % 4) for i in range(20)]
        drive(config, places, fleet, walk(fleet, seed=3))


class TestFewerPlacesThanK:
    def test_sk_stays_infinite(self, fleet):
        config = CTUPConfig(k=50, delta=2, protection_range=0.1, granularity=4)
        places = generate_places(8, seed=2)
        monitors = drive(config, places, fleet, walk(fleet, seed=4))
        for monitor in monitors:
            assert monitor.sk() == math.inf
            assert len(monitor.top_k()) == 8

    def test_opt_maintains_everything(self, fleet):
        config = CTUPConfig(k=50, delta=2, protection_range=0.1, granularity=4)
        places = generate_places(8, seed=2)
        monitor = OptCTUP(config, places, fleet)
        monitor.initialize()
        # SK = inf means every cell's bound is "below SK": all maintained.
        assert len(monitor.maintained) == 8


class TestIrrelevantFleet:
    def test_units_protect_nothing(self):
        # places in one corner, the fleet walking in the other.
        config = CTUPConfig(k=3, delta=2, protection_range=0.05, granularity=8)
        places = [
            Place(i, Point(0.05 + (i % 5) * 0.01, 0.05 + (i // 5) * 0.01), 2)
            for i in range(25)
        ]
        units = [Unit(0, Point(0.9, 0.9), 0.05), Unit(1, Point(0.95, 0.9), 0.05)]
        stream = record_stream(
            RandomWalkMobility(units, step=0.01, seed=5), 40
        )
        monitors = drive(config, places, units, stream)
        # every place keeps safety exactly -RP = -2 throughout.
        for monitor in monitors:
            assert monitor.sk() == -2.0


class TestStationaryReports:
    def test_zero_displacement_updates(self, fleet):
        """Units reporting without moving (the P->P drawback trigger)."""
        from repro.model import LocationUpdate

        config = CTUPConfig(k=3, delta=2, protection_range=0.1, granularity=8)
        places = generate_places(200, seed=3)
        oracle = Oracle(places, fleet)
        monitors = [cls(config, places, fleet) for cls in SCHEMES]
        for monitor in monitors:
            monitor.initialize()
        for _ in range(25):
            for unit in fleet:
                update = LocationUpdate(
                    unit.unit_id, unit.location, unit.location
                )
                oracle.apply(update)
                for monitor in monitors:
                    monitor.process(update)
        for monitor in monitors:
            verdict = oracle.validate(monitor.top_k(), config.k)
            assert verdict.ok, (monitor.name, verdict.problems[:3])
        # DOO suppresses the repeated no-move decrements for opt...
        opt = monitors[2]
        basic = monitors[1]
        assert opt.counters.lb_decrements <= basic.counters.lb_decrements


class TestStreamFiles:
    def test_save_and_load_roundtrip(self, tmp_path, fleet):
        stream = walk(fleet, seed=9, n=30)
        path = tmp_path / "stream.jsonl"
        stream.save(path)
        assert path.exists()
        from repro.workloads.stream import UpdateStream

        assert UpdateStream.load(path) == stream

    def test_save_empty_stream(self, tmp_path):
        from repro.workloads.stream import UpdateStream

        path = tmp_path / "empty.jsonl"
        UpdateStream().save(path)
        assert UpdateStream.load(path) == UpdateStream()
