"""Axis-aligned rectangles.

Grid cells, place extents (in the extension of §VII) and the space
bounds are all axis-aligned rectangles. The rectangle is closed: points
on its boundary are considered contained, matching the closed protection
disk of Definition 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(
                f"degenerate rect: ({self.xmin}, {self.ymin}) .. "
                f"({self.xmax}, {self.ymax})"
            )

    @classmethod
    def from_points(cls, a: Point, b: Point) -> "Rect":
        """The bounding rectangle of two points."""
        return cls(
            min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y)
        )

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    def center(self) -> Point:
        return Point((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """The four corners, counter-clockwise from the lower-left."""
        return (
            Point(self.xmin, self.ymin),
            Point(self.xmax, self.ymin),
            Point(self.xmax, self.ymax),
            Point(self.xmin, self.ymax),
        )

    def contains_point(self, p: Point) -> bool:
        return self.xmin <= p.x <= self.xmax and self.ymin <= p.y <= self.ymax

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and other.xmax <= self.xmax
            and other.ymax <= self.ymax
        )

    def intersects(self, other: "Rect") -> bool:
        return (
            self.xmin <= other.xmax
            and other.xmin <= self.xmax
            and self.ymin <= other.ymax
            and other.ymin <= self.ymax
        )

    def inflated(self, margin: float) -> "Rect":
        """The rectangle grown by ``margin`` on every side.

        Used by the extent extension: classifying a unit's disk against a
        cell inflated by the maximum place extent gives a conservative
        N/P/F answer for every extended place anchored in the cell.
        """
        if margin < 0 and (2 * -margin > self.width or 2 * -margin > self.height):
            raise ValueError("negative margin would invert the rectangle")
        return Rect(
            self.xmin - margin,
            self.ymin - margin,
            self.xmax + margin,
            self.ymax + margin,
        )

    def clamp_point(self, p: Point) -> Point:
        """The point of the rectangle closest to ``p``."""
        return Point(
            min(max(p.x, self.xmin), self.xmax),
            min(max(p.y, self.ymin), self.ymax),
        )
