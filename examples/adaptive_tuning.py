"""Choosing Δ: offline calibration and online adaptation.

The paper's Fig. 9 shows Δ trading maintained places against cell
accesses and leaves picking it to the operator. This example shows both
ways the library operationalises that insight:

1. **offline** — `choose_delta` replays a stream prefix at candidate
   values and reports the cheapest under a machine-independent cost;
2. **online** — `AdaptiveDeltaController` starts at a deliberately bad
   Δ and converges by watching the monitor's own counters.

Run:  python examples/adaptive_tuning.py
"""

from repro.bench import build_workload, format_table
from repro.core import AdaptiveDeltaController, CTUPConfig, OptCTUP, choose_delta

CANDIDATES = (0, 2, 4, 6, 8, 12)


def main() -> None:
    config = CTUPConfig(k=10, protection_range=0.1, granularity=10)
    workload = build_workload(
        n_units=100, n_places=8_000, stream_length=2_000, seed=19
    )

    # -- offline calibration on the first quarter of the stream ----------
    choice = choose_delta(
        workload,
        config,
        candidates=CANDIDATES,
        updates=len(workload.stream) // 4,
        metric="work",
    )
    print(
        format_table(
            ["delta", "places touched/upd", "cells/upd", "maintained peak"],
            [
                [
                    delta,
                    choice.cost_of(delta),
                    result.cells_per_update,
                    result.counters.maintained_peak,
                ]
                for delta, result in sorted(choice.results.items())
            ],
            title="offline: cost per candidate (first 500 updates)",
        )
    )
    print(f"-> calibrated delta = {choice.delta}\n")

    # -- online adaptation from a bad starting point ------------------------
    monitor = OptCTUP(config.replace(delta=0), workload.places, workload.units)
    monitor.initialize()
    controller = AdaptiveDeltaController(
        monitor, window=100, access_target=0.3, maintained_budget=2_000
    )
    controller.run_stream(workload.stream)
    print("online: delta trajectory (one row per adaptation window)")
    trail = [
        [step.at_update, step.delta_before, step.delta_after, step.accesses]
        for step in controller.history
        if step.delta_before != step.delta_after
    ]
    print(
        format_table(
            ["update", "delta before", "delta after", "window accesses"],
            trail or [["-", 0, 0, 0]],
        )
    )
    print(
        f"\nstarted at delta=0, settled at delta={controller.current_delta:.0f} "
        f"(offline calibration said {choice.delta})"
    )


if __name__ == "__main__":
    main()
