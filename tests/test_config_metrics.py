"""CTUPConfig, MonitorCounters, CellState."""

import math

import pytest

from repro.core import CTUPConfig, MonitorCounters
from repro.geometry import Rect
from repro.grid import CellState


class TestConfig:
    def test_defaults_are_table3(self):
        config = CTUPConfig()
        assert config.k == 15
        assert config.delta == 6
        assert config.protection_range == 0.1
        assert config.granularity == 10
        assert config.use_doo is True

    def test_space_defaults_to_unit_square(self):
        config = CTUPConfig()
        assert config.space == Rect(0.0, 0.0, 1.0, 1.0)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("k", -1),
            ("delta", -1),
            ("protection_range", 0.0),
            ("protection_range", -0.5),
            ("granularity", 0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            CTUPConfig(**{field: value})

    def test_k_zero_suspends_reporting(self):
        # k == 0 is legal (KChanged(0) mid-run): an empty result set.
        assert CTUPConfig(k=0).k == 0

    def test_replace_returns_new_config(self):
        config = CTUPConfig()
        other = config.replace(k=3, delta=1)
        assert other.k == 3
        assert other.delta == 1
        assert config.k == 15  # original untouched

    def test_replace_validates(self):
        with pytest.raises(ValueError):
            CTUPConfig().replace(k=-1)

    def test_frozen(self):
        config = CTUPConfig()
        with pytest.raises(AttributeError):
            config.k = 1  # type: ignore[misc]


class TestCounters:
    def test_snapshot_independent(self):
        counters = MonitorCounters(updates_processed=5)
        snap = counters.snapshot()
        counters.updates_processed = 9
        assert snap.updates_processed == 5

    def test_subtraction(self):
        a = MonitorCounters(updates_processed=10, cells_accessed=7)
        b = MonitorCounters(updates_processed=4, cells_accessed=2)
        diff = a - b
        assert diff.updates_processed == 6
        assert diff.cells_accessed == 5

    def test_total_update_time(self):
        counters = MonitorCounters(time_maintain_s=1.5, time_access_s=0.5)
        assert counters.total_update_time_s() == 2.0

    def test_as_dict_covers_all_fields(self):
        data = MonitorCounters().as_dict()
        assert data["updates_processed"] == 0
        assert "distance_rows" in data
        assert "doo_suppressed" in data


class TestCellState:
    def test_defaults(self):
        state = CellState()
        assert state.lower_bound == math.inf
        assert not state.illuminated
        assert state.place_count == 0

    def test_increase_decrease(self):
        state = CellState(lower_bound=0.0)
        state.decrease()
        state.decrease(2.0)
        assert state.lower_bound == -3.0
        state.increase(1.5)
        assert state.lower_bound == -1.5

    def test_infinite_bound_stays_infinite(self):
        # an empty / fully-maintained cell can absorb any decrement.
        state = CellState()
        state.decrease(5.0)
        assert state.lower_bound == math.inf
