"""Rule modules; importing this package populates the registry."""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    catalog,
    contracts,
    counters,
    deprecation,
    determinism,
    durability,
    flowcounters,
    hygiene,
    kernels,
    locks,
    obs,
    phases,
    state,
    threads,
)
from repro.lint import typing_gate  # noqa: F401  (registers RPLT01)
