"""Monitor state checkpointing.

A monitoring server restarts — deploys, crashes, failovers — and the
paper's initialization is the expensive step it should not repeat: it
touches every place. A checkpoint captures everything the update
algorithm needs (unit positions, cell bounds, the maintained band,
DecHash) in a plain-JSON document; restoring rebuilds an OptCTUP that
continues exactly where the original left off, provided the same place
set is supplied (places are static and typically live in the lower
storage level already).
"""

from repro.persist.checkpoint import (
    CheckpointError,
    restore_optctup,
    snapshot_optctup,
)

__all__ = ["CheckpointError", "snapshot_optctup", "restore_optctup"]
