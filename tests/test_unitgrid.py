"""Property tests: the bucketed unit index is an *exact* work reducer.

The :class:`UnitGridIndex` only prunes candidates; every kernel result
must stay bit-for-bit identical to the linear scan and to the scalar
oracle. Hypothesis drives random worlds that deliberately include the
awkward geometry: places sitting exactly on cell edges, units on (and
slightly outside) the space border, and moves that cross buckets,
stay within one bucket, or leave the space entirely.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.safety import brute_force_safeties
from repro.core.units import UnitIndex
from repro.geometry import Point, Rect
from repro.grid import GridPartition
from repro.index import UnitGridIndex
from repro.model import LocationUpdate, Place, Unit

RADIUS = 0.15


def make_index(unit_xy, granularity, attach=True):
    units = [Unit(i, Point(x, y), RADIUS) for i, (x, y) in enumerate(unit_xy)]
    index = UnitIndex(units)
    if attach:
        index.grid_min_fleet = 1  # force the bucketed path for any fleet
        index.attach_grid(GridPartition.unit_square(granularity))
    return index


def oracle_ap(places, index):
    """AP per place id via the scalar O(|P|*|U|) reference."""
    safeties = brute_force_safeties(places, list(index))
    return {p.place_id: safeties[p.place_id] + p.required_protection for p in places}


def coords(granularity):
    """A coordinate, biased toward cell edges and the space border."""
    return st.one_of(
        st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False),
        st.integers(0, granularity).map(lambda i: i / granularity),
        st.sampled_from([0.0, 1.0]),
    )


def unit_coords():
    """Unit positions may drift (slightly) outside the monitored space."""
    return st.one_of(
        st.floats(-0.05, 1.05, allow_nan=False, allow_infinity=False),
        st.sampled_from([0.0, 1.0, -0.05, 1.05]),
    )


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data(), granularity=st.integers(2, 9))
def test_bucketed_kernels_match_brute_force(data, granularity):
    unit_xy = data.draw(
        st.lists(st.tuples(unit_coords(), unit_coords()), min_size=1, max_size=30)
    )
    place_xy = data.draw(
        st.lists(
            st.tuples(coords(granularity), coords(granularity)),
            min_size=1,
            max_size=40,
        )
    )
    index = make_index(unit_xy, granularity)
    grid = index.grid_index.grid
    places = [Place(i, Point(x, y), 0) for i, (x, y) in enumerate(place_xy)]

    # a few moves first, so the comparison runs against *maintained*
    # buckets, not the freshly built ones.
    n_moves = data.draw(st.integers(0, 10))
    for _ in range(n_moves):
        uid = data.draw(st.integers(0, len(unit_xy) - 1))
        new = Point(data.draw(unit_coords()), data.draw(unit_coords()))
        index.apply(LocationUpdate(uid, index.location_of(uid), new))
    assert index.grid_index.check() == []

    expected = oracle_ap(places, index)

    # per-cell kernel, exactly how the monitors drive it.
    by_cell = {}
    for place in places:
        by_cell.setdefault(grid.cell_of(place.location), []).append(place)
    for cell, cell_places in by_cell.items():
        xs = np.array([p.location.x for p in cell_places])
        ys = np.array([p.location.y for p in cell_places])
        ap, _ = index.ap_counts_near(xs, ys, grid.cell_rect(cell))
        for place, got in zip(cell_places, ap):
            assert got == expected[place.place_id], (cell, place.location)

    # scalar kernel.
    for place in places:
        assert index.ap_of_point(place.location) == expected[place.place_id]


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data(), granularity=st.integers(2, 9))
def test_ap_counts_bucketed_equals_linear(data, granularity):
    unit_xy = data.draw(
        st.lists(st.tuples(unit_coords(), unit_coords()), min_size=1, max_size=25)
    )
    # batch points anywhere, including outside the monitored space.
    px = data.draw(
        st.lists(
            st.tuples(
                st.floats(-0.2, 1.2, allow_nan=False),
                st.floats(-0.2, 1.2, allow_nan=False),
            ),
            min_size=1,
            max_size=50,
        )
    )
    xs = np.array([x for x, _ in px])
    ys = np.array([y for _, y in px])
    bucketed = make_index(unit_xy, granularity)
    linear = make_index(unit_xy, granularity, attach=False)
    assert np.array_equal(bucketed.ap_counts(xs, ys), linear.ap_counts(xs, ys))


class TestUnitGridIndex:
    def grid(self):
        return GridPartition.unit_square(5)

    def test_rejects_non_positive_radius(self):
        xs = np.array([0.5])
        ys = np.array([0.5])
        with pytest.raises(ValueError):
            UnitGridIndex(self.grid(), xs, ys, 0.0)

    def test_border_and_outside_units_are_found(self):
        index = make_index([(1.0, 1.0), (1.05, 0.5), (-0.05, 0.0)], granularity=5)
        grid = index.grid_index.grid
        # each unit protects the nearest corner/edge of the space.
        assert index.ap_of_point(Point(1.0, 1.0)) == 1
        assert index.ap_of_point(Point(1.0, 0.5)) == 1
        assert index.ap_of_point(Point(0.0, 0.0)) == 1
        ap, _ = index.ap_counts_near(
            np.array([1.0]), np.array([1.0]), grid.cell_rect((4, 4))
        )
        assert ap[0] == 1

    def test_within_bucket_move_sees_live_position(self):
        # both positions bucket to cell (0, 0) of a 2x2 grid; the cached
        # candidate set must survive while the exact filter re-reads the
        # moved coordinates.
        index = make_index([(0.05, 0.05)], granularity=2)
        probe = Point(0.3, 0.3)
        assert index.ap_of_point(probe) == 0
        index.apply(LocationUpdate(0, Point(0.05, 0.05), Point(0.25, 0.25)))
        assert index.ap_of_point(probe) == 1
        assert index.grid_index.check() == []

    def test_cross_bucket_move_invalidates_cached_blocks(self):
        index = make_index([(0.1, 0.1)], granularity=5)
        grid = index.grid_index.grid
        far = grid.cell_rect((4, 4))
        near = grid.cell_rect((0, 0))
        # prime the block caches for both neighbourhoods.
        assert index.ap_counts_near(np.array([0.9]), np.array([0.9]), far)[0][0] == 0
        assert index.ap_counts_near(np.array([0.1]), np.array([0.1]), near)[0][0] == 1
        index.apply(LocationUpdate(0, Point(0.1, 0.1), Point(0.9, 0.9)))
        assert index.ap_counts_near(np.array([0.9]), np.array([0.9]), far)[0][0] == 1
        assert index.ap_counts_near(np.array([0.1]), np.array([0.1]), near)[0][0] == 0
        assert index.grid_index.check() == []

    def test_candidate_rows_sorted_and_superset_of_reachable(self):
        rng = np.random.default_rng(3)
        xy = rng.random((40, 2))
        index = make_index([tuple(p) for p in xy], granularity=4)
        rect = index.grid_index.grid.cell_rect((1, 2))
        candidates = index.grid_index.candidate_rows(rect)
        assert list(candidates) == sorted(candidates)
        reachable, examined = index.grid_index.units_reaching(rect)
        assert examined == len(candidates)
        assert set(reachable).issubset(set(candidates))

    def test_kernel_stats_record_pruning(self):
        rng = np.random.default_rng(11)
        xy = rng.random((60, 2))
        index = make_index([tuple(p) for p in xy], granularity=6)
        rect = index.grid_index.grid.cell_rect((2, 2))
        index.stats.reset()
        index.ap_counts_near(np.array([0.45]), np.array([0.45]), rect)
        assert index.stats.queries == 1
        # the bucket gather examined strictly fewer rows than the fleet.
        assert 0 < index.stats.candidate_units < len(xy)
        assert index.stats.reachable_units <= index.stats.candidate_units
