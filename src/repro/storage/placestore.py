"""The lower storage level: all places, grouped by grid cell.

A :class:`PlaceStore` lays the (static) place set out in pages, one page
run per grid cell, mirroring the paper's lower level. Monitors never
hold the full place set; they call :meth:`read_cell` when a cell must be
illuminated/accessed, which costs page reads, and :meth:`cell_arrays`
for the vectorised safety computation (page reads charged on the first
touch, later calls served — and separately counted — from an immutable
per-cell SoA snapshot cache).
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.grid.partition import CellId, GridPartition
from repro.model import Place
from repro.storage.buffer import BufferPool
from repro.storage.iostats import IoStats
from repro.storage.pagestore import PageStore


class CellArrays:
    """Columnar projection of one cell's places (for numpy kernels)."""

    __slots__ = ("ids", "xs", "ys", "required")

    def __init__(self, places: Sequence[Place]) -> None:
        self.ids = np.array([p.place_id for p in places], dtype=np.int64)
        self.xs = np.array([p.location.x for p in places], dtype=np.float64)
        self.ys = np.array([p.location.y for p in places], dtype=np.float64)
        self.required = np.array(
            [p.required_protection for p in places], dtype=np.int64
        )

    def __len__(self) -> int:
        return len(self.ids)


class PlaceStore:
    """Cell-clustered storage of the full place set.

    Parameters
    ----------
    grid:
        the space partition; every place is assigned to exactly one cell.
    places:
        the static place set.
    page_capacity:
        places per simulated page.
    buffer_pages:
        if positive, reads go through an LRU buffer pool of that many
        pages (the buffer ablation); if zero, every read is physical.
    """

    def __init__(
        self,
        grid: GridPartition,
        places: Iterable[Place],
        page_capacity: int = 64,
        buffer_pages: int = 0,
    ) -> None:
        self.grid = grid
        self._pages = PageStore(page_capacity=page_capacity)
        self._buffer = BufferPool(self._pages, buffer_pages)
        self._cell_pages: dict[CellId, list[int]] = {}
        self._cell_place_counts: dict[CellId, int] = {}
        self._place_cells: dict[int, CellId] = {}
        self._array_cache: dict[CellId, CellArrays] = {}
        self._place_count = 0
        self._fingerprint: str | None = None
        self._bulk_load(places)

    def _bulk_load(self, places: Iterable[Place]) -> None:
        by_cell: dict[CellId, list[Place]] = {}
        for place in places:
            if place.place_id in self._place_cells:
                raise ValueError(f"duplicate place id {place.place_id}")
            cell = self.grid.cell_of(place.location)
            self._place_cells[place.place_id] = cell
            by_cell.setdefault(cell, []).append(place)
            self._place_count += 1
        for cell, cell_places in by_cell.items():
            self._cell_pages[cell] = self._pages.allocate_all(cell_places)
            self._cell_place_counts[cell] = len(cell_places)

    @property
    def io_stats(self) -> IoStats:
        """Shared traffic counters (physical and buffered reads)."""
        return self._pages.stats

    @property
    def buffer(self) -> BufferPool:
        return self._buffer

    @property
    def place_count(self) -> int:
        return self._place_count

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def cell_place_count(self, cell: CellId) -> int:
        """How many places live in ``cell`` (0 for empty cells)."""
        return self._cell_place_counts.get(cell, 0)

    def occupied_cells(self) -> list[CellId]:
        """Cells that contain at least one place."""
        return list(self._cell_pages)

    def read_cell(self, cell: CellId) -> list[Place]:
        """Load all places of ``cell``, paying the page reads."""
        places: list[Place] = []
        for page_id in self._cell_pages.get(cell, ()):
            places.extend(self._buffer.read(page_id).records)
        return places

    def read_cell_with_arrays(self, cell: CellId) -> tuple[list[Place], CellArrays]:
        """Load a cell's places and their columnar view in one charge.

        The monitors need both the :class:`Place` objects (to maintain)
        and the columnar projection (to vectorise the safety kernel);
        fetching them separately would double-count the page reads. The
        arrays are row-aligned with the returned place list.
        """
        places = self.read_cell(cell)
        arrays = self._array_cache.get(cell)
        if arrays is None:
            arrays = CellArrays(places)
            self._array_cache[cell] = arrays
        return places, arrays

    def cell_arrays(self, cell: CellId) -> CellArrays:
        """Columnar view of the cell; I/O is charged on the first touch only.

        Places are immutable, so the projection is built once per cell —
        paying the page walk like :meth:`read_cell` — and every later
        call is served from the SoA cache. Cache hits are still visible
        in the accounting (``IoStats.array_hits``, in page equivalents)
        so re-evaluation traffic is measurable without pretending the
        pages were read again.
        """
        arrays = self._array_cache.get(cell)
        if arrays is not None:
            self._pages.stats.array_hits += len(self._cell_pages.get(cell, ()))
            return arrays
        places = []
        for page_id in self._cell_pages.get(cell, ()):
            places.extend(self._buffer.read(page_id).records)
        arrays = CellArrays(places)
        self._array_cache[cell] = arrays
        return arrays

    # -- catalog mutation surface -----------------------------------------
    #
    # The place set was constructor-frozen until the reconfiguration
    # layer (repro.control) arrived. These mutators keep the page layout,
    # the per-cell directory, the SoA cache and the buffer pool mutually
    # consistent; they are *owner API* — the RPL015 lint rule confines
    # callers to repro.storage and repro.control, so every catalog change
    # flows through an epoch-bumping control event.

    def has_place(self, place_id: int) -> bool:
        """Whether ``place_id`` is currently stored."""
        return place_id in self._place_cells

    def cell_of_place(self, place_id: int) -> CellId:
        """The cell a stored place lives in (KeyError when unknown)."""
        try:
            return self._place_cells[place_id]
        except KeyError:
            raise KeyError(f"no such place: {place_id}") from None

    def peek_place(self, place_id: int) -> Place:
        """Fetch one stored place without accounting (control plane use)."""
        cell = self.cell_of_place(place_id)
        for page_id in self._cell_pages.get(cell, ()):
            for place in self._pages.peek(page_id).records:
                if place.place_id == place_id:
                    return place
        raise KeyError(f"no such place: {place_id}")  # pragma: no cover

    def peek_cell(self, cell: CellId) -> list[Place]:
        """All places of ``cell`` without accounting (control plane use)."""
        places: list[Place] = []
        for page_id in self._cell_pages.get(cell, ()):
            places.extend(self._pages.peek(page_id).records)
        return places

    def peek_all_places(self) -> list[Place]:
        """Every stored place, unaccounted, in cell-directory order."""
        out: list[Place] = []
        for cell in self._cell_pages:
            out.extend(self.peek_cell(cell))
        return out

    def _invalidate_cell(self, cell: CellId) -> None:
        """Drop every cache derived from a mutated cell's pages."""
        self._array_cache.pop(cell, None)
        for page_id in self._cell_pages.get(cell, ()):
            self._buffer.invalidate(page_id)
        self._fingerprint = None

    def add_place(self, place: Place) -> CellId:
        """Insert one place; returns the cell it landed in.

        The place goes into its cell's last page when that page has
        room, otherwise a fresh page is appended to the cell's run (a
        brand-new cell gets its first page). Charges the page write(s)
        the placement costs.
        """
        if place.place_id in self._place_cells:
            raise ValueError(f"duplicate place id {place.place_id}")
        cell = self.grid.cell_of(place.location)
        pages = self._cell_pages.get(cell)
        if pages:
            last = self._pages.peek(pages[-1])
            if len(last) < self._pages.page_capacity:
                self._pages.replace(pages[-1], last.records + (place,))
            else:
                pages.append(self._pages.allocate([place]))
        else:
            self._cell_pages[cell] = [self._pages.allocate([place])]
        self._cell_place_counts[cell] = self._cell_place_counts.get(cell, 0) + 1
        self._place_cells[place.place_id] = cell
        self._place_count += 1
        self._invalidate_cell(cell)
        return cell

    def remove_place(self, place_id: int) -> Place:
        """Delete one place; returns the removed record.

        The holding page is rewritten without the record; a page that
        empties is released, and a cell that empties disappears from the
        directory entirely (an empty cell must look exactly like a cell
        that never had places — the monitors' cell-state tables key on
        directory membership).
        """
        cell = self.cell_of_place(place_id)
        self._invalidate_cell(cell)
        removed: Place | None = None
        for page_id in list(self._cell_pages.get(cell, ())):
            records = self._pages.peek(page_id).records
            kept = tuple(p for p in records if p.place_id != place_id)
            if len(kept) == len(records):
                continue
            removed = next(p for p in records if p.place_id == place_id)
            if kept:
                self._pages.replace(page_id, kept)
            else:
                self._pages.release(page_id)
                self._buffer.invalidate(page_id)
                self._cell_pages[cell].remove(page_id)
            break
        assert removed is not None  # _place_cells said it was here
        del self._place_cells[place_id]
        self._place_count -= 1
        remaining = self._cell_place_counts[cell] - 1
        if remaining:
            self._cell_place_counts[cell] = remaining
        else:
            del self._cell_place_counts[cell]
            del self._cell_pages[cell]
        return removed

    def reweight(self, place_id: int, required_protection: int) -> Place:
        """Rewrite a place's required protection in place; returns the
        *old* record (same id, location and kind are kept)."""
        cell = self.cell_of_place(place_id)
        for page_id in self._cell_pages.get(cell, ()):
            records = self._pages.peek(page_id).records
            for index, place in enumerate(records):
                if place.place_id != place_id:
                    continue
                patched = Place(
                    place_id=place.place_id,
                    location=place.location,
                    required_protection=required_protection,
                    kind=place.kind,
                )
                self._pages.replace(
                    page_id,
                    records[:index] + (patched,) + records[index + 1 :],
                )
                self._invalidate_cell(cell)
                return place
        raise KeyError(f"no such place: {place_id}")  # pragma: no cover

    def iter_all_places(self) -> Iterable[Place]:
        """Stream every stored place (used by oracles and initialisation).

        Accounting: charges one read per page, like a full scan.
        """
        for cell in self._cell_pages:
            yield from self.read_cell(cell)

    @property
    def fingerprint(self) -> str:
        """A stable digest of the stored place set (checkpoint identity).

        Floats are hashed via ``float.hex()`` so the digest is invariant
        across Python versions that format ``repr`` differently. The
        scan is unaccounted (``peek``): fingerprinting a live monitor at
        checkpoint time must not perturb its I/O counters. The digest is
        cached until a catalog mutation invalidates it.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            lines: list[str] = []
            for pages in self._cell_pages.values():
                for page_id in pages:
                    for place in self._pages.peek(page_id).records:
                        lines.append(
                            f"{place.place_id}:{place.location.x.hex()}:"
                            f"{place.location.y.hex()}:{place.required_protection}\n"
                        )
            lines.sort()
            for line in lines:
                digest.update(line.encode("ascii"))
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def export_cache_state(self) -> dict[str, Any]:
        """JSON-codable picture of the store's transient caches.

        Captures which cells sit in the SoA array cache, which pages are
        resident in the buffer pool (LRU order), and the pool's hit/miss
        counters — everything :meth:`restore_cache_state` needs to bring
        a freshly bulk-loaded store back to the snapshotted cache state.
        """
        return {
            "arrays": [self.grid.linear(cell) for cell in self._array_cache],
            "frames": self._buffer.frame_ids(),
            "buffer_hits": self._buffer.hits,
            "buffer_misses": self._buffer.misses,
        }

    def restore_cache_state(self, state: Mapping[str, Any]) -> None:
        """Rebuild the transient caches captured by :meth:`export_cache_state`.

        The array cache is repopulated by re-projecting the recorded
        cells and the buffer frames are reloaded out of band; callers
        overwrite the shared :class:`IoStats` afterwards, so any
        accounting noise from the rebuild is erased.
        """
        self._array_cache.clear()
        for index in state["arrays"]:
            cell = self.grid.from_linear(int(index))
            places: list[Place] = []
            for page_id in self._cell_pages.get(cell, ()):
                places.extend(self._pages.peek(page_id).records)
            self._array_cache[cell] = CellArrays(places)
        self._buffer.restore_frames([int(p) for p in state["frames"]])
        self._buffer.hits = int(state["buffer_hits"])
        self._buffer.misses = int(state["buffer_misses"])
