"""Burst execution equivalence: coalescing and kernels change cost, not results.

The burst engine promises three executions of the same update stream are
interchangeable:

(a) **per-update** — ``BatchProcessor(coalesce=False)``, every raw update
    applied through ``apply_update`` (the pre-coalescing behaviour);
(b) **coalesced-scalar** — duplicate-unit moves collapse into waypoint
    chains, applied by the schemes' scalar chain folds;
(c) **coalesced-vectorised** — the same chains run through the
    ``repro.core.kernels`` numpy passes (``config.burst_kernels``).

(b) and (c) must be *fully* bit-identical: results, every logical
counter, the exported scheme state. (a) is bit-identical in results and
in every counter except the ones that measure exactly the work
coalescing exists to skip (:data:`COALESCING_COUNTERS`).

The property runs every registered scheme, plain and behind a sharded
monitor (1 and 4 shards), over streams whose bursts are guaranteed to
contain duplicate-unit chains.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import SCHEMES
from repro.core import CTUPConfig
from repro.core.batch import BatchProcessor
from repro.shard import ShardedMonitor
from repro.workloads import (
    RandomWalkMobility,
    generate_places,
    generate_units,
    record_stream,
)

#: counters that may legitimately differ between per-update and
#: coalesced executions — exactly the work coalescing skips: chain
#: interiors are neither scanned against the maintained table
#: (``maintained_scans`` and its ``distance_rows`` charge) nor applied
#: as individual updates (``coalesced_updates`` reports the skips;
#: per-shard ``updates_processed`` counts *delivered* raw updates, and a
#: chain is delivered whole to every shard its steps touch).
COALESCING_COUNTERS = {
    "coalesced_updates",
    "maintained_scans",
    "distance_rows",
    "updates_processed",
}

PLACES = generate_places(220, seed=31)
FLEET = 10
STREAM_LEN = 72


def _logical(counters: Any) -> dict[str, Any]:
    """Counter fields minus wall-clock timings."""
    return {
        f.name: getattr(counters, f.name)
        for f in dataclasses.fields(counters)
        if not f.name.startswith("time_")
    }


def _strip_times(state: dict[str, Any]) -> dict[str, Any]:
    """An ``export_state()`` document with timing fields removed, so
    two executions can be compared bit-for-bit."""
    out = dict(state)
    out["counters"] = {
        k: v for k, v in state["counters"].items() if not k.startswith("time_")
    }
    if "scheme_state" in out and isinstance(out["scheme_state"], dict):
        scheme = dict(out["scheme_state"])
        if "shards" in scheme:
            scheme["shards"] = [
                _strip_times(child) for child in scheme["shards"]
            ]
        out["scheme_state"] = scheme
    return out


def _stream(seed: int) -> list:
    units = generate_units(FLEET, 0.1, seed=seed)
    return record_stream(
        RandomWalkMobility(units, step=0.05, seed=seed + 1), STREAM_LEN
    )


def _run(
    scheme: str,
    shards: int,
    *,
    coalesce: bool,
    kernels: bool,
    seed: int,
    batch_size: int,
) -> dict[str, Any]:
    config = CTUPConfig(
        k=4,
        delta=2,
        protection_range=0.1,
        granularity=5,
        burst_kernels=kernels,
    )
    units = generate_units(FLEET, config.protection_range, seed=seed)
    if shards == 0:
        monitor: Any = SCHEMES[scheme](config, PLACES, units)
    else:
        monitor = ShardedMonitor(
            config, PLACES, units, shards=shards, scheme=scheme
        )
    monitor.initialize()
    processor = BatchProcessor(monitor, coalesce=coalesce)
    processor.run_stream(_stream(seed), batch_size=batch_size)
    out = {
        "pairs": [(r.place_id, r.safety) for r in monitor.top_k()],
        "sk": monitor.sk(),
        "counters": _logical(monitor.counters),
        "state": _strip_times(monitor.export_state()),
        "moves": processor.moves_processed,
    }
    if shards:
        out["merged"] = _logical(monitor.merged_counters())
        out["deliveries"] = (monitor.full_deliveries, monitor.sync_deliveries)
    return out


def _counter_diff(d1: dict[str, Any], d2: dict[str, Any]) -> set[str]:
    return {k for k in d1 if d1[k] != d2[k]}


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
@pytest.mark.parametrize("shards", [0, 1, 4], ids=["plain", "s1", "s4"])
@settings(max_examples=4, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    batch_size=st.sampled_from([8, 24]),
)
def test_burst_modes_are_bit_identical(scheme, shards, seed, batch_size):
    a = _run(
        scheme, shards, coalesce=False, kernels=False,
        seed=seed, batch_size=batch_size,
    )
    b = _run(
        scheme, shards, coalesce=True, kernels=False,
        seed=seed, batch_size=batch_size,
    )
    c = _run(
        scheme, shards, coalesce=True, kernels=True,
        seed=seed, batch_size=batch_size,
    )

    # the workload must actually exercise coalescing: with a 10-unit
    # fleet and bursts of >= 8 every batch repeats units. Schemes with a
    # chain-aware maintain phase (and the sharded wrapper, which chains
    # at the routing layer) additionally report the skipped work; plain
    # naive/incremental replay chains raw-for-raw and skip nothing.
    assert b["moves"] < a["moves"]
    if shards or scheme in ("basic", "opt"):
        assert b["counters"]["coalesced_updates"] > 0

    # results: identical across all three modes.
    assert a["pairs"] == b["pairs"] == c["pairs"]
    assert a["sk"] == b["sk"] == c["sk"]

    # (b) vs (c): the vectorised kernels are bit-identical in *every*
    # observable — counters, exported cell/maintained/DecHash state,
    # shard deliveries.
    assert b["counters"] == c["counters"], _counter_diff(
        b["counters"], c["counters"]
    )
    assert b["state"] == c["state"]
    if shards:
        assert b["merged"] == c["merged"], _counter_diff(
            b["merged"], c["merged"]
        )
        assert b["deliveries"] == c["deliveries"]

    # (a) vs (b): differences confined to the coalescing counters.
    diff = _counter_diff(a["counters"], b["counters"])
    assert diff <= COALESCING_COUNTERS, diff
    if shards:
        merged_diff = _counter_diff(a["merged"], b["merged"])
        assert merged_diff <= COALESCING_COUNTERS, merged_diff


def test_registry_covers_the_expected_schemes():
    """The property above iterates the live registry; pin the floor so a
    scheme silently dropping out of ``SCHEMES`` fails loudly here."""
    assert {"naive", "basic", "opt", "incremental"} <= set(SCHEMES)
