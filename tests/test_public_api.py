"""The public API surface: exports resolve, are documented, and stay put."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.engine",
    "repro.geometry",
    "repro.grid",
    "repro.storage",
    "repro.workloads",
    "repro.roadnet",
    "repro.bench",
    "repro.ext",
    "repro.index",
    "repro.persist",
    "repro.experiments",
    "repro.validate",
    "repro.shard",
    "repro.api",
    "repro.obs",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_callables_documented(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if callable(obj):
            assert obj.__doc__, f"{name}.{symbol} lacks a docstring"


def test_top_level_surface_is_stable():
    import repro

    expected = {
        "CTUPConfig",
        "NaiveCTUP",
        "BasicCTUP",
        "OptCTUP",
        "Place",
        "Unit",
        "LocationUpdate",
        "Oracle",
        "generate_places",
        "generate_units",
        "make_monitor",
        "open_session",
        "MonitorSession",
        "ShardedMonitor",
        "ShardPlan",
        "ShardRouter",
        "GlobalTopK",
        "ShardSpec",
        "DurabilitySpec",
        "ObsSpec",
        "Observability",
    }
    assert expected <= set(repro.__all__)


def test_facade_schemes_cover_all_monitor_classes():
    from repro.api import SCHEMES
    from repro.core import BasicCTUP, NaiveCTUP, OptCTUP
    from repro.core.incremental import IncrementalNaiveCTUP

    assert set(SCHEMES.values()) == {
        NaiveCTUP,
        BasicCTUP,
        OptCTUP,
        IncrementalNaiveCTUP,
    }


def test_monitor_classes_share_contract():
    from repro.core import BasicCTUP, CTUPMonitor, NaiveCTUP, OptCTUP
    from repro.core.incremental import IncrementalNaiveCTUP

    for cls in (NaiveCTUP, BasicCTUP, OptCTUP, IncrementalNaiveCTUP):
        assert issubclass(cls, CTUPMonitor)
        assert cls.name != CTUPMonitor.name


def test_version_present():
    import repro

    major, *_ = repro.__version__.split(".")
    assert int(major) >= 1
