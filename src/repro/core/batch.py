"""Batch update processing and exact move coalescing.

Location updates arrive in bursts — one wireless poll cycle can deliver
dozens. Processing them one by one runs the access phase after *every*
message even though the answer is only read after the burst.
:class:`BatchProcessor` applies a whole batch's maintain phase first
(``apply_update`` calls commute across updates) and runs one
``refresh()`` at the end.

On top of the deferred access phase, the processor **coalesces** a
burst before applying it: all moves of one unit collapse into a single
:class:`~repro.model.CoalescedMove` carrying the full waypoint chain.
Why this is exact:

* maintain-phase applications commute across *different* units, so
  regrouping the burst by unit changes no state;
* for one unit, position tracking and maintained-safety adjustment
  telescope over the chain — only the endpoints matter — while Table
  I/II bound maintenance is *not* a function of the endpoints (``P→P``
  decreases, so a chain ``P→P→P`` must decrease twice) and is therefore
  folded step by step over the waypoints.

Schemes opt into the chain-aware path by overriding
``CTUPMonitor._apply_burst``; everything else replays the raw updates
and stays exactly per-update. Either way the burst is exact, not
approximate: the final ``refresh()`` restores the result invariant
before any answer is read. What changes is the cost — a cell whose
bound dips below SK and recovers within one burst is never touched, and
a unit reporting m times costs one maintained-table scan instead of m.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.metrics import UpdateReport
from repro.core.monitor import CTUPMonitor
from repro.model import CoalescedMove, LocationUpdate


def coalesce_burst(updates: Sequence[LocationUpdate]) -> list[CoalescedMove]:
    """Group a burst into one waypoint chain per unit.

    Chains come out in first-appearance order of their units, each
    holding that unit's raw updates in arrival order. The chain contract
    is validated here: every update's ``old_location`` must equal its
    predecessor's ``new_location`` (same squared-distance tolerance as
    ``UnitIndex.apply``), otherwise the stream itself is inconsistent
    and the error should surface before any state is touched.
    """
    chains: dict[int, list[LocationUpdate]] = {}
    for update in updates:
        chain = chains.get(update.unit_id)
        if chain is None:
            chains[update.unit_id] = [update]
            continue
        previous = chain[-1].new_location
        if previous.squared_distance_to(update.old_location) > 1e-18:
            raise ValueError(
                f"update for unit {update.unit_id} carries old location "
                f"{update.old_location} but the burst already moved it "
                f"to {previous}"
            )
        chain.append(update)
    return [
        CoalescedMove(unit_id, tuple(chain))
        for unit_id, chain in chains.items()
    ]


class BatchProcessor:
    """Exact burst processing on top of any CTUP monitor.

    ``coalesce=False`` disables move coalescing and replays the burst
    one ``apply_update`` at a time (the pre-coalescing behaviour) —
    kept as an ablation/back-to-back test hook; results are identical
    either way.
    """

    def __init__(self, monitor: CTUPMonitor, *, coalesce: bool = True) -> None:
        if not isinstance(monitor, CTUPMonitor):
            raise TypeError(
                "batch processing requires a CTUPMonitor, got "
                f"{type(monitor).__name__}"
            )
        self.monitor = monitor
        self.coalesce = coalesce
        self.batches_processed = 0
        self.updates_processed = 0
        #: unit transitions actually applied after coalescing — the
        #: spread to ``updates_processed`` is the raw/coalesced split.
        self.moves_processed = 0

    def process_batch(self, updates: Sequence[LocationUpdate]) -> UpdateReport:
        """Apply a burst of updates; the result is current afterwards.

        Returns one report covering the whole batch: ``unit_id`` is
        ``None`` (a burst has no single mover), ``batch_size`` counts
        the raw updates and ``coalesced_size`` the unit transitions that
        remained after coalescing.

        An empty batch is a documented no-op: nothing is applied, no
        counter moves, and an empty report (``batch_size == 0``) carrying
        the current SK is returned — session-level batchers can flush
        quiet poll cycles without guarding.
        """
        monitor = self.monitor
        if not updates:
            return UpdateReport(
                sk=monitor.sk(), batch_size=0, coalesced_size=0
            )
        counters = monitor.counters
        maintain_before = counters.time_maintain_s
        access_before = counters.time_access_s
        if self.coalesce:
            moves = coalesce_burst(updates)
            monitor.apply_burst(moves)
            n_moves = len(moves)
        else:
            for update in updates:
                monitor.apply_update(update)
            n_moves = len(updates)
        accessed = monitor.refresh()
        self.batches_processed += 1
        self.updates_processed += len(updates)
        self.moves_processed += n_moves
        return UpdateReport(
            sk=monitor.sk(),
            cells_accessed=accessed,
            maintain_seconds=counters.time_maintain_s - maintain_before,
            access_seconds=counters.time_access_s - access_before,
            batch_size=len(updates),
            coalesced_size=n_moves,
        )

    def run_stream(
        self,
        updates: Iterable[LocationUpdate],
        batch_size: int,
        collect: bool = False,
    ) -> int | list[UpdateReport]:
        """Chop a stream into fixed-size batches and process them all.

        Returns the number of updates consumed, or the per-batch
        :class:`UpdateReport` list when ``collect`` is set (matching
        ``CTUPMonitor.run_stream`` ergonomics).
        """
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        reports: list[UpdateReport] = []
        pending: list[LocationUpdate] = []
        count = 0
        for update in updates:
            pending.append(update)
            if len(pending) == batch_size:
                reports.append(self.process_batch(pending))
                count += len(pending)
                pending = []
        if pending:
            reports.append(self.process_batch(pending))
            count += len(pending)
        return reports if collect else count
