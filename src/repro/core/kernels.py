"""Vectorized multi-unit maintain kernels (the burst execution engine).

Per-update maintenance runs a dozen tiny numpy calls per move — stencil
classification, maintained-table scan, bound adjustment — and at burst
sizes in the tens the *call overhead* dominates the arithmetic. The
kernels here batch one whole coalesced burst per pass:

* :func:`apply_burst_basic` / :func:`apply_burst_opt` — the maintain
  phase of a burst. Unit positions move through
  ``UnitIndex.apply_moves`` (one vectorised write + re-bucket), the
  maintained table absorbs all endpoint moves in one ``(rows, moves)``
  broadcast, and cell bounds are updated from one N/P/F classification
  of *all* waypoint disks against their candidate blocks at once.
* :func:`refill_below_sk` — the deferred access-phase refill: one
  gather of every cell bound, one stable sort, then the cells below SK
  are accessed in exactly the order the scalar argmin loop would pick.

Everything is bit-identical to the scalar coalesced path (and therefore
to per-update processing — see :mod:`repro.core.batch`): final bounds,
maintained safeties, DecHash contents, top-k, SK and every logical
counter. The only structural liberty taken is *folding* the per-step
Table I/II transitions after classification: chain steps whose table
entry is a complete no-op (``N→N``, ``N→P``, ``F→F``; for Table I also
``P→F``) touch neither bounds, hash nor counters in the scalar path and
are dropped before the fold, and Table I's remaining ±1 deltas are
summed per cell (integer-valued float adds are exact, and per-step
counter bumps equal the per-cell positive/negative step counts).

This module is covered by reprolint rule RPL009: ``for``/``while``
statements iterating ``range``/``zip``/``enumerate``/``map`` — the
shape of a per-element scalar loop — are flagged so the vectorised
paths stay vectorised. The few irreducibly scalar tails (dict-backed
cell-state application, the stateful DecHash fold) carry explicit
suppressions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, Sequence

import numpy as np

from repro.core.tables import (
    HASH_INSERT,
    HASH_NONE,
    HASH_REMOVE,
    TABLE1,
    TABLE2_UNCONDITIONAL,
    table2_action,
)
from repro.geometry.relations import CellRelation
from repro.grid.cellstate import CellState
from repro.grid.partition import RELATION_OF_CODE, CellId, CircleStencil, GridPartition
from repro.model import CoalescedMove, Point

if TYPE_CHECKING:
    from repro.core.basic import BasicCTUP
    from repro.core.opt import OptCTUP
    from repro.obs.spec import Observability

_CODE_OF_REL = {rel: code for code, rel in RELATION_OF_CODE.items()}

#: Table I delta per packed transition code ``old * 3 + new``.
_TABLE1_LUT = np.zeros(9, dtype=np.int64)
for _rels, _delta in TABLE1.items():
    _TABLE1_LUT[_CODE_OF_REL[_rels[0]] * 3 + _CODE_OF_REL[_rels[1]]] = _delta

#: decoded (old, new) relation pair per packed transition code.
_RELS_OF_PACKED = [
    (RELATION_OF_CODE[code // 3], RELATION_OF_CODE[code % 3])
    for code in range(9)
]

#: packed codes whose Table II row can touch state or counters; the
#: complement (``N→N``, ``N→P``, ``F→F``) is unconditionally
#: ``(delta 0, no hash action)`` and never trips the DOO-suppression
#: counter (its Table I delta is 0 too), so dropping it from the fold is
#: exact.
_TABLE2_EFFECTIVE = np.array(
    [
        TABLE2_UNCONDITIONAL.get(rels) != (0, HASH_NONE)
        for rels in _RELS_OF_PACKED
    ],
    dtype=bool,
)

#: Table I deltas as a plain list — python-loop lookups in the DOO fold
#: skip the numpy scalar boxing.
_TABLE1_DELTAS = _TABLE1_LUT.tolist()

_ACT_NONE, _ACT_INSERT, _ACT_REMOVE = 0, 1, 2
_ACTION_CODE = {HASH_NONE: _ACT_NONE, HASH_INSERT: _ACT_INSERT, HASH_REMOVE: _ACT_REMOVE}


def _encode_action(entry: tuple[int, str]) -> tuple[int, int]:
    return entry[0], _ACTION_CODE[entry[1]]


#: Table II ``(delta, action)`` rows indexed ``[pair_in_hash][packed
#: code]`` — the whole conditional table as integer tuples, so the fold
#: below never touches enum-keyed dicts.
_TABLE2_LUT: tuple[tuple[tuple[int, int], ...], ...] = tuple(
    tuple(
        _encode_action(table2_action(old, new, in_hash))
        for old, new in _RELS_OF_PACKED
    )
    for in_hash in (False, True)
)


# -- shared passes ----------------------------------------------------------


def _chain_groups(
    grid: GridPartition,
    stencil: CircleStencil,
    moves: Sequence[CoalescedMove],
    olds: Sequence[Point],
) -> Iterator[
    tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]
]:
    """Classify every chain's waypoint disks, grouped by waypoint count.

    Yields ``(unit_ids, i_lo, j_lo, codes, valid)`` per group: ``codes``
    is the ``(G, p, bi, bj)`` relation-code tensor of each chain's
    waypoints against its *union* candidate block (anchored at
    ``(i_lo[g], j_lo[g])``, padded to the group's max block shape), and
    ``valid`` masks the padding. The union block is exactly the union of
    the per-waypoint blocks (floor is monotone and the bbox min/max are
    attained waypoint coordinates), so it covers every cell any waypoint
    disk can touch; cells beyond a single waypoint's own block are N for
    that waypoint by geometry, which is what makes classifying the union
    equivalent to the scalar per-step block walk.
    """
    radius = stencil.radius
    by_count: dict[int, list[int]] = {}
    for pos, move in enumerate(moves):  # reprolint: disable=RPL009 -- O(#chains) grouping bookkeeping, not per-element compute
        by_count.setdefault(move.raw_count + 1, []).append(pos)
    for members in by_count.values():
        cx = np.array(
            [
                [olds[pos].x]
                + [raw.new_location.x for raw in moves[pos].raws]
                for pos in members
            ],
            dtype=np.float64,
        )
        cy = np.array(
            [
                [olds[pos].y]
                + [raw.new_location.y for raw in moves[pos].raws]
                for pos in members
            ],
            dtype=np.float64,
        )
        unit_ids = np.array(
            [moves[pos].unit_id for pos in members], dtype=np.int64
        )
        # union candidate block per chain: same floor arithmetic as
        # CircleStencil.block_of applied to the waypoint bbox.
        space = grid.space
        i_lo = np.floor(
            (cx.min(axis=1) - radius - space.xmin) / grid.cell_width
        ).astype(np.int64)
        i_hi = np.floor(
            (cx.max(axis=1) + radius - space.xmin) / grid.cell_width
        ).astype(np.int64)
        j_lo = np.floor(
            (cy.min(axis=1) - radius - space.ymin) / grid.cell_height
        ).astype(np.int64)
        j_hi = np.floor(
            (cy.max(axis=1) + radius - space.ymin) / grid.cell_height
        ).astype(np.int64)
        np.maximum(i_lo, 0, out=i_lo)
        np.minimum(i_hi, grid.nx - 1, out=i_hi)
        np.maximum(j_lo, 0, out=j_lo)
        np.minimum(j_hi, grid.ny - 1, out=j_hi)
        bi = i_hi - i_lo + 1
        bj = j_hi - j_lo + 1
        live = (bi > 0) & (bj > 0)
        if not live.all():
            cx, cy = cx[live], cy[live]
            unit_ids = unit_ids[live]
            i_lo, j_lo = i_lo[live], j_lo[live]
            bi, bj = bi[live], bj[live]
        if len(cx) == 0:
            continue
        codes = stencil.classify_centers(
            cx, cy, i_lo, j_lo, int(bi.max()), int(bj.max())
        )
        valid = (
            np.arange(codes.shape[2])[None, :, None] < bi[:, None, None]
        ) & (np.arange(codes.shape[3])[None, None, :] < bj[:, None, None])
        yield unit_ids, i_lo, j_lo, codes, valid


def _maintained_endpoint_pass(
    monitor: "BasicCTUP | OptCTUP",
    moves: Sequence[CoalescedMove],
    olds: Sequence[Point],
) -> None:
    """Step 1 for the whole burst: one batched maintained-table scan."""
    old_x = np.array([p.x for p in olds], dtype=np.float64)
    old_y = np.array([p.y for p in olds], dtype=np.float64)
    new_x = np.array([m.last_new.x for m in moves], dtype=np.float64)
    new_y = np.array([m.last_new.y for m in moves], dtype=np.float64)
    rows = monitor.maintained.apply_unit_moves(
        old_x, old_y, new_x, new_y, monitor.config.protection_range
    )
    scanned = rows * len(moves)
    monitor.counters.maintained_scans += scanned
    # two point-in-disk tests (old and new endpoint) per scanned row.
    monitor.counters.distance_rows += 2 * scanned


def _table1_pass(
    monitor: "BasicCTUP | OptCTUP",
    moves: Sequence[CoalescedMove],
    olds: Sequence[Point],
    skip_illuminated: bool,
) -> None:
    """Fold Table I over every chain and apply per-cell aggregates.

    Per chain step the scalar path applies a ±1 delta and bumps one
    counter per non-zero delta; summing the deltas (``net``) and
    counting the positive/negative steps (``incs``/``decs``) per cell
    gives bit-identical bounds (integer-valued float adds commute
    exactly, ``inf`` absorbs either way) and counter totals. Cell
    eligibility (unknown cell, illuminated cell) is constant during the
    maintain phase, so filtering once per cell equals the scalar
    per-step filter.
    """
    grid = monitor.grid
    stencil = grid.stencil(monitor.config.protection_range)
    ny = grid.ny
    lin_parts: list[np.ndarray] = []
    net_parts: list[np.ndarray] = []
    inc_parts: list[np.ndarray] = []
    dec_parts: list[np.ndarray] = []
    for _unit_ids, i_lo, j_lo, codes, valid in _chain_groups(
        grid, stencil, moves, olds
    ):
        deltas = _TABLE1_LUT[codes[:, :-1] * 3 + codes[:, 1:]]
        net = deltas.sum(axis=1)
        incs = np.count_nonzero(deltas > 0, axis=1)
        decs = np.count_nonzero(deltas < 0, axis=1)
        touched = valid & ((incs + decs) > 0)
        g_idx, a_idx, b_idx = np.nonzero(touched)
        if len(g_idx) == 0:
            continue
        lin_parts.append((i_lo[g_idx] + a_idx) * ny + (j_lo[g_idx] + b_idx))
        net_parts.append(net[g_idx, a_idx, b_idx])
        inc_parts.append(incs[g_idx, a_idx, b_idx])
        dec_parts.append(decs[g_idx, a_idx, b_idx])
    if not lin_parts:
        return
    lin = np.concatenate(lin_parts)
    uniq, inverse = np.unique(lin, return_inverse=True)
    k = len(uniq)
    net_sum = np.bincount(
        inverse, weights=np.concatenate(net_parts).astype(np.float64), minlength=k
    ).astype(np.int64)
    inc_sum = np.bincount(
        inverse, weights=np.concatenate(inc_parts).astype(np.float64), minlength=k
    ).astype(np.int64)
    dec_sum = np.bincount(
        inverse, weights=np.concatenate(dec_parts).astype(np.float64), minlength=k
    ).astype(np.int64)
    states = monitor.cell_states
    counters = monitor.counters
    for cell_lin, d_net, n_inc, n_dec in zip(  # reprolint: disable=RPL009 -- dict-backed cell-state application; the burst is already reduced to unique touched cells
        uniq.tolist(), net_sum.tolist(), inc_sum.tolist(), dec_sum.tolist()
    ):
        state = states.get((cell_lin // ny, cell_lin % ny))
        if state is None or (skip_illuminated and state.illuminated):
            continue
        if d_net:
            state.lower_bound += float(d_net)
        counters.lb_increments += n_inc
        counters.lb_decrements += n_dec


def _table2_pass(
    monitor: "OptCTUP",
    moves: Sequence[CoalescedMove],
    olds: Sequence[Point],
) -> None:
    """Classify every chain in one pass, then fold Table II per entry.

    Unlike Table I, the DOO rows are path-dependent (a decrease arms the
    hash against further decreases until an ``→F`` transition clears
    it), so the per-``(unit, cell)`` fold replays the effective chain
    steps in order. The fold is *local*: a burst carries one chain per
    unit, so each ``(unit, cell)`` DecHash key is owned by exactly one
    entry and nothing else reads it mid-burst — membership is fetched
    once, folded as a plain bool through the integer-encoded Table II
    rows (:data:`_TABLE2_LUT`), and the dict is mutated only when the
    final membership differs from the initial one. Counters still count
    every *scalar-path* insert/remove/suppression, and the per-entry
    bound deltas sum exactly (integer-valued float adds, ``inf``
    absorbs). Entry order across distinct ``(unit, cell)`` pairs is
    irrelevant — bounds add exactly, the hash is keyed per pair — while
    within an entry chain order is preserved.
    """
    grid = monitor.grid
    stencil = grid.stencil(monitor.config.protection_range)
    ny = grid.ny
    states = monitor.cell_states
    dechash = monitor.dechash
    counters = monitor.counters
    t2 = _TABLE2_LUT
    t1 = _TABLE1_DELTAS
    for unit_ids, i_lo, j_lo, codes, valid in _chain_groups(
        grid, stencil, moves, olds
    ):
        packed = codes[:, :-1] * 3 + codes[:, 1:]
        eff = _TABLE2_EFFECTIVE[packed]
        touched = valid & eff.any(axis=1)
        g_idx, a_idx, b_idx = np.nonzero(touched)
        if len(g_idx) == 0:
            continue
        lins = ((i_lo[g_idx] + a_idx) * ny + (j_lo[g_idx] + b_idx)).tolist()
        uids = unit_ids[g_idx].tolist()
        # advanced indexing with a mid slice puts the entry axis first:
        # (n_entries, chain steps) packed codes / effectiveness flags.
        entry_codes = packed[g_idx, :, a_idx, b_idx].tolist()
        entry_eff = eff[g_idx, :, a_idx, b_idx].tolist()
        for uid, cell_lin, code_row, eff_row in zip(  # reprolint: disable=RPL009 -- the DOO fold is inherently per (unit, cell); the vectorised pass above reduced the burst to exactly these entries
            uids, lins, entry_codes, entry_eff
        ):
            cell = divmod(cell_lin, ny)
            state = states.get(cell)
            if state is None:
                continue
            initial = in_hash = dechash.contains(uid, cell)
            net = incs = decs = inserts = removes = suppressed = 0
            step_codes = [c for c, e in zip(code_row, eff_row) if e]
            for code in step_codes:
                step_in = in_hash
                delta, action = t2[step_in][code]
                if action == _ACT_INSERT:
                    if not step_in:
                        inserts += 1
                        in_hash = True
                    elif delta < 0:
                        # the pair is already armed: decreasing again
                        # would double-count this unit, skip it.
                        delta = 0
                elif action == _ACT_REMOVE:
                    if step_in:
                        removes += 1
                        in_hash = False
                if step_in and delta == 0 and t1[code] < 0:
                    suppressed += 1
                if delta > 0:
                    net += delta
                    incs += 1
                elif delta < 0:
                    net += delta
                    decs += 1
            if in_hash != initial:
                if in_hash:
                    dechash.insert(uid, cell)
                else:
                    dechash.remove(uid, cell)
            if net:
                state.lower_bound += float(net)
            counters.dechash_inserts += inserts
            counters.dechash_removes += removes
            counters.doo_suppressed += suppressed
            counters.lb_increments += incs
            counters.lb_decrements += decs


# -- burst maintain kernels -------------------------------------------------


def apply_burst_basic(
    monitor: "BasicCTUP", moves: Sequence[CoalescedMove]
) -> int:
    """BasicCTUP's maintain phase for one coalesced burst, vectorised.

    Returns the raw updates skipped by coalescing (chain length minus
    one per chain), mirroring the scalar coalesced path. Observability
    wraps the whole pass in one span (RPL010: instrumentation only at
    pass boundaries, never inside the kernels' loops).
    """
    obs = monitor.obs
    if obs is None:
        return _burst_basic(monitor, moves)
    with obs.tracer.span("kernel.burst_basic", cat="kernel", moves=len(moves)):
        return _burst_basic(monitor, moves)


def _burst_basic(monitor: "BasicCTUP", moves: Sequence[CoalescedMove]) -> int:
    olds = monitor.units.apply_moves(moves)
    _maintained_endpoint_pass(monitor, moves, olds)
    _table1_pass(monitor, moves, olds, skip_illuminated=True)
    return sum(m.raw_count for m in moves) - len(moves)


def apply_burst_opt(monitor: "OptCTUP", moves: Sequence[CoalescedMove]) -> int:
    """OptCTUP's maintain phase for one coalesced burst, vectorised.

    With DOO disabled (the Fig. 8 ablation) bounds follow Table I and
    the aggregation kernel applies unchanged — OptCTUP never illuminates
    cells, so the eligibility filter is membership only. Observability
    wraps the whole pass in one span (RPL010: instrumentation only at
    pass boundaries, never inside the kernels' loops).
    """
    obs = monitor.obs
    if obs is None:
        return _burst_opt(monitor, moves)
    with obs.tracer.span("kernel.burst_opt", cat="kernel", moves=len(moves)):
        return _burst_opt(monitor, moves)


def _burst_opt(monitor: "OptCTUP", moves: Sequence[CoalescedMove]) -> int:
    olds = monitor.units.apply_moves(moves)
    _maintained_endpoint_pass(monitor, moves, olds)
    if monitor.config.use_doo:
        _table2_pass(monitor, moves, olds)
    else:
        _table1_pass(monitor, moves, olds, skip_illuminated=False)
    return sum(m.raw_count for m in moves) - len(moves)


# -- the deferred access-phase refill ---------------------------------------


def refill_below_sk(
    cell_states: dict[CellId, CellState],
    sk_of: Callable[[], float],
    access: Callable[[CellId], None],
    *,
    skip_illuminated: bool,
    obs: "Observability | None" = None,
) -> int:
    """Access every cell whose bound dipped below SK, in one sorted walk.

    The scalar access loops re-scan the whole cell table per access to
    find the minimum offending bound. During a refill no *other* cell's
    bound moves (accessing a cell rewrites only its own state) and SK
    never increases (accesses only add maintained places), so the scalar
    pick order is exactly ascending snapshot-bound order — with ties
    resolved by table iteration order, because the scalar argmin takes
    the first strict minimum. One gather + one stable argsort reproduces
    that order; the walk re-reads the live SK per cell and stops at the
    first cleared bound (everything later is ≥ it, against a
    non-increasing SK). Accessed cells can't re-offend mid-refill: their
    fresh bound is ≥ the SK that admitted them (illuminated cells are
    excluded outright for BasicCTUP).

    Returns the number of cells accessed. Observability wraps the
    whole sweep in one span (RPL010: pass boundaries only).
    """
    if obs is not None:
        with obs.tracer.span(
            "kernel.refill", cat="kernel", cells=len(cell_states)
        ):
            return _refill_below_sk(
                cell_states, sk_of, access, skip_illuminated=skip_illuminated
            )
    return _refill_below_sk(
        cell_states, sk_of, access, skip_illuminated=skip_illuminated
    )


def _refill_below_sk(
    cell_states: dict[CellId, CellState],
    sk_of: Callable[[], float],
    access: Callable[[CellId], None],
    *,
    skip_illuminated: bool,
) -> int:
    if not cell_states:
        return 0
    cells = list(cell_states)
    n = len(cells)
    bounds = np.fromiter(
        (state.lower_bound for state in cell_states.values()),
        dtype=np.float64,
        count=n,
    )
    if skip_illuminated:
        lit = np.fromiter(
            (state.illuminated for state in cell_states.values()),
            dtype=bool,
            count=n,
        )
        bounds[lit] = np.inf
    order = np.argsort(bounds, kind="stable").tolist()
    accessed = 0
    for idx in order:
        if float(bounds[idx]) >= sk_of():
            break
        access(cells[idx])
        accessed += 1
    return accessed
