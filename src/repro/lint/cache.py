"""The incremental analysis cache.

One JSON document on disk, one entry per linted file:

.. code-block:: json

    {
      "cache_version": 1,
      "files": {
        "src/repro/core/monitor.py": {
          "content_hash": "sha256...",
          "summary": { "...FileSummary payload..." },
          "local":   {"signature": "RPL000:1,...", "violations": []},
          "project": {"signature": "RPL001:1,...", "digest": "sha256...",
                      "violations": []}
        }
      }
    }

Invalidation is entirely key-based — nothing is ever "patched":

* ``content_hash`` (sha256 of the file bytes) guards the summary and
  both rule buckets; any edit drops everything for that file;
* each bucket's ``signature`` embeds the active rule codes *and their
  versions* plus the config fingerprint, so bumping a rule's
  ``version`` or changing select/ignore/strict sets re-runs it;
* the ``project`` bucket also records the digest over every file's
  summary, so a change anywhere in the tree re-runs the cross-file
  rules everywhere while the local buckets stay warm.

Corrupt or version-mismatched cache files are discarded silently — the
cache is an accelerator, never a source of truth.
"""

from __future__ import annotations

import json
import pathlib
import tempfile
from typing import Any, Mapping

CACHE_VERSION = 1

#: default on-disk location (relative to the working directory).
DEFAULT_CACHE_PATH = ".reprolint-cache.json"


class LintCache:
    """Load-once, save-once JSON store used by ``lint_paths``."""

    def __init__(self, path: str | pathlib.Path = DEFAULT_CACHE_PATH) -> None:
        self.path = pathlib.Path(path)
        self._entries: dict[str, dict[str, Any]] = {}
        self._dirty = False
        #: telemetry for the CLI summary and the perf guard.
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            not isinstance(payload, dict)
            or payload.get("cache_version") != CACHE_VERSION
        ):
            return
        files = payload.get("files")
        if isinstance(files, dict):
            self._entries = {
                str(key): dict(value)
                for key, value in files.items()
                if isinstance(value, dict)
            }

    def entry(self, path: str) -> Mapping[str, Any] | None:
        """The cached record for one file (``None`` on a miss)."""
        found = self._entries.get(path)
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
        return found

    def store(self, path: str, record: dict[str, Any]) -> None:
        if self._entries.get(path) != record:
            self._entries[path] = record
            self._dirty = True

    def save(self) -> None:
        """Write the store atomically (tmp + rename); no-op when clean."""
        if not self._dirty:
            return
        payload = {
            "cache_version": CACHE_VERSION,
            "files": self._entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w",
            encoding="utf-8",
            dir=str(self.path.parent),
            prefix=self.path.name + ".",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                json.dump(payload, handle, sort_keys=True)
            pathlib.Path(handle.name).replace(self.path)
        except OSError:
            pathlib.Path(handle.name).unlink(missing_ok=True)
            raise
        self._dirty = False
