"""The predictive variant (§VII)."""

import pytest

from repro.ext import PredictiveMonitor
from repro.geometry import Point
from repro.model import LocationUpdate, Place, Unit


@pytest.fixture
def world():
    places = [
        Place(0, Point(0.2, 0.5), 1),
        Place(1, Point(0.8, 0.5), 1),
    ]
    units = [Unit(0, Point(0.2, 0.5), 0.1)]
    return places, units


class TestPrediction:
    def test_zero_horizon_is_current_state(self, world):
        places, units = world
        monitor = PredictiveMonitor(places, units)
        top = monitor.predict_top_k(2, horizon=0.0)
        # unit sits on place 0: safety(0)=0, safety(1)=-1.
        assert top[0].place_id == 1
        assert top[0].predicted_safety == -1.0
        assert top[1].predicted_safety == 0.0

    def test_velocity_extrapolation(self, world):
        places, units = world
        monitor = PredictiveMonitor(places, units)
        # the unit moves right by 0.1 per time unit.
        monitor.observe(LocationUpdate(0, Point(0.2, 0.5), Point(0.3, 0.5), 1.0))
        # at horizon 5 it should be at x=0.8: protecting place 1, not 0.
        top = monitor.predict_top_k(2, horizon=5.0)
        assert top[0].place_id == 0
        assert top[0].predicted_safety == -1.0

    def test_prediction_clamped_to_space(self, world):
        places, units = world
        monitor = PredictiveMonitor(places, units)
        monitor.observe(LocationUpdate(0, Point(0.2, 0.5), Point(0.3, 0.5), 1.0))
        positions = monitor.predicted_positions(horizon=100.0)
        assert 0.0 <= positions[0].x <= 1.0

    def test_stationary_unit_keeps_zero_velocity(self, world):
        places, units = world
        monitor = PredictiveMonitor(places, units)
        positions = monitor.predicted_positions(horizon=10.0)
        assert positions[0] == Point(0.2, 0.5)

    def test_horizon_validation(self, world):
        monitor = PredictiveMonitor(*world)
        with pytest.raises(ValueError):
            monitor.predicted_positions(-1.0)
        with pytest.raises(ValueError):
            monitor.predict_top_k(0, 1.0)

    def test_unknown_unit_rejected(self, world):
        monitor = PredictiveMonitor(*world)
        with pytest.raises(KeyError):
            monitor.observe(LocationUpdate(9, Point(0, 0), Point(1, 1), 1.0))

    def test_records_carry_horizon(self, world):
        monitor = PredictiveMonitor(*world)
        record = monitor.predict_top_k(1, horizon=2.5)[0]
        assert record.horizon == 2.5

    def test_empty_places_rejected(self, world):
        _, units = world
        with pytest.raises(ValueError):
            PredictiveMonitor([], units)

    def test_prediction_consistent_with_live_monitor(
        self, small_config, small_places, small_units, small_stream
    ):
        """Horizon 0 after a stream == the live monitor's current answer."""
        from repro.core import NaiveCTUP

        live = NaiveCTUP(small_config, small_places, small_units)
        live.initialize()
        predictive = PredictiveMonitor(small_places, small_units)
        for update in small_stream.prefix(50):
            live.process(update)
            predictive.observe(update)
        predicted = predictive.predict_top_k(small_config.k, horizon=0.0)
        assert {p.place_id for p in predicted if p.predicted_safety < live.sk()} == {
            r.place_id for r in live.top_k() if r.safety < live.sk()
        }
